"""Status/score surface of a serving run: in-process handle + HTTP.

Two layers, zero new runtime dependencies:

* :class:`StatusBoard` — a thread-safe, in-process view the serving
  loop keeps current (checkpoint phase + cursor, the four runbook
  counters, per-customer current score/flag, the run manifest).  Its
  :meth:`~StatusBoard.handle` method *is* the API: a socket-free
  ``(status_code, payload)`` router over the same paths the HTTP server
  exposes, so tests and embedders never need a port.
* :class:`StatusServer` — a stdlib :class:`~http.server.ThreadingHTTPServer`
  on a background thread translating ``GET`` requests into
  :meth:`StatusBoard.handle` calls.  Port 0 binds an ephemeral port
  (the CI smoke job and tests use this to avoid collisions).

Routes
------
``/status``
    Run phase, counters, checkpoint cursor, run parameters, customer
    count.
``/customers/<id>``
    One customer's current stability, flag and alarm windows.
``/manifest``
    The run manifest (404 until the loop has written one).
``/metrics``
    Prometheus text exposition 0.0.4 of the live telemetry plane
    (DESIGN.md §12); 503 until the publisher's first publish.
``/metrics.jsonl``
    The recent window snapshots (newest last) as JSON Lines — the same
    records the on-disk stream file carries, for `obs tail` pointed at
    a port instead of a file.
"""

from __future__ import annotations

import json
import logging
import math
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from types import TracebackType

from repro.obs.export import PROMETHEUS_CONTENT_TYPE

__all__ = ["StatusBoard", "StatusServer"]

logger = logging.getLogger(__name__)


class StatusBoard:
    """Thread-safe live view of one serving run.

    The serving loop is the only writer; any number of reader threads
    (the HTTP server's handlers, embedding code) may call the read
    methods concurrently.  All values returned are plain-JSON-safe
    copies — ``nan`` stabilities are surfaced as ``None``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._phase = "starting"
        self._counters: dict[str, int] = {
            "ingested": 0,
            "scored": 0,
            "flagged": 0,
            "checkpointed": 0,
        }
        self._checkpoint: dict[str, object] = {}
        self._customers: dict[int, dict[str, object]] = {}
        self._manifest: dict | None = None
        self._run: dict[str, object] = {}
        self._metrics_text: str | None = None
        self._metrics_samples: deque[dict[str, object]] = deque(maxlen=256)

    # ------------------------------------------------------------------
    # Writers (called by the serving loop)
    # ------------------------------------------------------------------
    def set_run_info(self, **info: object) -> None:
        """Record immutable run parameters (stream, shards, batch size)."""
        with self._lock:
            self._run.update(info)

    def set_phase(self, phase: str) -> None:
        with self._lock:
            self._phase = phase

    def set_counters(self, counters: dict[str, int]) -> None:
        with self._lock:
            self._counters.update(counters)

    def set_checkpoint(
        self,
        *,
        commit_index: int,
        day_batches_consumed: int,
        finished: bool,
    ) -> None:
        with self._lock:
            self._checkpoint = {
                "commit_index": commit_index,
                "day_batches_consumed": day_batches_consumed,
                "finished": finished,
            }

    def upsert_customer(
        self,
        customer_id: int,
        stability: float,
        flagged: bool,
        alarm_windows: tuple[tuple[int, float], ...] = (),
    ) -> None:
        """Idempotent upsert of one customer's current score/flag."""
        with self._lock:
            self._customers[int(customer_id)] = {
                "stability": None if math.isnan(stability) else float(stability),
                "flagged": bool(flagged),
                "alarm_windows": [[w, s] for w, s in alarm_windows],
            }

    def set_manifest(self, manifest: dict) -> None:
        with self._lock:
            self._manifest = dict(manifest)

    def set_metrics_text(self, text: str) -> None:
        """Install the latest Prometheus exposition (publisher-rendered)."""
        with self._lock:
            self._metrics_text = text

    def push_metrics_sample(self, snapshot: dict[str, object]) -> None:
        """Append one window snapshot to the bounded recent-samples ring."""
        with self._lock:
            self._metrics_samples.append(dict(snapshot))

    # ------------------------------------------------------------------
    # Readers
    # ------------------------------------------------------------------
    @property
    def phase(self) -> str:
        with self._lock:
            return self._phase

    def status(self) -> dict:
        """The ``/status`` document."""
        with self._lock:
            return {
                "phase": self._phase,
                "counters": dict(self._counters),
                "checkpoint": dict(self._checkpoint),
                "customers_tracked": len(self._customers),
                "run": dict(self._run),
            }

    def customer(self, customer_id: int) -> dict | None:
        with self._lock:
            record = self._customers.get(int(customer_id))
            return dict(record) if record is not None else None

    def handle(self, path: str) -> tuple[int, dict | str]:
        """Route one request path; returns ``(status_code, payload)``.

        This is the socket-free form of the API — the HTTP server is a
        thin adapter over exactly this method.  ``dict`` payloads are
        JSON documents; ``str`` payloads are served as plain text (the
        ``/metrics`` exposition and the ``/metrics.jsonl`` stream).
        """
        if path in ("/", "/status"):
            return 200, self.status()
        if path == "/metrics":
            with self._lock:
                text = self._metrics_text
            if text is None:
                return 503, {"error": "no metrics published yet"}
            return 200, text
        if path == "/metrics.jsonl":
            with self._lock:
                samples = list(self._metrics_samples)
            if not samples:
                return 503, {"error": "no metrics published yet"}
            return 200, "".join(
                json.dumps(s, sort_keys=True, default=str) + "\n" for s in samples
            )
        if path == "/manifest":
            with self._lock:
                manifest = self._manifest
            if manifest is None:
                return 404, {"error": "no run manifest written yet"}
            return 200, manifest
        if path.startswith("/customers/"):
            tail = path[len("/customers/") :]
            if not tail.isdigit():
                return 404, {"error": f"invalid customer id {tail!r}"}
            record = self.customer(int(tail))
            if record is None:
                return 404, {"error": f"customer {tail} not in the stream"}
            return 200, {"customer_id": int(tail), **record}
        return 404, {"error": f"unknown path {path!r}"}


class _BoardHandler(BaseHTTPRequestHandler):
    """GET-only JSON adapter from HTTP paths to :meth:`StatusBoard.handle`."""

    #: Bound per server instance (see :class:`StatusServer`).
    board: StatusBoard

    #: Per-request socket timeout (seconds).  ``http.server`` applies
    #: this to the connection in ``setup()``: a client that connects and
    #: never sends a request line cannot pin a handler thread forever,
    #: which is what lets :meth:`StatusServer.stop` return promptly
    #: under load.  Overridden per server instance (see
    #: :class:`StatusServer`'s ``request_timeout``).
    timeout: float | None = 5.0

    def do_GET(self) -> None:  # noqa: N802 — http.server's naming contract
        code, payload = self.board.handle(self.path)
        if isinstance(payload, str):
            body = payload.encode()
            content_type = (
                PROMETHEUS_CONTENT_TYPE
                if self.path == "/metrics"
                else "text/plain; charset=utf-8"
            )
        else:
            body = json.dumps(payload, sort_keys=True, default=str).encode()
            content_type = "application/json"
        try:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except OSError as exc:
            # The client hung up mid-response (common while the soak
            # harness hammers /status during shutdown); a dead socket is
            # the client's business, never the serving loop's.
            self.close_connection = True
            logger.debug("status api: client went away: %s", exc)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        # Route http.server's stderr chatter into the library logger.
        logger.debug("status api: " + format, *args)


class StatusServer:
    """The :class:`StatusBoard` over HTTP, on a daemon thread.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction for the actual one.  Usable as a context manager::

        with StatusServer(board, port=0) as server:
            url = f"http://127.0.0.1:{server.port}/status"
    """

    def __init__(
        self,
        board: StatusBoard,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float | None = 5.0,
    ) -> None:
        handler = type(
            "_BoundHandler",
            (_BoardHandler,),
            {"board": board, "timeout": request_timeout},
        )
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        # In-flight handler threads are daemons with a bounded request
        # timeout; ``server_close`` must not block on joining them, or a
        # slow client could hang a SIGTERM-initiated shutdown.
        self._server.block_on_close = False
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound TCP port (resolved even when constructed with 0)."""
        return int(self._server.server_address[1])

    def start(self) -> int:
        """Start serving on a daemon thread; returns the bound port."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-serve-status",
                daemon=True,
            )
            self._thread.start()
        return self.port

    def stop(self) -> None:
        """Stop the server and release the socket (idempotent).

        ``shutdown()`` blocks on the ``serve_forever`` loop having run,
        so it is only issued when the thread was actually started.
        """
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> StatusServer:
        self.start()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self.stop()
        return False
