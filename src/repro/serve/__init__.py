"""repro.serve — streaming attrition scoring daemon.

The serving layer plays a recorded day-ordered basket stream
(:mod:`repro.synth.stream`) through customer-sharded
:class:`~repro.core.streaming.StabilityMonitor` instances, emits
stability scores and attrition alarms as windows close, and checkpoints
durably after every batch so a crash costs at most one batch of rework.

Layout
------
:mod:`repro.serve.pool`
    :class:`ShardedMonitorPool` — customers partitioned
    ``customer_id % n_shards`` across monitors; serial or
    :func:`~repro.runtime.executor.run_sharded` parallel batch
    processing, bit-identical either way.
:mod:`repro.serve.checkpoint`
    :class:`ServeCheckpoint` — write-once state directories sealed by an
    atomic ``cursor.json`` (the single commit point);
    :class:`CursorInvalid` signals an unusable cursor and triggers the
    restart-from-head fallback.
:mod:`repro.serve.loop`
    :func:`serve_stream` — the ingest/score/checkpoint loop, plus the
    :func:`offline_sweep` batch reference it must match bit-for-bit.
:mod:`repro.serve.api`
    :class:`StatusBoard` (socket-free status/score handle) and
    :class:`StatusServer` (the same routes over stdlib HTTP).

The headline invariant: serving a recorded stream to completion is
bit-identical to the offline batch sweep over the same log — regardless
of shard count, parallelism, or how many times the run was killed and
resumed (compare :meth:`ServeResult.fingerprint` with
:meth:`OfflineSweep.fingerprint`).
"""

from repro.serve.api import StatusBoard, StatusServer
from repro.serve.checkpoint import (
    CheckpointIOExhausted,
    CursorInvalid,
    LoadedCheckpoint,
    ServeCheckpoint,
    ServeCursor,
)
from repro.serve.loop import (
    OfflineSweep,
    ServeCounters,
    ServeResult,
    offline_sweep,
    offline_sweep_stream,
    score_fingerprint,
    serve_stream,
)
from repro.serve.pool import ShardedMonitorPool, merge_reports, shard_of

__all__ = [
    "StatusBoard",
    "StatusServer",
    "CheckpointIOExhausted",
    "CursorInvalid",
    "LoadedCheckpoint",
    "ServeCheckpoint",
    "ServeCursor",
    "OfflineSweep",
    "ServeCounters",
    "ServeResult",
    "offline_sweep",
    "offline_sweep_stream",
    "score_fingerprint",
    "serve_stream",
    "ShardedMonitorPool",
    "merge_reports",
    "shard_of",
]
