"""The serving loop: replay → score → checkpoint, crash-rework ≤ 1 batch.

:func:`serve_stream` is the daemon's engine room.  It consumes a
recorded day-ordered basket stream (:mod:`repro.synth.stream`) in
checkpoint batches — consecutive whole days until at least
``batch_size`` baskets accumulate — plays each batch through a
:class:`~repro.serve.pool.ShardedMonitorPool`, upserts the resulting
scores/flags into an idempotent score table, and makes the batch
durable through :class:`~repro.serve.checkpoint.ServeCheckpoint`'s
state-then-cursor protocol.  The FeedForward streaming-batch runbook
(SNIPPETS.md Snippet 2) is the contract:

* counters ``ingested`` / ``scored`` / ``flagged`` / ``checkpointed``
  are cumulative across resumes (they ride inside the committed
  cursor, so a resume restores them atomically with the position);
* a crash at any point costs at most **one batch** of rework — the
  cursor commit is the only point of no return, and everything written
  before it is re-derived identically on replay;
* an unusable cursor (torn file, version drift, stream or config
  fingerprint mismatch) is not fatal: the loop logs a warning, counts
  ``serve.cursor_invalid`` and restarts from the stream head, relying
  on the score table's idempotent upsert semantics.

The headline invariant — pinned by the parity tests and checkable via
:func:`score_fingerprint` — is that serving a recorded stream to
completion is **bit-identical** to :func:`offline_sweep` (one
:class:`~repro.core.streaming.StabilityMonitor` over the same log),
regardless of shard count, parallelism, or how many times the run was
killed and resumed along the way.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import math
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.config import ExperimentConfig
from repro.core.streaming import StabilityMonitor, WindowCloseReport
from repro.errors import ConfigError, SnapshotError
from repro.obs import build_manifest, get_metrics, get_tracer, timed_stage, write_manifest
from repro.obs import metrics as obs_metrics
from repro.obs.manifest import config_fingerprint
from repro.serve.checkpoint import (
    CursorInvalid,
    ServeCheckpoint,
    ServeCursor,
)
from repro.serve.pool import ShardedMonitorPool
from repro.synth.stream import (
    read_stream_header,
    replay_stream,
    stream_calendar,
    stream_fingerprint,
)

if TYPE_CHECKING:
    from repro.data.basket import Basket
    from repro.data.calendar import StudyCalendar
    from repro.data.streams import DayBatch
    from repro.obs.export import MetricsPublisher
    from repro.runtime.faults import FaultPlan
    from repro.serve.api import StatusBoard

__all__ = [
    "ServeCounters",
    "ServeResult",
    "OfflineSweep",
    "serve_stream",
    "offline_sweep",
    "offline_sweep_stream",
    "score_fingerprint",
]

logger = logging.getLogger(__name__)


@dataclass
class ServeCounters:
    """The runbook's cumulative counter quartet (see module docstring)."""

    #: Baskets played into the monitors.
    ingested: int = 0
    #: (customer, window) stability scores emitted at window closes.
    scored: int = 0
    #: Alarms raised (distinct (customer, window) threshold crossings).
    flagged: int = 0
    #: Data batches made durable (state written *and* cursor committed).
    checkpointed: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, int]) -> ServeCounters:
        return cls(
            ingested=int(payload.get("ingested", 0)),
            scored=int(payload.get("scored", 0)),
            flagged=int(payload.get("flagged", 0)),
            checkpointed=int(payload.get("checkpointed", 0)),
        )


@dataclass
class _CustomerRecord:
    """Mutable score-table entry; frozen into the result at the end."""

    stability: float = math.nan
    flagged: bool = False
    alarm_windows: dict[int, float] = field(default_factory=dict)


_ScoreTable = dict[int, _CustomerRecord]


@dataclass(frozen=True)
class ServeResult:
    """What one :func:`serve_stream` invocation produced."""

    #: Final stability per customer (``nan`` when never defined).
    scores: dict[int, float]
    #: Whether each customer ever alarmed.
    flags: dict[int, bool]
    #: Every (window, stability) alarm per customer, window-ordered.
    alarm_windows: dict[int, tuple[tuple[int, float], ...]]
    #: Cumulative runbook counters (across resumes).
    counters: ServeCounters
    #: Data batches processed by *this* invocation (rework included).
    batches_this_run: int
    #: Batches this invocation re-processed because a previous run
    #: crashed between state write and cursor commit (0 or 1).
    batches_reworked: int
    #: Committed replay position, in whole day batches.
    day_batches_consumed: int
    resumed: bool
    #: True when the stream was served to completion (windows closed,
    #: final cursor committed); False after an interruption.
    finished: bool
    checkpoint_dir: Path

    def fingerprint(self) -> str:
        """Canonical digest of scores/flags/alarms (parity checks)."""
        return score_fingerprint(self.scores, self.flags, self.alarm_windows)


@dataclass(frozen=True)
class OfflineSweep:
    """The offline reference result (single monitor over the full log)."""

    scores: dict[int, float]
    flags: dict[int, bool]
    alarm_windows: dict[int, tuple[tuple[int, float], ...]]

    def fingerprint(self) -> str:
        return score_fingerprint(self.scores, self.flags, self.alarm_windows)


def score_fingerprint(
    scores: dict[int, float],
    flags: dict[int, bool],
    alarm_windows: dict[int, tuple[tuple[int, float], ...]],
) -> str:
    """Short canonical digest of a score table.

    Floats serialise at ``repr`` precision and ``nan`` maps to ``null``,
    so two tables fingerprint equal iff they are bit-identical — the
    serving parity checks (serial vs sharded vs resumed vs offline)
    compare exactly this.
    """
    canonical = {
        str(customer_id): [
            None
            if math.isnan(scores[customer_id])
            else scores[customer_id],
            bool(flags.get(customer_id, False)),
            [[w, s] for w, s in alarm_windows.get(customer_id, ())],
        ]
        for customer_id in sorted(scores)
    }
    digest = hashlib.sha1(
        json.dumps(canonical, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# Score table: idempotent upsert from window-close reports.
# ----------------------------------------------------------------------
def _apply_reports(
    table: _ScoreTable,
    reports: Iterable[WindowCloseReport],
    counters: ServeCounters,
    status: StatusBoard | None,
) -> None:
    """Upsert reports into the table; counters track *new* information
    only, so replaying an already-counted batch after a crash (whose
    counters were not committed) re-counts it exactly once overall."""
    touched: set[int] = set()
    for report in reports:
        for customer_id, stability in report.stabilities.items():
            record = table.setdefault(customer_id, _CustomerRecord())
            record.stability = stability
            counters.scored += 1
            touched.add(customer_id)
        for alarm in report.alarms:
            record = table[alarm.customer_id]
            record.flagged = True
            if alarm.window_index not in record.alarm_windows:
                record.alarm_windows[alarm.window_index] = alarm.stability
                counters.flagged += 1
    if status is not None:
        for customer_id in sorted(touched):
            record = table[customer_id]
            status.upsert_customer(
                customer_id,
                record.stability,
                record.flagged,
                tuple(sorted(record.alarm_windows.items())),
            )


def _freeze_table(
    table: _ScoreTable,
) -> tuple[
    dict[int, float],
    dict[int, bool],
    dict[int, tuple[tuple[int, float], ...]],
]:
    scores: dict[int, float] = {}
    flags: dict[int, bool] = {}
    alarm_windows: dict[int, tuple[tuple[int, float], ...]] = {}
    for customer_id in sorted(table):
        record = table[customer_id]
        scores[customer_id] = record.stability
        flags[customer_id] = record.flagged
        alarm_windows[customer_id] = tuple(
            sorted(record.alarm_windows.items())
        )
    return scores, flags, alarm_windows


def _table_to_payload(table: _ScoreTable) -> dict:
    return {
        "customers": {
            str(customer_id): {
                "stability": None
                if math.isnan(record.stability)
                else record.stability,
                "flagged": record.flagged,
                "alarm_windows": [
                    [w, s] for w, s in sorted(record.alarm_windows.items())
                ],
            }
            for customer_id, record in sorted(table.items())
        }
    }


def _table_from_payload(payload: dict) -> _ScoreTable:
    table: _ScoreTable = {}
    customers = payload.get("customers", {})
    if not isinstance(customers, dict):
        raise CursorInvalid("score table payload is malformed")
    for key, record in customers.items():
        if not isinstance(record, dict):
            raise CursorInvalid(f"score record for customer {key} malformed")
        stability = record.get("stability")
        table[int(key)] = _CustomerRecord(
            stability=math.nan if stability is None else float(stability),
            flagged=bool(record.get("flagged", False)),
            alarm_windows={
                int(w): float(s)
                for w, s in record.get("alarm_windows", [])
            },
        )
    return table


# ----------------------------------------------------------------------
# Offline reference
# ----------------------------------------------------------------------
def offline_sweep(
    baskets: Iterable[Basket],
    calendar: StudyCalendar,
    *,
    config: ExperimentConfig | None = None,
    beta: float = 0.5,
    first_alarm_window: int = 0,
) -> OfflineSweep:
    """The batch reference: one monitor over the whole log, no serving.

    Serving a recorded stream to completion must produce a table with
    an identical :func:`score_fingerprint` — that equality is the
    serving layer's correctness contract.
    """
    config = config if config is not None else ExperimentConfig()
    monitor = StabilityMonitor.from_config(
        calendar, config, beta=beta, first_alarm_window=first_alarm_window
    )
    reports = monitor.ingest_many(baskets)
    reports.extend(monitor.finish())
    table: _ScoreTable = {}
    _apply_reports(table, reports, ServeCounters(), None)
    scores, flags, alarm_windows = _freeze_table(table)
    return OfflineSweep(
        scores=scores, flags=flags, alarm_windows=alarm_windows
    )


def offline_sweep_stream(
    stream_path: str | Path,
    *,
    config: ExperimentConfig | None = None,
    beta: float = 0.5,
    first_alarm_window: int = 0,
) -> OfflineSweep:
    """:func:`offline_sweep` over a recorded stream file."""
    header = read_stream_header(stream_path)
    calendar = stream_calendar(header)
    baskets = (
        basket
        for batch in replay_stream(stream_path)
        for basket in batch.baskets
    )
    return offline_sweep(
        baskets,
        calendar,
        config=config,
        beta=beta,
        first_alarm_window=first_alarm_window,
    )


# ----------------------------------------------------------------------
# The serving loop
# ----------------------------------------------------------------------
def serve_stream(
    stream_path: str | Path,
    checkpoint_dir: str | Path,
    *,
    batch_size: int = 256,
    n_shards: int = 1,
    parallel: bool = False,
    config: ExperimentConfig | None = None,
    beta: float = 0.5,
    first_alarm_window: int = 0,
    retries: int = 2,
    timeout: float | None = None,
    fault_plan: FaultPlan | None = None,
    status: StatusBoard | None = None,
    publisher: MetricsPublisher | None = None,
    max_batches: int | None = None,
    should_stop: Callable[[], bool] | None = None,
    on_state_written: Callable[[int], None] | None = None,
    on_batch_start: Callable[[int], FaultPlan | None] | None = None,
    checkpoint_io_retries: int = 2,
    checkpoint_io_backoff_s: float = 0.05,
    checkpoint_io_fault: Callable[[str, int, int], None] | None = None,
) -> ServeResult:
    """Serve a recorded stream with per-batch durable checkpoints.

    Parameters
    ----------
    stream_path:
        A recorded stream written by
        :func:`repro.synth.stream.record_stream`.
    checkpoint_dir:
        Durable run directory (cursor + state dirs + run manifest); an
        existing valid checkpoint there is resumed automatically.
    batch_size:
        Checkpoint cadence: a batch is the smallest run of consecutive
        whole days holding at least this many baskets (days are atomic,
        so the resume cursor counts whole days).
    n_shards, parallel, retries, timeout, fault_plan:
        Shard-pool shape; see :class:`~repro.serve.pool.ShardedMonitorPool`.
    config, beta, first_alarm_window:
        Scoring configuration (the same objects the offline protocol
        takes, so parity is comparing like with like).
    status:
        Optional :class:`~repro.serve.api.StatusBoard` kept current
        with phase/counters/cursor/scores.
    publisher:
        Optional :class:`~repro.obs.export.MetricsPublisher` (the live
        telemetry plane, DESIGN.md §12).  The loop keeps the position
        gauges (queue depth, lag in days, commit index) current and
        ticks the publisher after every commit; the publisher decides
        whether the interval warrants an actual publish.  A cursor
        fallback triggers its flight recorder.  Scores are bit-
        identical with and without a publisher attached.
    max_batches:
        Stop (resumable, ``finished=False``) after this many data
        batches this run — deterministic partial runs for tests/CI.
    should_stop:
        Polled between batches; returning True stops the run cleanly
        after the current batch's commit (the CLI wires SIGTERM here).
    on_state_written:
        Test hook invoked *between* a batch's state write and its
        cursor commit — raising from it simulates the worst-case crash
        point for the rework-bound tests.
    on_batch_start:
        Chaos hook called with the commit index a batch is about to
        commit as, *before* the batch is processed.  Returning a
        :class:`~repro.runtime.faults.FaultPlan` installs it on the
        shard pool for exactly that batch (the base ``fault_plan`` is
        restored afterwards); returning ``None`` leaves the base plan.
        The soak harness keys its per-batch worker-crash and slow-shard
        injections (and its rate pacing) on this hook.
    checkpoint_io_retries, checkpoint_io_backoff_s, checkpoint_io_fault:
        Transient checkpoint-I/O budget; see
        :class:`~repro.serve.checkpoint.ServeCheckpoint`.  A write that
        stays broken past the budget raises
        :class:`~repro.serve.checkpoint.CheckpointIOExhausted` —
        resumable, rework <= 1 batch, like any crash.

    Raises
    ------
    ConfigError
        On invalid serving parameters.
    SchemaError
        If the stream file is not a valid recorded stream.
    """
    if batch_size < 1:
        raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
    if n_shards < 1:
        raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
    if max_batches is not None and max_batches < 1:
        raise ConfigError(f"max_batches must be >= 1, got {max_batches}")
    stream = Path(stream_path)
    config = config if config is not None else ExperimentConfig()
    header = read_stream_header(stream)
    calendar = stream_calendar(header)
    stream_fp = stream_fingerprint(stream)
    serve_fp = config_fingerprint(
        {
            **dataclasses.asdict(config),
            "beta": beta,
            "first_alarm_window": first_alarm_window,
            "n_shards": n_shards,
        }
    )
    checkpoint = ServeCheckpoint(
        checkpoint_dir,
        io_retries=checkpoint_io_retries,
        io_backoff_s=checkpoint_io_backoff_s,
        io_fault=checkpoint_io_fault,
    )
    registry = get_metrics()
    tracer = get_tracer()

    counters = ServeCounters()
    table: _ScoreTable = {}
    pool: ShardedMonitorPool | None = None
    resumed = False
    reworked = 0
    commit_index = 0
    day_batches_consumed = 0
    last_day_consumed = -1
    already_finished = False

    # ------------------------------------------------------------------
    # Resume (or fall back to the stream head on an invalid cursor).
    # ------------------------------------------------------------------
    loaded = None
    try:
        loaded = checkpoint.load(
            stream_fingerprint=stream_fp,
            serve_fingerprint=serve_fp,
            n_shards=n_shards,
        )
        if loaded is not None:
            pool = ShardedMonitorPool.from_snapshots(
                loaded.shard_payloads,
                parallel=parallel,
                retries=retries,
                timeout=timeout,
                fault_plan=fault_plan,
            )
            table = _table_from_payload(loaded.scores)
    except (CursorInvalid, SnapshotError) as exc:
        logger.warning(
            "cursor invalid on resume, restarting from stream head: %s", exc
        )
        registry.counter(obs_metrics.SERVE_CURSOR_INVALID).inc()
        if publisher is not None:
            # A cursor fallback is a post-mortem-worthy surprise: flush
            # the flight ring so the artifact records what preceded it.
            publisher.record_event("cursor_invalid", detail=str(exc))
            publisher.trigger_flight("cursor_invalid", commit_index=0)
        loaded = None
        pool = None
        table = {}
    if loaded is not None and pool is not None:
        cursor = loaded.cursor
        counters = ServeCounters.from_dict(cursor.counters)
        commit_index = cursor.commit_index
        day_batches_consumed = cursor.day_batches_consumed
        resumed = True
        already_finished = cursor.finished
        if loaded.orphaned_state and not already_finished:
            # The previous run crashed between state write and cursor
            # commit: the batch after the committed one is reworked now.
            reworked = 1
            registry.counter(obs_metrics.SERVE_BATCHES_REWORKED).inc()
            logger.info(
                "resume found an uncommitted state write after commit %d; "
                "reworking exactly one batch",
                commit_index,
            )
    if pool is None:
        pool = ShardedMonitorPool.create(
            config.grid(calendar),
            n_shards=n_shards,
            beta=beta,
            significance=config.significance(),
            counting=config.counting,
            first_alarm_window=first_alarm_window,
            parallel=parallel,
            retries=retries,
            timeout=timeout,
            fault_plan=fault_plan,
        )

    if status is not None:
        status.set_run_info(
            stream=str(stream),
            stream_fingerprint=stream_fp,
            serve_fingerprint=serve_fp,
            n_shards=n_shards,
            batch_size=batch_size,
            parallel=parallel,
        )
        status.set_phase("resuming" if resumed else "starting")
        status.set_counters(counters.as_dict())
        status.set_checkpoint(
            commit_index=commit_index,
            day_batches_consumed=day_batches_consumed,
            finished=already_finished,
        )
        for customer_id in sorted(table):
            record = table[customer_id]
            status.upsert_customer(
                customer_id,
                record.stability,
                record.flagged,
                tuple(sorted(record.alarm_windows.items())),
            )

    def make_cursor(finished: bool) -> ServeCursor:
        return ServeCursor(
            commit_index=commit_index,
            day_batches_consumed=day_batches_consumed,
            counters=counters.as_dict(),
            stream_fingerprint=stream_fp,
            serve_fingerprint=serve_fp,
            n_shards=n_shards,
            finished=finished,
        )

    def build_result(*, batches_this_run: int, finished: bool) -> ServeResult:
        scores, flags, alarm_windows = _freeze_table(table)
        return ServeResult(
            scores=scores,
            flags=flags,
            alarm_windows=alarm_windows,
            counters=counters,
            batches_this_run=batches_this_run,
            batches_reworked=reworked,
            day_batches_consumed=day_batches_consumed,
            resumed=resumed,
            finished=finished,
            checkpoint_dir=checkpoint.directory,
        )

    if already_finished:
        # The stream was already served to completion: a no-op resume.
        logger.info(
            "checkpoint at %s is already finished; nothing to serve",
            checkpoint.directory,
        )
        if status is not None:
            status.set_phase("finished")
        return build_result(batches_this_run=0, finished=True)

    # ------------------------------------------------------------------
    # The loop proper.
    # ------------------------------------------------------------------
    batches_this_run = 0
    interrupted = False
    active_pool = pool

    def shard_context() -> dict[str, object]:
        """Per-shard table for the live plane (computed at publish
        cadence only — the publisher resolves this lazily)."""
        return {
            "stream": str(stream),
            "n_shards": n_shards,
            "shards": [
                {"shard": i, "customers": len(monitor.customers())}
                for i, monitor in enumerate(active_pool.monitors)
            ],
        }

    def commit_state(finished: bool) -> None:
        """State first, hook, then the cursor — the one commit point."""
        with tracer.span(
            obs_metrics.SPAN_SERVE_CHECKPOINT,
            commit=commit_index,
            finished=finished,
        ):
            checkpoint.write_state(
                commit_index,
                active_pool.snapshot_shards(),
                _table_to_payload(table),
            )
            if on_state_written is not None:
                on_state_written(commit_index)
            checkpoint.commit(make_cursor(finished))

    def process_batch(group: list[DayBatch]) -> None:
        nonlocal commit_index, day_batches_consumed, last_day_consumed
        n_baskets = sum(b.n_baskets for b in group)
        if on_batch_start is not None:
            batch_plan = on_batch_start(commit_index + 1)
            active_pool.set_fault_plan(
                batch_plan if batch_plan is not None else fault_plan
            )
        if status is not None:
            status.set_phase("serving")
        with timed_stage(
            obs_metrics.STAGE_SERVE_BATCH,
            days=len(group),
            baskets=n_baskets,
        ):
            reports = active_pool.process_batch(group)
        counters.ingested += n_baskets
        registry.counter(obs_metrics.SERVE_INGESTED).inc(n_baskets)
        scored_before = counters.scored
        flagged_before = counters.flagged
        _apply_reports(table, reports, counters, status)
        registry.counter(obs_metrics.SERVE_SCORED).inc(
            counters.scored - scored_before
        )
        registry.counter(obs_metrics.SERVE_FLAGGED).inc(
            counters.flagged - flagged_before
        )
        day_batches_consumed += len(group)
        last_day_consumed = group[-1].day
        commit_index += 1
        counters.checkpointed += 1
        if status is not None:
            status.set_phase("checkpointing")
        commit_state(finished=False)
        registry.counter(obs_metrics.SERVE_CHECKPOINTED).inc()
        if status is not None:
            status.set_counters(counters.as_dict())
            status.set_checkpoint(
                commit_index=commit_index,
                day_batches_consumed=day_batches_consumed,
                finished=False,
            )
        if publisher is not None:
            registry.gauge(obs_metrics.SERVE_QUEUE_DEPTH).set(n_baskets)
            registry.gauge(obs_metrics.SERVE_COMMIT_INDEX).set(commit_index)
            # Lag = calendar days not yet committed (days with no
            # baskets are absent from the stream, so counting batches
            # would never reach zero).
            registry.gauge(obs_metrics.SERVE_LAG_DAYS).set(
                max(calendar.n_days - 1 - last_day_consumed, 0)
            )
            publisher.tick(registry, context=shard_context)

    with tracer.span(
        obs_metrics.SPAN_SERVE_RUN,
        stream=str(stream),
        n_shards=n_shards,
        resumed=resumed,
    ):
        pending: list[DayBatch] = []
        pending_baskets = 0
        for day_batch in replay_stream(stream, skip_days=day_batches_consumed):
            pending.append(day_batch)
            pending_baskets += day_batch.n_baskets
            if pending_baskets < batch_size:
                continue
            process_batch(pending)
            batches_this_run += 1
            pending = []
            pending_baskets = 0
            if max_batches is not None and batches_this_run >= max_batches:
                interrupted = True
                break
            if should_stop is not None and should_stop():
                interrupted = True
                break
        if not interrupted:
            if pending:
                process_batch(pending)
                batches_this_run += 1
            # End of stream: close the remaining windows and seal the
            # run under its own commit index (never overwriting the
            # committed state in place — a crash mid-seal must leave
            # the last data commit authoritative).
            final_reports = active_pool.finish()
            _apply_reports(table, final_reports, counters, status)
            commit_index += 1
            commit_state(finished=True)
            if status is not None:
                status.set_counters(counters.as_dict())
                status.set_checkpoint(
                    commit_index=commit_index,
                    day_batches_consumed=day_batches_consumed,
                    finished=True,
                )
                status.set_phase("finished")
        elif status is not None:
            status.set_phase("interrupted")

    manifest = build_manifest(
        "serve",
        config=config,
        dataset_fingerprint=stream_fp,
        execution=active_pool.last_report,
        tracer=tracer,
        metrics=registry,
    )
    write_manifest(checkpoint.directory, manifest)
    if status is not None:
        status.set_manifest(manifest.to_dict())
    if publisher is not None:
        # Final forced publish so the last snapshot reflects the sealed
        # run even when the interval had not elapsed.
        registry.gauge(obs_metrics.SERVE_COMMIT_INDEX).set(commit_index)
        # The sealed run has consumed every recorded day: lag is zero by
        # definition, whatever the last day's index was.
        registry.gauge(obs_metrics.SERVE_LAG_DAYS).set(0)
        registry.gauge(obs_metrics.SERVE_QUEUE_DEPTH).set(0)
        publisher.tick(registry, force=True, context=shard_context)
    logger.info(
        "served %d batch(es) this run (%d reworked): ingested=%d scored=%d "
        "flagged=%d checkpointed=%d%s",
        batches_this_run,
        reworked,
        counters.ingested,
        counters.scored,
        counters.flagged,
        counters.checkpointed,
        "" if interrupted else " [stream complete]",
    )
    return build_result(
        batches_this_run=batches_this_run, finished=not interrupted
    )
