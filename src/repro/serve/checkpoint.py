"""Durable serve checkpoints: state dirs sealed by an atomic cursor.

The serving loop's crash contract — *max rework after a crash is one
batch* — is carried entirely by the write ordering here:

1. :meth:`ServeCheckpoint.write_state` writes the batch's artifacts
   (one snapshot file per shard plus the upserted score table) into a
   **new** commit-indexed directory, each file atomically;
2. :meth:`ServeCheckpoint.commit` atomically replaces ``cursor.json``
   — the single commit point — with a cursor referencing that
   directory, then prunes superseded state directories.

A crash before the commit leaves the previous cursor (and its intact
state directory) authoritative: the resumed run replays exactly the one
uncommitted batch.  The orphaned newer state directory doubles as the
rework marker — :meth:`ServeCheckpoint.load` reports it so the loop can
count the rework in telemetry.

A cursor is only trusted when it matches the run being resumed: the
recorded stream's content fingerprint, the serving-config fingerprint
and the shard count are all pinned inside it.  Any mismatch — or a
torn/corrupt cursor, or missing state files — raises
:class:`CursorInvalid`, and the loop falls back to restarting from the
stream head (Snippet-2 semantics: idempotent score upsert, warning
logged) rather than resuming into the wrong data.
"""

from __future__ import annotations

import json
import logging
import shutil
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.atomicio import atomic_write_json
from repro.errors import ConfigError, ServeError
from repro.obs import get_metrics
from repro.obs import metrics as obs_metrics

__all__ = [
    "CURSOR_NAME",
    "CURSOR_SCHEMA",
    "CURSOR_VERSION",
    "SCORES_NAME",
    "CursorInvalid",
    "CheckpointIOExhausted",
    "ServeCursor",
    "LoadedCheckpoint",
    "ServeCheckpoint",
]

logger = logging.getLogger(__name__)

#: Hook type for transient-I/O fault injection: called before every
#: write attempt as ``(operation, commit_index, attempt)`` and may raise
#: :class:`OSError` to simulate ENOSPC/EACCES on the checkpoint volume.
IOFaultHook = Callable[[str, int, int], None]

CURSOR_NAME = "cursor.json"
CURSOR_SCHEMA = "repro.serve-cursor"
CURSOR_VERSION = 1
#: Score-table file inside each state directory.
SCORES_NAME = "scores.json"

#: Counter names a cursor persists (the Snippet-2 runbook quartet).
_COUNTER_KEYS = ("ingested", "scored", "flagged", "checkpointed")


class CursorInvalid(ServeError):
    """The checkpoint cannot be resumed from: torn cursor, foreign
    schema/version, or a stream/config/shard mismatch.  The serving loop
    treats this as "restart from the stream head", never as fatal."""


class CheckpointIOExhausted(ServeError):
    """A checkpoint write kept failing with :class:`OSError` after every
    bounded retry — the volume is genuinely unhealthy (persistent
    ENOSPC/EACCES), not transiently flaky, so the run must stop.  The
    committed cursor is untouched: a later resume reworks at most one
    batch, exactly as after a crash."""


@dataclass(frozen=True)
class ServeCursor:
    """The committed position of a serving run.

    ``commit_index`` names the state directory holding the shard
    snapshots and score table as of this commit;
    ``day_batches_consumed`` is the replay skip count (whole days — a
    checkpoint batch never splits a day).  Counters ride inside the
    cursor so a resume restores them atomically with the position.
    """

    commit_index: int
    day_batches_consumed: int
    counters: dict[str, int]
    stream_fingerprint: str
    serve_fingerprint: str
    n_shards: int
    finished: bool

    def to_payload(self) -> dict:
        return {
            "schema": CURSOR_SCHEMA,
            "version": CURSOR_VERSION,
            "commit_index": self.commit_index,
            "day_batches_consumed": self.day_batches_consumed,
            "counters": {
                key: int(self.counters.get(key, 0)) for key in _COUNTER_KEYS
            },
            "stream_fingerprint": self.stream_fingerprint,
            "serve_fingerprint": self.serve_fingerprint,
            "n_shards": self.n_shards,
            "finished": self.finished,
        }

    @classmethod
    def from_payload(cls, payload: object) -> ServeCursor:
        """Validate and revive a cursor payload.

        Raises
        ------
        CursorInvalid
            On any schema/version/shape mismatch (version drift names
            the found and expected versions).
        """
        if not isinstance(payload, dict):
            raise CursorInvalid(f"cursor is not a JSON object: {payload!r}")
        if payload.get("schema") != CURSOR_SCHEMA:
            raise CursorInvalid(
                f"cursor schema {payload.get('schema')!r} is not "
                f"{CURSOR_SCHEMA!r}"
            )
        if payload.get("version") != CURSOR_VERSION:
            raise CursorInvalid(
                f"cursor version drift: found version "
                f"{payload.get('version')!r}, expected version "
                f"{CURSOR_VERSION}"
            )
        counters = payload.get("counters")
        if not isinstance(counters, dict):
            raise CursorInvalid("cursor counters must be an object")
        try:
            return cls(
                commit_index=int(payload["commit_index"]),
                day_batches_consumed=int(payload["day_batches_consumed"]),
                counters={
                    key: int(counters.get(key, 0)) for key in _COUNTER_KEYS
                },
                stream_fingerprint=str(payload["stream_fingerprint"]),
                serve_fingerprint=str(payload["serve_fingerprint"]),
                n_shards=int(payload["n_shards"]),
                finished=bool(payload["finished"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CursorInvalid(f"cursor missing or malformed field: {exc}") from exc


@dataclass(frozen=True)
class LoadedCheckpoint:
    """Everything a resume needs, read back from a valid checkpoint."""

    cursor: ServeCursor
    shard_payloads: list[dict]
    scores: dict
    #: A state directory newer than the cursor exists: a previous run
    #: crashed between its state write and the cursor commit, so the
    #: resumed run will rework exactly that one batch.
    orphaned_state: bool


class ServeCheckpoint:
    """One serving run's checkpoint directory (see module docstring).

    Parameters
    ----------
    directory:
        The durable run directory (cursor + state dirs + manifest).
    io_retries:
        Transient-:class:`OSError` budget per write operation: a state
        or cursor write that raises (ENOSPC, EACCES, a flaky NFS mount)
        is retried up to this many times with exponential backoff before
        :class:`CheckpointIOExhausted` stops the run.  ``0`` disables
        the retry path (first failure is final).
    io_backoff_s:
        Base backoff before the first retry; doubles per attempt.
    io_fault:
        Test/chaos hook called before every write attempt as
        ``(operation, commit_index, attempt)``; raising :class:`OSError`
        from it simulates a transient checkpoint-volume failure.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        io_retries: int = 2,
        io_backoff_s: float = 0.05,
        io_fault: IOFaultHook | None = None,
    ) -> None:
        if io_retries < 0:
            raise ConfigError(f"io_retries must be >= 0, got {io_retries}")
        if io_backoff_s < 0:
            raise ConfigError(
                f"io_backoff_s must be >= 0, got {io_backoff_s}"
            )
        self.directory = Path(directory)
        self.io_retries = int(io_retries)
        self.io_backoff_s = float(io_backoff_s)
        self.io_fault = io_fault

    @property
    def cursor_path(self) -> Path:
        return self.directory / CURSOR_NAME

    def state_dir(self, commit_index: int) -> Path:
        """The state directory of one commit."""
        return self.directory / f"state-{commit_index:06d}"

    # ------------------------------------------------------------------
    # Write protocol: state first, cursor second (the commit point).
    # ------------------------------------------------------------------
    def _with_io_retry(
        self,
        operation: str,
        commit_index: int,
        write: Callable[[], Path],
    ) -> Path:
        """Run one durable write under the bounded retry-with-backoff.

        Each failed attempt counts ``serve.checkpoint_io_retries`` and
        sleeps ``io_backoff_s * 2**attempt`` before the next try; when
        the budget is spent the last :class:`OSError` is re-raised
        wrapped in :class:`CheckpointIOExhausted`.
        """
        registry = get_metrics()
        last: OSError | None = None
        for attempt in range(self.io_retries + 1):
            try:
                if self.io_fault is not None:
                    self.io_fault(operation, commit_index, attempt)
                return write()
            except OSError as exc:
                last = exc
                if attempt >= self.io_retries:
                    break
                registry.counter(
                    obs_metrics.SERVE_CHECKPOINT_IO_RETRIES
                ).inc()
                logger.warning(
                    "checkpoint %s of commit %d failed (attempt %d/%d), "
                    "retrying: %s",
                    operation,
                    commit_index,
                    attempt + 1,
                    self.io_retries + 1,
                    exc,
                )
                time.sleep(self.io_backoff_s * (2**attempt))
        raise CheckpointIOExhausted(
            f"checkpoint {operation} of commit {commit_index} still "
            f"failing after {self.io_retries + 1} attempt(s): {last}"
        ) from last

    def write_state(
        self,
        commit_index: int,
        shard_payloads: list[dict],
        scores: dict,
    ) -> Path:
        """Write one commit's shard snapshots + score table (atomically
        per file, into a directory the current cursor does not reference
        yet — so a crash mid-write cannot tear the committed state).
        Transient :class:`OSError` is retried with backoff (see
        :meth:`_with_io_retry`); a re-attempt rewrites the whole state
        directory, which is safe because nothing references it yet."""

        def write() -> Path:
            directory = self.state_dir(commit_index)
            for shard, payload in enumerate(shard_payloads):
                atomic_write_json(
                    directory / f"shard-{shard:04d}.json", payload
                )
            atomic_write_json(directory / SCORES_NAME, scores)
            return directory

        return self._with_io_retry("write_state", commit_index, write)

    def commit(self, cursor: ServeCursor) -> Path:
        """Atomically advance the cursor, then prune superseded state.

        The cursor replace is the commit point; it rides the same
        bounded I/O retry as the state write (re-attempting an atomic
        replace is idempotent)."""

        def write() -> Path:
            return atomic_write_json(self.cursor_path, cursor.to_payload())

        path = self._with_io_retry("commit", cursor.commit_index, write)
        self._prune(keep=cursor.commit_index)
        return path

    def _prune(self, keep: int) -> None:
        kept = self.state_dir(keep)
        for candidate in sorted(self.directory.glob("state-*")):
            if candidate.is_dir() and candidate != kept:
                shutil.rmtree(candidate, ignore_errors=True)

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def load(
        self,
        *,
        stream_fingerprint: str,
        serve_fingerprint: str,
        n_shards: int,
    ) -> LoadedCheckpoint | None:
        """Read the committed checkpoint back for a resume.

        Returns ``None`` when no cursor exists (a fresh start, not an
        error).

        Raises
        ------
        CursorInvalid
            If the cursor or its referenced state cannot be trusted:
            torn/corrupt files, schema or version drift, or a
            stream/config/shard mismatch with the run being resumed.
        """
        if not self.cursor_path.exists():
            return None
        try:
            text = self.cursor_path.read_text()
        except OSError as exc:
            raise CursorInvalid(
                f"{self.cursor_path}: cannot read cursor: {exc}"
            ) from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CursorInvalid(
                f"{self.cursor_path}: torn or corrupt cursor (invalid JSON)"
            ) from exc
        cursor = ServeCursor.from_payload(payload)
        if cursor.stream_fingerprint != stream_fingerprint:
            raise CursorInvalid(
                f"cursor was recorded over stream "
                f"{cursor.stream_fingerprint}, resuming over "
                f"{stream_fingerprint}"
            )
        if cursor.serve_fingerprint != serve_fingerprint:
            raise CursorInvalid(
                f"cursor was recorded under serving config "
                f"{cursor.serve_fingerprint}, resuming under "
                f"{serve_fingerprint}"
            )
        if cursor.n_shards != n_shards:
            raise CursorInvalid(
                f"cursor has {cursor.n_shards} shard(s), resuming with "
                f"{n_shards}"
            )
        directory = self.state_dir(cursor.commit_index)
        shard_payloads: list[dict] = []
        for shard in range(n_shards):
            shard_payloads.append(
                self._read_json(directory / f"shard-{shard:04d}.json")
            )
        scores = self._read_json(directory / SCORES_NAME)
        return LoadedCheckpoint(
            cursor=cursor,
            shard_payloads=shard_payloads,
            scores=scores,
            orphaned_state=self.state_dir(cursor.commit_index + 1).exists(),
        )

    @staticmethod
    def _read_json(path: Path) -> dict:
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise CursorInvalid(
                f"{path}: committed state file is missing or unreadable: "
                f"{exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise CursorInvalid(
                f"{path}: committed state file is torn (invalid JSON)"
            ) from exc
        if not isinstance(payload, dict):
            raise CursorInvalid(f"{path}: state file is not a JSON object")
        return payload
