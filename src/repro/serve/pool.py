"""Customer-sharded monitor pool with bit-identical serial fallback.

A serving deployment cannot hold 6M customers' incremental state behind
one GIL: :class:`ShardedMonitorPool` partitions customers across
``n_shards`` independent :class:`~repro.core.streaming.StabilityMonitor`
instances (``customer_id % n_shards``, the same partition the on-disk
:class:`~repro.data.streams.PartitionedLogWriter` uses) and processes
each checkpoint batch per shard — serially in-process, or fanned out to
worker processes through :func:`~repro.runtime.executor.run_sharded`
with its full retry/degrade protocol.

The pool preserves the serving layer's headline invariant — sharded
scoring is **bit-identical** to a single monitor over the same stream —
through three properties:

* every shard's clock advances through *every* day of the stream
  (:meth:`StabilityMonitor.advance_to_day`), so all shards close the
  same windows at the same stream positions even on days none of their
  customers shopped;
* a customer's tracker state is content-determined (window item sets
  are folded in sorted order), so the basket interleaving *across*
  customers never affects any one customer's scores;
* the parallel path round-trips each shard's state through the
  versioned snapshot codec (:mod:`repro.runtime.snapshot`), whose
  round-trip guarantee pins that a restored monitor emits identical
  reports — the same slab-reference pattern the batch engine uses, so a
  retried or degraded worker attempt recomputes from the exact same
  state (``fn`` stays pure/idempotent as ``run_sharded`` requires).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.core.detector import Alarm
from repro.core.streaming import StabilityMonitor, WindowCloseReport
from repro.data.basket import Basket
from repro.data.streams import DayBatch
from repro.errors import ConfigError
from repro.runtime.executor import ExecutionReport, run_sharded
from repro.runtime.snapshot import restore_monitor, snapshot_monitor

if TYPE_CHECKING:
    from repro.core.significance import SignificanceFunction
    from repro.core.windowing import WindowGrid
    from repro.runtime.faults import FaultPlan

__all__ = ["ShardedMonitorPool", "shard_of", "merge_reports"]

#: Wire shapes shipped to worker processes: plain nested tuples only, so
#: pickling never depends on dataclass/slots details across versions.
_WireBasket = tuple[int, tuple[int, ...], float]
_WireDay = tuple[int, tuple[_WireBasket, ...]]
_WireReport = tuple[
    int,
    tuple[tuple[int, float], ...],
    tuple[tuple[int, int, float], ...],
]
_ShardTask = tuple[dict, tuple[_WireDay, ...]]


def shard_of(customer_id: int, n_shards: int) -> int:
    """The shard owning a customer (stable hash: ``id % n_shards``)."""
    return customer_id % n_shards


def merge_reports(
    per_shard: Sequence[Sequence[WindowCloseReport]],
) -> list[WindowCloseReport]:
    """Merge per-shard window-close reports into the single-monitor view.

    Shards close the same windows (the pool keeps their clocks aligned)
    and own disjoint customers, so the merge is a union: stabilities
    keyed in ascending customer order and alarms sorted by customer id —
    exactly the order a single monitor (which iterates its customers
    sorted) would have produced.
    """
    by_window: dict[int, list[WindowCloseReport]] = {}
    for shard_reports in per_shard:
        for report in shard_reports:
            by_window.setdefault(report.window_index, []).append(report)
    merged = []
    for window_index in sorted(by_window):
        stabilities: dict[int, float] = {}
        alarms: list[Alarm] = []
        for report in by_window[window_index]:
            stabilities.update(report.stabilities)
            alarms.extend(report.alarms)
        merged.append(
            WindowCloseReport(
                window_index=window_index,
                stabilities=dict(sorted(stabilities.items())),
                alarms=tuple(sorted(alarms, key=lambda a: a.customer_id)),
            )
        )
    return merged


def _serialize_report(report: WindowCloseReport) -> _WireReport:
    return (
        report.window_index,
        tuple(report.stabilities.items()),
        tuple(
            (a.customer_id, a.window_index, a.stability) for a in report.alarms
        ),
    )


def _deserialize_report(wire: _WireReport) -> WindowCloseReport:
    window_index, stabilities, alarms = wire
    return WindowCloseReport(
        window_index=window_index,
        stabilities=dict(stabilities),
        alarms=tuple(
            Alarm(customer_id=cid, window_index=w, stability=s)
            for cid, w, s in alarms
        ),
    )


def _process_shard_batch(task: _ShardTask) -> tuple[dict, tuple[_WireReport, ...]]:
    """Worker: restore one shard, play one batch of days, snapshot back.

    Pure in the :func:`run_sharded` sense — state in, state out, no side
    effects — so a timed-out attempt recomputed elsewhere cannot corrupt
    anything.
    """
    payload, days = task
    monitor = restore_monitor(payload)
    reports: list[WindowCloseReport] = []
    for day, baskets in days:
        for customer_id, items, monetary in baskets:
            reports.extend(
                monitor.ingest(
                    Basket.of(
                        customer_id=customer_id,
                        day=day,
                        items=list(items),
                        monetary=monetary,
                    )
                )
            )
        reports.extend(monitor.advance_to_day(day))
    return (
        snapshot_monitor(monitor),
        tuple(_serialize_report(r) for r in reports),
    )


class ShardedMonitorPool:
    """``n_shards`` customer-partitioned monitors behind one batch API.

    Parameters
    ----------
    monitors:
        One :class:`StabilityMonitor` per shard, identically configured
        and clock-aligned (shard ``i`` owns customers with
        ``customer_id % n_shards == i``).
    parallel:
        Process each batch's shards in worker processes via
        :func:`run_sharded` (retry waves, serial degrade) instead of
        in-process.  Results are bit-identical either way; parallelism
        is purely a throughput lever.
    retries, timeout, fault_plan:
        Passed through to :func:`run_sharded` in parallel mode.
    """

    def __init__(
        self,
        monitors: Sequence[StabilityMonitor],
        *,
        parallel: bool = False,
        retries: int = 2,
        timeout: float | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if not monitors:
            raise ConfigError("a monitor pool needs at least one shard")
        self.monitors = list(monitors)
        self.parallel = bool(parallel)
        self.retries = int(retries)
        self.timeout = timeout
        self.fault_plan = fault_plan
        #: Executor report of the most recent parallel batch (None until
        #: one ran); surfaces retry/degrade history for the manifest.
        self.last_report: ExecutionReport | None = None

    @property
    def n_shards(self) -> int:
        return len(self.monitors)

    @classmethod
    def create(
        cls,
        grid: WindowGrid,
        *,
        n_shards: int = 1,
        beta: float = 0.5,
        significance: SignificanceFunction | None = None,
        counting: str = "paper",
        first_alarm_window: int = 0,
        parallel: bool = False,
        retries: int = 2,
        timeout: float | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> ShardedMonitorPool:
        """Build a fresh pool of identically configured shard monitors."""
        if n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
        monitors = [
            StabilityMonitor(
                grid,
                beta=beta,
                significance=significance,
                counting=counting,
                first_alarm_window=first_alarm_window,
            )
            for _ in range(n_shards)
        ]
        return cls(
            monitors,
            parallel=parallel,
            retries=retries,
            timeout=timeout,
            fault_plan=fault_plan,
        )

    @classmethod
    def from_snapshots(
        cls,
        payloads: Sequence[dict],
        *,
        parallel: bool = False,
        retries: int = 2,
        timeout: float | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> ShardedMonitorPool:
        """Restore a pool from per-shard snapshot payloads (a checkpoint).

        Raises
        ------
        SnapshotError
            If any payload is corrupt or from an incompatible version.
        """
        return cls(
            [restore_monitor(payload) for payload in payloads],
            parallel=parallel,
            retries=retries,
            timeout=timeout,
            fault_plan=fault_plan,
        )

    def set_fault_plan(self, fault_plan: FaultPlan | None) -> None:
        """Swap the injected fault plan for subsequent batches.

        The plan is read at each :meth:`process_batch` call, so the
        chaos harness can schedule a fault for exactly one batch by
        installing a plan before it and restoring the base plan after
        (the serving loop's ``on_batch_start`` hook does exactly this).
        """
        self.fault_plan = fault_plan

    def snapshot_shards(self) -> list[dict]:
        """One versioned snapshot payload per shard, in shard order."""
        return [snapshot_monitor(monitor) for monitor in self.monitors]

    def customers(self) -> list[int]:
        """Sorted ids of customers seen so far, across all shards."""
        seen: set[int] = set()
        for monitor in self.monitors:
            seen.update(monitor.customers())
        return sorted(seen)

    # ------------------------------------------------------------------
    # Batch processing
    # ------------------------------------------------------------------
    def process_batch(
        self, batches: Sequence[DayBatch]
    ) -> list[WindowCloseReport]:
        """Play a group of day batches through every shard; merged reports.

        Raises
        ------
        DataError
            If the batches regress the stream clock or leave the grid
            (from the underlying monitors).
        """
        if not batches:
            return []
        if self.parallel and self.n_shards > 1:
            return self._process_parallel(batches)
        return self._process_serial(batches)

    def _process_serial(
        self, batches: Sequence[DayBatch]
    ) -> list[WindowCloseReport]:
        per_shard: list[list[WindowCloseReport]] = [
            [] for _ in self.monitors
        ]
        for batch in batches:
            split: list[list[Basket]] = [[] for _ in self.monitors]
            for basket in batch.baskets:
                split[shard_of(basket.customer_id, self.n_shards)].append(
                    basket
                )
            for shard, monitor in enumerate(self.monitors):
                for basket in split[shard]:
                    per_shard[shard].extend(monitor.ingest(basket))
                per_shard[shard].extend(monitor.advance_to_day(batch.day))
        return merge_reports(per_shard)

    def _process_parallel(
        self, batches: Sequence[DayBatch]
    ) -> list[WindowCloseReport]:
        tasks: list[_ShardTask] = []
        for shard, monitor in enumerate(self.monitors):
            days: tuple[_WireDay, ...] = tuple(
                (
                    batch.day,
                    tuple(
                        (
                            basket.customer_id,
                            tuple(sorted(basket.items)),
                            basket.monetary,
                        )
                        for basket in batch.baskets
                        if shard_of(basket.customer_id, self.n_shards)
                        == shard
                    ),
                )
                for batch in batches
            )
            tasks.append((snapshot_monitor(monitor), days))
        results, report = run_sharded(
            _process_shard_batch,
            tasks,
            max_workers=self.n_shards,
            retries=self.retries,
            timeout=self.timeout,
            fault_plan=self.fault_plan,
        )
        self.last_report = report
        per_shard: list[list[WindowCloseReport]] = []
        for shard, (payload, serialized) in enumerate(results):
            self.monitors[shard] = restore_monitor(payload)
            per_shard.append([_deserialize_report(r) for r in serialized])
        return merge_reports(per_shard)

    def finish(self) -> list[WindowCloseReport]:
        """Close every remaining window on every shard; merged reports.

        Always runs in the parent process — end-of-stream work is one
        pass over already-resident state, not worth a pool round trip.
        """
        return merge_reports([monitor.finish() for monitor in self.monitors])
