"""A7 — robustness: churn-mechanism crossover and vacation gaps.

Two studies the paper's proprietary single-dataset evaluation could not
run:

* **mechanism crossover** — stability (content signal) vs RFM (volume
  signal) under item-loss-only, trip-decay-only and mixed churn; locates
  where each model wins;
* **vacation sensitivity** — long shopping gaps in otherwise loyal
  customers, the windowed model's canonical false-alarm source.
"""

from __future__ import annotations

from benchmarks.conftest import save_artifact
from repro.eval.reporting import format_table
from repro.eval.robustness import mechanism_crossover, vacation_sensitivity

MONTHS = (20, 22, 24)


def test_mechanism_crossover(benchmark, output_dir):
    results = benchmark.pedantic(
        mechanism_crossover,
        kwargs={"n_loyal": 100, "n_churners": 100, "months": MONTHS, "seed": 7},
        rounds=1,
        iterations=1,
    )
    rows = []
    for result in results:
        for name, series in (
            ("stability", result.stability_auroc),
            ("rfm", result.rfm_auroc),
        ):
            rows.append(
                (result.mechanism, name, *(f"{series[m]:.3f}" for m in MONTHS))
            )
    text = "\n".join(
        [
            "A7a — churn-mechanism crossover (AUROC by month)",
            format_table(
                ("mechanism", "model", *(f"m{m}" for m in MONTHS)), rows
            ),
        ]
    )
    save_artifact(output_dir, "robustness_mechanisms.txt", text)

    by_mechanism = {r.mechanism: r for r in results}
    # Content-only churn: stability must dominate clearly.
    item_loss = by_mechanism["item-loss"]
    assert item_loss.stability_auroc[22] > item_loss.rfm_auroc[22] + 0.1
    # Volume-only churn: RFM catches up or wins — the crossover.
    trip_decay = by_mechanism["trip-decay"]
    assert trip_decay.rfm_auroc[24] > trip_decay.stability_auroc[24] - 0.05
    # Mixed churn (the realistic case, Figure 1's setting): both detect.
    mixed = by_mechanism["mixed"]
    assert mixed.stability_auroc[24] > 0.85
    assert mixed.rfm_auroc[24] > 0.7


def test_vacation_sensitivity(benchmark, output_dir):
    points = benchmark.pedantic(
        vacation_sensitivity,
        kwargs={
            "vacation_probs": (0.0, 0.2, 0.4, 0.6),
            "n_loyal": 80,
            "n_churners": 80,
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            f"{p.vacation_prob:.0%}",
            f"{p.auroc:.3f}",
            f"{p.loyal_false_alarm_rate:.1%}",
        )
        for p in points
    ]
    text = "\n".join(
        [
            "A7b — vacation sensitivity (45-75 day gaps; AUROC at month 22,"
            " loyal FAR at beta=0.5)",
            format_table(("vacationing", "AUROC", "loyal false alarms"), rows),
        ]
    )
    save_artifact(output_dir, "robustness_vacations.txt", text)

    assert all(p.auroc > 0.75 for p in points)
    # More vacationers must not *reduce* the false-alarm pressure by much;
    # the study documents the degradation direction.
    assert points[-1].loyal_false_alarm_rate >= points[0].loyal_false_alarm_rate - 0.05
