"""A2 — ablation: the window span ``w``.

DESIGN.md design-choice 2: short windows react faster but see fewer
shopping cycles per window (noisier significance); long windows smooth but
delay detection.  The sweep measures detection AUROC at the first window
ending at or after onset+2 months for each span.
"""

from __future__ import annotations

from benchmarks.conftest import save_artifact
from repro.eval.ablations import window_sweep
from repro.eval.reporting import render_ablation


def test_window_sweep(benchmark, bench_dataset, output_dir):
    points = benchmark.pedantic(
        window_sweep,
        kwargs={
            "bundle": bench_dataset.bundle,
            "window_months_list": (1, 2, 3, 4),
        },
        rounds=1,
        iterations=1,
    )
    text = render_ablation("A2 — detection AUROC vs window span", points)
    save_artifact(output_dir, "ablation_window.txt", text)

    by_label = {p.label: p.auroc for p in points}
    assert all(v > 0.5 for v in by_label.values())
    # The paper's 2-month window must be competitive with the best span.
    assert by_label["w=2mo"] > max(by_label.values()) - 0.1
