"""E1-detail — the beta-threshold operating points behind Figure 1.

Section 3.1: "The points on these curves are obtained using different
thresholds beta for the customer stability.  If Stability_i^k > beta the
customer is considered loyal.  Otherwise, the customer is considered as
defecting."  This bench materialises that sweep at the paper's headline
month (onset + 2): the full ROC curve of the stability score, with the
beta value, false-positive rate and true-positive rate of selected
operating points — the table a retailer uses to pick their beta.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_artifact
from repro.core.model import StabilityModel
from repro.eval.reporting import format_table
from repro.ml.bootstrap import bootstrap_auroc_ci
from repro.ml.metrics import roc_curve

EVAL_MONTH = 20


def _stability_scores(dataset):
    customers = dataset.cohorts.all_customers()
    model = StabilityModel(dataset.calendar, window_months=2, alpha=2.0).fit(
        dataset.log, customers
    )
    window = next(
        k for k in range(model.n_windows) if model.window_month(k) == EVAL_MONTH
    )
    scores = model.churn_scores(window, customers)
    y = dataset.cohorts.label_vector(customers)
    s = np.asarray([scores[c] for c in customers])
    return y, s


def test_roc_operating_points(benchmark, bench_dataset, output_dir):
    y, s = benchmark.pedantic(
        _stability_scores, args=(bench_dataset,), rounds=1, iterations=1
    )
    curve = roc_curve(y, s)
    ci = bootstrap_auroc_ci(y, s, n_resamples=500, seed=0)

    # Selected operating points: the thresholds closest to round FPRs.
    rows = []
    for target_fpr in (0.01, 0.05, 0.10, 0.20, 0.50):
        index = int(np.searchsorted(curve.fpr, target_fpr, side="left"))
        index = min(index, len(curve.fpr) - 1)
        threshold = curve.thresholds[index]
        # churn score = 1 - stability, so beta = 1 - threshold.
        beta = 1.0 - threshold if np.isfinite(threshold) else 1.0
        rows.append(
            (
                f"{target_fpr:.0%}",
                f"{beta:.3f}",
                f"{curve.fpr[index]:.3f}",
                f"{curve.tpr[index]:.3f}",
            )
        )
    text = "\n".join(
        [
            f"E1-detail — beta operating points at month {EVAL_MONTH} "
            f"(AUROC {ci})",
            format_table(("target FPR", "beta", "FPR", "TPR"), rows),
        ]
    )
    save_artifact(output_dir, "roc_operating_points.txt", text)

    assert ci.low > 0.6  # even the CI lower bound beats chance at month 20
    assert curve.area() == ci.point
    # TPR must grow along the selected operating points.
    tprs = [float(r[3]) for r in rows]
    assert tprs == sorted(tprs)
