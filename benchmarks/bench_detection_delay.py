"""A4 — detection delay at calibrated false-alarm budgets.

Quantifies the paper's Section 3.1 claim that "identification takes place
in the first months of the customer defection": with beta calibrated so at
most a budgeted fraction of loyal customers ever alarms, how many months
after their onset are churners first flagged?  Reported at three budgets —
the operating curve a retailer actually chooses from.
"""

from __future__ import annotations

from benchmarks.conftest import save_artifact
from repro.eval.delay import detection_delay
from repro.eval.reporting import format_table
from repro.viz.ascii import histogram

BUDGETS = (0.05, 0.10, 0.20)


def test_detection_delay(benchmark, bench_dataset, output_dir):
    analyses = {
        budget: detection_delay(
            bench_dataset.bundle, target_false_alarm_rate=budget
        )
        for budget in BUDGETS[:-1]
    }
    analyses[BUDGETS[-1]] = benchmark.pedantic(
        detection_delay,
        kwargs={
            "bundle": bench_dataset.bundle,
            "target_false_alarm_rate": BUDGETS[-1],
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            f"{budget:.0%}",
            f"{a.beta:.3f}",
            f"{a.realised_false_alarm_rate:.1%}",
            f"{a.recall:.1%}",
            f"{a.median_delay_months:.1f}",
            f"{a.mean_delay_months:.1f}",
        )
        for budget, a in sorted(analyses.items())
    ]
    delay_hist = histogram(
        list(analyses[0.20].delays_months.values()),
        n_bins=8,
        title="delay distribution at the 20% budget (months from onset to alarm):",
        value_format="{:.0f}",
    )
    text = "\n".join(
        [
            "A4 — detection delay vs loyal false-alarm budget",
            format_table(
                ("budget", "beta", "realised FAR", "recall", "median mo", "mean mo"),
                rows,
            ),
            "",
            delay_hist,
        ]
    )
    save_artifact(output_dir, "detection_delay.txt", text)

    for budget, analysis in analyses.items():
        assert analysis.realised_false_alarm_rate <= budget + 1e-9
    # Recall and delay both improve as the budget loosens.
    recalls = [analyses[b].recall for b in BUDGETS]
    assert recalls == sorted(recalls)
    # "identification takes place in the first months of defection":
    # at the 20% operating point, most churners are caught within ~5 months.
    assert analyses[0.20].recall > 0.8
    assert analyses[0.20].median_delay_months <= 6.0
