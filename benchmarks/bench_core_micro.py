"""Micro-benchmarks of the model's inner loops.

These pin the throughput of the two hot paths — significance tracking and
stability trajectories — so regressions in the core show up even when the
end-to-end benches are dominated by data generation.
"""

from __future__ import annotations

import numpy as np

from repro.core.significance import ExponentialSignificance, SignificanceTracker
from repro.core.stability import stability_trajectory
from repro.core.windowing import Window


def _synthetic_windows(n_windows: int, n_items: int, seed: int = 0) -> list[Window]:
    rng = np.random.default_rng(seed)
    windows = []
    for k in range(n_windows):
        items = frozenset(
            int(i) for i in rng.choice(n_items, size=n_items // 2, replace=False)
        )
        windows.append(Window(index=k, begin_day=k, end_day=k + 1, items=items))
    return windows


def test_significance_tracker_throughput(benchmark):
    windows = _synthetic_windows(n_windows=50, n_items=200)

    def run():
        tracker = SignificanceTracker(ExponentialSignificance(2.0))
        for window in windows:
            tracker.significance_snapshot()
            tracker.observe_window(window.items)
        return tracker

    tracker = benchmark(run)
    assert tracker.n_windows_observed == 50


def test_stability_trajectory_throughput(benchmark):
    windows = _synthetic_windows(n_windows=50, n_items=200)
    trajectory = benchmark(stability_trajectory, 1, windows)
    assert len(trajectory) == 50
    assert trajectory.at(10).defined


def test_vectorized_stability_throughput(benchmark):
    from repro.core.vectorized import vectorized_stability

    windows = _synthetic_windows(n_windows=50, n_items=200)
    values = benchmark(vectorized_stability, windows)
    assert values.shape == (50,)
    # Cross-check against the incremental engine on this input.
    reference = stability_trajectory(1, windows)
    assert abs(values[10] - reference.at(10).stability) < 1e-12
