"""E2 — regenerate Figure 2: the individual stability trajectory.

Paper reference: the customer "is loyal in the first months, and defecting
starting from month 20"; the month-20 decrease is a **coffee** loss, the
sharper month-22 decrease is a **milk, sponge and cheese** loss.

The benchmark times one full case-study run (trajectory + explanations).
"""

from __future__ import annotations

from benchmarks.conftest import save_artifact
from repro.eval.figure2 import run_figure2
from repro.eval.reporting import render_figure2


def test_figure2_regeneration(benchmark, bench_case_study, output_dir):
    result = benchmark.pedantic(
        run_figure2,
        kwargs={"case": bench_case_study},
        rounds=5,
        iterations=1,
    )
    save_artifact(output_dir, "figure2.txt", render_figure2(result))

    by_month = dict(zip(result.months, result.stability))
    # Loyal before the onset, first drop at 20, sharper drop at 22.
    assert all(by_month[m] > 0.9 for m in (12, 14, 16, 18))
    assert by_month[20] < by_month[18]
    assert (by_month[20] - by_month[22]) > (by_month[18] - by_month[20])
    # The paper's annotations, recovered from the model's explanations.
    assert result.explained_names(20, top_k=1) == ["Coffee"]
    assert set(result.explained_names(22, top_k=3)) == {"Milk", "Sponges", "Cheese"}
