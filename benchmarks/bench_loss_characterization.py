"""A6 — population loss characterization (the paper's future work).

The paper's conclusion announces a deeper "characterization of significant
products that can explain customer defection"; this bench runs that study
on the benchmark population: loss-event rates per cohort, the
abrupt-vs-fading split, recovery rates, and the department-level rollup of
what churners abandon.
"""

from __future__ import annotations

from benchmarks.conftest import save_artifact
from repro.core.characterization import profile_population
from repro.core.model import StabilityModel
from repro.eval.reporting import format_table


def _profiles(dataset):
    model = StabilityModel(dataset.calendar, window_months=2).fit(dataset.log)
    loyal = profile_population(
        (model.trajectory(c) for c in sorted(dataset.cohorts.loyal)),
        min_share=0.03,
    )
    churners = profile_population(
        (model.trajectory(c) for c in sorted(dataset.cohorts.churners)),
        min_share=0.03,
    )
    return loyal, churners


def test_loss_characterization(benchmark, bench_dataset, output_dir):
    loyal, churners = benchmark.pedantic(
        _profiles, args=(bench_dataset,), rounds=1, iterations=1
    )
    catalog = bench_dataset.catalog

    def cohort_rows(profile):
        events = [s for s in profile.segments.values()]
        n_abrupt = sum(s.n_abrupt for s in events)
        n_recovered = sum(s.n_recovered for s in events)
        return (
            f"{profile.n_events / profile.n_customers:.2f}",
            f"{n_abrupt / profile.n_events:.1%}" if profile.n_events else "-",
            f"{n_recovered / profile.n_events:.1%}" if profile.n_events else "-",
        )

    summary = format_table(
        ("cohort", "losses/customer", "abrupt", "recovered"),
        [
            ("loyal", *cohort_rows(loyal)),
            ("churners", *cohort_rows(churners)),
        ],
    )
    top = format_table(
        ("segment", "losses", "abrupt", "recovered", "mean share"),
        [
            (
                catalog.segment(s.item).name,
                s.n_losses,
                f"{s.abrupt_rate:.0%}",
                f"{s.recovery_rate:.0%}",
                f"{s.mean_share:.1%}",
            )
            for s in churners.top_lost(8)
        ],
    )
    departments = format_table(
        ("department", "churner losses"),
        sorted(
            churners.department_rollup(catalog).items(),
            key=lambda pair: -pair[1],
        )[:6],
    )
    text = "\n\n".join(
        [
            "A6 — loss characterization (significant-product losses per cohort)",
            summary,
            "top lost segments (churner cohort):\n" + top,
            "department rollup (churner cohort):\n" + departments,
        ]
    )
    save_artifact(output_dir, "loss_characterization.txt", text)

    # Churners lose significant products markedly more often than loyal
    # customers (loyal losses exist too — occasional misses of habitual
    # items — but at a clearly lower rate), and recover them less often.
    churner_rate = churners.n_events / churners.n_customers
    loyal_rate = loyal.n_events / loyal.n_customers
    assert churner_rate > 1.5 * loyal_rate

    def recovery_rate(profile):
        recovered = sum(s.n_recovered for s in profile.segments.values())
        return recovered / profile.n_events

    assert recovery_rate(churners) < recovery_rate(loyal)
