"""S2 — streaming monitor throughput and batch equivalence.

Times the online :class:`~repro.core.streaming.StabilityMonitor` ingesting
the full benchmark dataset (the deployment path: receipts arrive one by
one), and verifies it reproduces the batch model's stability values
exactly — the property that lets a retailer run the paper's model
incrementally over millions of customers without recomputation.
"""

from __future__ import annotations

import math

from benchmarks.conftest import save_artifact
from repro.core.model import StabilityModel
from repro.core.streaming import StabilityMonitor
from repro.core.windowing import WindowGrid
from repro.eval.reporting import format_table


def _stream_all(dataset):
    grid = WindowGrid.monthly(dataset.calendar, 2)
    monitor = StabilityMonitor(grid, beta=0.5, first_alarm_window=5)
    for customer in dataset.log.customers():
        monitor.register(customer)
    baskets = sorted(dataset.log, key=lambda b: b.day)
    reports = monitor.ingest_many(baskets)
    reports += monitor.finish()
    return monitor, reports, len(baskets)


def test_streaming_monitor(benchmark, bench_dataset, output_dir):
    monitor, reports, n_baskets = benchmark.pedantic(
        _stream_all, args=(bench_dataset,), rounds=3, iterations=1
    )

    # Equivalence with the batch model on a sample of customers.
    model = StabilityModel(bench_dataset.calendar, window_months=2).fit(
        bench_dataset.log
    )
    by_window = {r.window_index: r for r in reports}
    checked = 0
    for customer in bench_dataset.log.customers()[::25]:
        trajectory = model.trajectory(customer)
        for k in range(model.n_windows):
            batch = trajectory.at(k).stability
            streamed = by_window[k].stabilities[customer]
            # Summation order differs between the two paths, so allow
            # 1-ulp float noise.
            assert (math.isnan(batch) and math.isnan(streamed)) or (
                abs(streamed - batch) <= 1e-12
            )
            checked += 1
    assert checked > 100

    total_alarms = sum(len(r.alarms) for r in reports)
    rows = [
        ("receipts streamed", f"{n_baskets:,}"),
        ("customers", f"{len(monitor.customers()):,}"),
        ("windows closed", f"{len(reports)}"),
        ("alarms raised (beta=0.5)", f"{total_alarms:,}"),
        ("batch-equivalence checks", f"{checked:,} (all within 1e-12)"),
    ]
    text = "\n".join(
        [
            "S2 — streaming monitor over the full benchmark dataset",
            format_table(("metric", "value"), rows),
        ]
    )
    save_artifact(output_dir, "streaming.txt", text)
