"""E4 — the 5-fold cross-validated parameter search.

Paper reference (Section 3.1): "The window length for this experiment is
set to two months and the alpha parameter is set to 2.  These values were
chosen after performing a 5-fold cross-validation search."

The benchmark times the full grid search (3 window spans x 4 alphas x 5
folds) and regenerates the selection table.
"""

from __future__ import annotations

from benchmarks.conftest import save_artifact
from repro.core.tuning import tune_stability_model
from repro.eval.reporting import format_table


def test_parameter_search_regeneration(benchmark, bench_dataset, output_dir):
    outcome = benchmark.pedantic(
        tune_stability_model,
        kwargs={
            "log": bench_dataset.log,
            "cohorts": bench_dataset.cohorts,
            "calendar": bench_dataset.calendar,
            "window_grid": (1, 2, 3),
            "alpha_grid": (1.5, 2.0, 3.0, 4.0),
            "n_splits": 5,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        (f"w={p['window_months']}mo", f"alpha={p['alpha']:g}", f"{score:.3f}")
        for p, score, __ in sorted(outcome.search.table, key=lambda e: -e[1])
    ]
    text = "\n".join(
        [
            "E4 — 5-fold CV parameter search (paper selected w=2mo, alpha=2)",
            format_table(("window", "alpha", "mean CV AUROC"), rows),
            f"selected: w={outcome.best_window_months}mo, "
            f"alpha={outcome.best_alpha:g} (AUROC {outcome.best_score:.3f})",
        ]
    )
    save_artifact(output_dir, "table_param_search.txt", text)

    assert len(outcome.search.table) == 12
    assert outcome.best_score > 0.6
    # The paper's chosen configuration must be competitive: within a small
    # margin of the best grid point on our synthetic data.
    paper_score = next(
        score
        for params, score, __ in outcome.search.table
        if params["window_months"] == 2 and params["alpha"] == 2.0
    )
    assert paper_score > outcome.best_score - 0.1
