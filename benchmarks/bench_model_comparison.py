"""A5 — all implemented models, head to head, at campaign budgets.

Extends Figure 1's two-model comparison to the full roster: stability
(the paper), RFM (the paper's baseline), extended behavioural features
(Buckinx & Van den Poel's full battery), first/last-sequence features
(Miguéis et al., the paper's reference [2]), and the naive anchors.
AUROC plus lift at a 10% targeting budget, per evaluation month.
"""

from __future__ import annotations

from benchmarks.conftest import save_artifact
from repro.eval.campaign import compare_models
from repro.eval.reporting import format_table

MONTHS = (20, 22, 24)


def test_model_comparison(benchmark, bench_dataset, output_dir):
    comparison = benchmark.pedantic(
        compare_models,
        kwargs={
            "bundle": bench_dataset.bundle,
            "months": MONTHS,
            "budgets": (0.1,),
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for model, by_month in comparison.auroc_table():
        lift = comparison.at(model, 24).lift[0.1]
        rows.append(
            (
                model,
                *(f"{by_month[m]:.3f}" for m in MONTHS),
                f"{lift:.2f}x",
            )
        )
    text = "\n".join(
        [
            "A5 — model comparison: AUROC by month, lift@10% at month 24",
            format_table(("model", *(f"m{m}" for m in MONTHS), "lift@10%"), rows),
        ]
    )
    save_artifact(output_dir, "model_comparison.txt", text)

    random_24 = comparison.at("random", 24).auroc
    for serious in ("stability", "rfm", "behavioral", "sequence"):
        assert comparison.at(serious, 24).auroc > random_24 + 0.15
    # The paper's model must stay competitive with every baseline.
    best_24 = max(comparison.at(m, 24).auroc for m in comparison.models())
    assert comparison.at("stability", 24).auroc > best_24 - 0.1
    # And its 10%-budget campaign must comfortably beat random mailing.
    assert comparison.at("stability", 24).lift[0.1] > 1.4
