"""A3 — ablation: do the paper's explanations recover the real losses?

The paper argues the model's upside is *actionable* explanations: the
argmax missing-significance product names what the customer stopped
buying.  On synthetic data the generator knows the ground truth, so this
bench scores precision/recall of the top-K explanations against the
injected drops, for several K.
"""

from __future__ import annotations

from benchmarks.conftest import save_artifact
from repro.eval.ablations import explanation_quality
from repro.eval.reporting import format_table


def test_explanation_quality(benchmark, bench_dataset, output_dir):
    quality_k3 = benchmark.pedantic(
        explanation_quality,
        kwargs={"dataset": bench_dataset, "top_k": 3},
        rounds=1,
        iterations=1,
    )
    rows = []
    for top_k in (1, 3, 5):
        quality = (
            quality_k3
            if top_k == 3
            else explanation_quality(bench_dataset, top_k=top_k)
        )
        rows.append(
            (
                f"top-{top_k}",
                f"{quality.precision:.3f}",
                f"{quality.recall:.3f}",
                quality.n_evaluated,
            )
        )
    text = "\n".join(
        [
            "A3 — explanation quality vs injected ground-truth losses",
            format_table(("K", "precision", "recall", "windows"), rows),
        ]
    )
    save_artifact(output_dir, "ablation_explanation_quality.txt", text)

    assert quality_k3.n_evaluated > 100
    # Random guessing over ~120 segments would score under 5%.
    assert quality_k3.precision > 0.2
    assert quality_k3.recall > 0.3
