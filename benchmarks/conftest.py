"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one paper artifact (table or figure), prints
it, saves the rendered text under ``benchmarks/output/`` and times the
computation with pytest-benchmark.  The dataset is generated once per
session at a scale that keeps the full harness under a couple of minutes
while leaving enough customers for stable AUROC estimates.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.synth import ScenarioConfig, figure2_case_study, generate_dataset

OUTPUT_DIR = Path(__file__).parent / "output"

#: Scale of the benchmark dataset (paper: 6M customers; see DESIGN.md for
#: the substitution rationale — the code path is identical).
BENCH_LOYAL = 150
BENCH_CHURNERS = 150
BENCH_SEED = 7


@pytest.fixture(scope="session")
def bench_dataset():
    """The Figure 1 population at benchmark scale."""
    return generate_dataset(
        ScenarioConfig(n_loyal=BENCH_LOYAL, n_churners=BENCH_CHURNERS, seed=BENCH_SEED)
    )


@pytest.fixture(scope="session")
def bench_case_study():
    """The Figure 2 case-study fixture."""
    return figure2_case_study(seed=11)


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def save_artifact(output_dir: Path, name: str, text: str) -> None:
    """Persist a rendered artifact and echo it to stdout."""
    (output_dir / name).write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
