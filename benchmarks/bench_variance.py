"""S3 — seed-variance of the Figure 1 reproduction.

Runs the Figure 1 experiment across five independently generated
populations and reports mean ± std AUROC per month for both models, so the
single-run numbers in EXPERIMENTS.md carry error bars.
"""

from __future__ import annotations

from benchmarks.conftest import save_artifact
from repro.eval.reporting import format_table
from repro.eval.variance import figure1_variance

SEEDS = (1, 2, 3, 4, 5)


def test_figure1_variance(benchmark, output_dir):
    summary = benchmark.pedantic(
        figure1_variance,
        kwargs={"seeds": SEEDS, "n_loyal": 80, "n_churners": 80},
        rounds=1,
        iterations=1,
    )
    text = "\n".join(
        [
            f"S3 — Figure 1 across {len(SEEDS)} dataset seeds (mean ± std AUROC)",
            format_table(("month", "stability", "rfm"), summary.rows()),
        ]
    )
    save_artifact(output_dir, "figure1_variance.txt", text)

    # The reproduced shape must hold in expectation, not just per-seed:
    assert abs(summary.stability_mean[14] - 0.5) < 0.15  # pre-onset chance
    assert summary.stability_mean[20] > 0.7  # paper's 0.79 checkpoint
    assert summary.stability_mean[24] > 0.9
    assert summary.rfm_mean[24] > 0.75
    # And the run-to-run noise must be small enough for the single-run
    # tables to be meaningful.
    assert all(summary.stability_std[m] < 0.1 for m in (20, 22, 24))
