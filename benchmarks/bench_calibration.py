"""A10 — calibrating the stability score into a churn probability.

``1 - stability`` ranks customers well (Figure 1) but is not a
probability: its raw values over-state risk for habitual shoppers with
small baskets and under-state it elsewhere.  This bench measures the
expected calibration error of the raw score at month 22 and after Platt
scaling on a held-out half, confirming the monotone recalibration keeps
AUROC identical while making the probabilities budgetable.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_artifact
from repro.core.model import StabilityModel
from repro.eval.protocol import EvaluationProtocol
from repro.eval.reporting import format_table
from repro.ml.calibration import PlattCalibrator, expected_calibration_error
from repro.ml.metrics import auroc

EVAL_MONTH = 22


def _scores(dataset):
    protocol = EvaluationProtocol(dataset.bundle)
    fit_ids, eval_ids = protocol.train_test_split(seed=0)
    model = StabilityModel(dataset.calendar, window_months=2).fit(
        dataset.log, fit_ids + eval_ids
    )
    window = next(
        k for k in range(model.n_windows) if model.window_month(k) == EVAL_MONTH
    )

    def vectors(ids):
        scores = model.churn_scores(window, ids)
        y = dataset.cohorts.label_vector(ids)
        return y, np.asarray([scores[c] for c in ids])

    return vectors(fit_ids), vectors(eval_ids)


def test_stability_score_calibration(benchmark, bench_dataset, output_dir):
    (fit_y, fit_s), (eval_y, eval_s) = benchmark.pedantic(
        _scores, args=(bench_dataset,), rounds=1, iterations=1
    )
    raw_ece = expected_calibration_error(eval_y, eval_s)
    calibrator = PlattCalibrator().fit(fit_s, fit_y)
    calibrated = calibrator.transform(eval_s)
    platt_ece = expected_calibration_error(eval_y, calibrated)
    raw_auc = auroc(eval_y, eval_s)
    platt_auc = auroc(eval_y, calibrated)

    rows = [
        ("raw 1 - stability", f"{raw_ece:.3f}", f"{raw_auc:.3f}"),
        ("Platt-calibrated", f"{platt_ece:.3f}", f"{platt_auc:.3f}"),
    ]
    text = "\n".join(
        [
            f"A10 — calibration of the stability churn score at month {EVAL_MONTH} "
            f"(held-out half)",
            format_table(("score", "ECE", "AUROC"), rows),
        ]
    )
    save_artifact(output_dir, "calibration.txt", text)

    assert platt_ece < raw_ece  # calibration genuinely improves
    assert platt_auc == raw_auc  # and the ranking is untouched