"""A9 — ablation: revenue-weighted stability.

An extension the paper's framework admits naturally: weight each item's
significance by its segment price, so stability measures the *revenue*
share of the habit a customer kept.  The bench compares plain vs
revenue-weighted stability on (a) detection AUROC and (b) the share of
at-risk revenue captured when targeting the top 10% — the metric a
finance-minded retention programme optimises.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_artifact
from repro.core.model import StabilityModel
from repro.eval.reporting import format_table
from repro.ml.metrics import auroc
from repro.synth.shopping import segment_prices

MONTHS = (20, 22)
BUDGET = 0.10


def _evaluate(dataset, item_weights):
    customers = dataset.cohorts.all_customers()
    model = StabilityModel(
        dataset.calendar, window_months=2, alpha=2.0, item_weights=item_weights
    ).fit(dataset.log, customers)
    y = dataset.cohorts.label_vector(customers)

    # Revenue at risk: each churner's pre-onset spend rate (per month).
    onset_day = dataset.calendar.month_start_day(dataset.cohorts.onset_month)
    at_risk = {}
    for customer in customers:
        if not dataset.cohorts.is_churner(customer):
            at_risk[customer] = 0.0
            continue
        spend = sum(
            b.monetary for b in dataset.log.history(customer) if b.day < onset_day
        )
        at_risk[customer] = spend / dataset.cohorts.onset_month

    out = {}
    for month in MONTHS:
        window = next(
            k for k in range(model.n_windows) if model.window_month(k) == month
        )
        scores = model.churn_scores(window, customers)
        s = np.asarray([scores[c] for c in customers])
        out[month] = {"auroc": auroc(y, s)}
        k = max(1, int(round(BUDGET * len(customers))))
        top = [customers[i] for i in np.argsort(-s, kind="mergesort")[:k]]
        captured = sum(at_risk[c] for c in top)
        total = sum(at_risk.values())
        out[month]["revenue_capture"] = captured / total if total else 0.0
    return out


def _oracle_capture(dataset) -> float:
    """Upper bound: target the highest-spend churners directly."""
    customers = dataset.cohorts.all_customers()
    onset_day = dataset.calendar.month_start_day(dataset.cohorts.onset_month)
    at_risk = {
        c: (
            sum(b.monetary for b in dataset.log.history(c) if b.day < onset_day)
            if dataset.cohorts.is_churner(c)
            else 0.0
        )
        for c in customers
    }
    k = max(1, int(round(BUDGET * len(customers))))
    best = sorted(at_risk.values(), reverse=True)[:k]
    total = sum(at_risk.values())
    return sum(best) / total if total else 0.0


def test_revenue_weighting(benchmark, bench_dataset, output_dir):
    prices = segment_prices(bench_dataset.catalog)
    plain = _evaluate(bench_dataset, item_weights=None)
    weighted = benchmark.pedantic(
        _evaluate, args=(bench_dataset, prices), rounds=1, iterations=1
    )
    oracle = _oracle_capture(bench_dataset)
    rows = []
    for name, result in (("plain", plain), ("revenue-weighted", weighted)):
        for month in MONTHS:
            rows.append(
                (
                    name,
                    month,
                    f"{result[month]['auroc']:.3f}",
                    f"{result[month]['revenue_capture']:.1%}",
                )
            )
    text = "\n".join(
        [
            f"A9 — plain vs revenue-weighted stability "
            f"(revenue capture = at-risk spend reached in the top {BUDGET:.0%})",
            format_table(("variant", "month", "AUROC", "revenue capture"), rows),
            "",
            f"context: random targeting captures ~{BUDGET:.0%} in expectation; "
            f"a revenue oracle captures {oracle:.1%}.",
            "finding: price-weighting leaves detection unchanged and does NOT",
            "improve revenue capture — the most *detectable* churners (fast,",
            "deep habit loss) are not the biggest spenders, so a",
            "revenue-optimal programme needs spend as an explicit second",
            "ranking factor, not a significance weight.",
        ]
    )
    save_artifact(output_dir, "revenue_weighting.txt", text)

    # Weighting must not degrade detection...
    for month in MONTHS:
        assert weighted[month]["auroc"] > plain[month]["auroc"] - 0.05
    # ...capture is non-trivial and bounded by the oracle.
    for result in (plain, weighted):
        assert 0.0 < result[22]["revenue_capture"] <= oracle
