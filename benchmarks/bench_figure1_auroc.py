"""E1 — regenerate Figure 1: AUROC vs months, stability vs RFM.

Paper reference points (6M-customer proprietary dataset):

* both models near chance before the onset at month 18;
* stability AUROC ~0.79 two months after the onset (month 20);
* RFM "similar performances", both rising through month 24.

The benchmark times one full Figure 1 run (stability fit + per-window RFM
training + AUROC sweep) at benchmark scale.
"""

from __future__ import annotations

from benchmarks.conftest import save_artifact
from repro.eval.figure1 import run_figure1
from repro.eval.reporting import render_figure1


def test_figure1_regeneration(benchmark, bench_dataset, output_dir):
    result = benchmark.pedantic(
        run_figure1,
        kwargs={"bundle": bench_dataset.bundle, "seed": 0},
        rounds=3,
        iterations=1,
    )
    save_artifact(output_dir, "figure1.txt", render_figure1(result))

    # Shape assertions against the paper's curve.
    assert result.months() == [12, 14, 16, 18, 20, 22, 24]
    for month in (12, 14, 16):  # pre-onset: chance level
        assert abs(result.stability.at_month(month) - 0.5) < 0.2
    assert result.stability.at_month(20) > 0.7  # paper: 0.79 at month 20
    assert result.stability.at_month(24) > 0.85
    assert result.rfm.at_month(24) > 0.7  # RFM detects too, a beat later
