"""A1 — ablation: the alpha parameter and the significance function.

DESIGN.md design-choice 1: the exponential rule ``alpha ** (c - l)`` is
the paper's pick; this sweep measures detection AUROC (two months after
the onset, the paper's headline point) across alphas and against the
frequency-ratio and linear alternatives.
"""

from __future__ import annotations

from benchmarks.conftest import save_artifact
from repro.eval.ablations import alpha_sweep, significance_function_sweep
from repro.eval.reporting import render_ablation


def test_alpha_sweep(benchmark, bench_dataset, output_dir):
    points = benchmark.pedantic(
        alpha_sweep,
        kwargs={
            "bundle": bench_dataset.bundle,
            "alphas": (1.1, 1.5, 2.0, 3.0, 4.0, 8.0),
        },
        rounds=1,
        iterations=1,
    )
    text = render_ablation("A1 — detection AUROC at onset+2 months vs alpha", points)
    save_artifact(output_dir, "ablation_alpha.txt", text)

    by_label = {p.label: p.auroc for p in points}
    assert all(0.5 < v <= 1.0 for v in by_label.values())
    # The paper's alpha=2 must be competitive with the best alpha.
    assert by_label["alpha=2"] > max(by_label.values()) - 0.1


def test_significance_function_sweep(benchmark, bench_dataset, output_dir):
    points = benchmark.pedantic(
        significance_function_sweep,
        kwargs={"bundle": bench_dataset.bundle},
        rounds=1,
        iterations=1,
    )
    text = render_ablation(
        "A1b — detection AUROC at onset+2 months by significance function", points
    )
    save_artifact(output_dir, "ablation_significance.txt", text)

    by_label = {p.label: p.auroc for p in points}
    assert by_label["exponential"] > 0.6
    # All scoring rules beat chance; exponential must be competitive.
    assert all(v > 0.5 for v in by_label.values())
    assert by_label["exponential"] > max(by_label.values()) - 0.1
