"""E3 — regenerate the Section 3 dataset-statistics table.

Paper reference: receipts of 6M customers (May 2012 – Aug 2014), 4M
products grouped into 3,388 segments, with retailer-provided loyal and
defected-in-the-last-6-months cohorts.  The benchmark times the statistics
computation over the generated dataset.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_CHURNERS, BENCH_LOYAL, save_artifact
from repro.eval.reporting import render_dataset_stats
from repro.eval.tables import dataset_stats


def test_dataset_stats_regeneration(benchmark, bench_dataset, output_dir):
    stats = benchmark.pedantic(
        dataset_stats, args=(bench_dataset.bundle,), rounds=3, iterations=1
    )
    save_artifact(output_dir, "table_dataset_stats.txt", render_dataset_stats(stats))

    assert stats.n_customers == BENCH_LOYAL + BENCH_CHURNERS
    assert stats.n_months == 28
    assert stats.onset_month == 18
    assert stats.n_segments >= 51  # at least the named grocery roster
    assert stats.receipts_per_customer_mean > 20  # habitual grocery shoppers
