"""S1 — scaling: runtime of the stability model vs population size.

The paper's dataset has 6M customers; this laptop-scale bench verifies
that (a) every fit backend scales linearly in the number of customers
(the per-customer work is independent), which is what makes the 6M-scale
deployment plausible, and (b) the population-batched engine beats the
incremental one by the margin the performance architecture promises
(≥ 5× at the 400-customer scenario).

Besides the rendered table, the bench emits machine-readable telemetry
to ``BENCH_scaling.json`` at the repository root (sizes, fit seconds per
backend, ms/customer) so future PRs have a perf trajectory to compare
against.
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import save_artifact
from repro.config import ExperimentConfig
from repro.core.engines import available_engines
from repro.core.model import StabilityModel
from repro.eval.benchmarking import (
    merge_scaling_json,
    render_scaling,
    scaling_telemetry,
)
from repro.synth import ScenarioConfig, generate_dataset

#: Repo-root telemetry artifact consumed by future perf comparisons.
TELEMETRY_PATH = Path(__file__).resolve().parents[1] / "BENCH_scaling.json"

#: Per-cohort sizes; total customers is twice each (loyal + churners).
SIZES = (25, 50, 100, 200)
SEED = 13


def _fit_stability(dataset, backend: str = "incremental"):
    model = StabilityModel.from_config(
        dataset.calendar,
        ExperimentConfig(window_months=2, alpha=2.0, backend=backend),
    )
    model.fit(dataset.log)
    return model


def test_stability_fit_scaling(benchmark, output_dir):
    backends = available_engines()
    telemetry = scaling_telemetry(
        sizes=SIZES, seed=SEED, backends=backends, repeat=3
    )
    text = "\n".join(
        [
            "S1 — stability model scaling (fit time vs customers, per backend)",
            render_scaling(telemetry),
        ]
    )
    save_artifact(output_dir, "scaling.txt", text)
    merge_scaling_json(TELEMETRY_PATH, telemetry)

    # The timed benchmark: the batch backend on the largest population.
    largest = generate_dataset(
        ScenarioConfig(n_loyal=SIZES[-1], n_churners=SIZES[-1], seed=SEED)
    )
    benchmark.pedantic(
        _fit_stability, args=(largest, "batch"), rounds=3, iterations=1
    )

    # Linearity: per-customer cost must not blow up with population size,
    # for any backend.
    for name in backends:
        per_customer = [
            entry["backends"][name]["ms_per_customer"]
            for entry in telemetry["results"]
        ]
        assert per_customer[-1] < per_customer[0] * 3 + 1.0, name

    # The performance-architecture contract: at the 400-customer scenario
    # the batch engine fits >= 5x faster than the incremental engine.
    largest_entry = telemetry["results"][-1]
    assert largest_entry["customers"] == 2 * SIZES[-1]
    assert largest_entry["speedup_batch_vs_incremental"] >= 5.0, largest_entry
