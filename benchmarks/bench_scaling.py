"""S1 — scaling: runtime of the stability model vs population size.

The paper's dataset has 6M customers; this laptop-scale bench verifies the
implementation scales linearly in the number of customers (the per-customer
work is independent), which is what makes the 6M-scale deployment
plausible.  Timed stages: dataset generation, stability fit, scoring.
"""

from __future__ import annotations

import time

from benchmarks.conftest import save_artifact
from repro.core.model import StabilityModel
from repro.eval.reporting import format_table
from repro.synth import ScenarioConfig, generate_dataset


def _fit_stability(dataset):
    model = StabilityModel(dataset.calendar, window_months=2, alpha=2.0)
    model.fit(dataset.log)
    return model


def test_stability_fit_scaling(benchmark, output_dir):
    sizes = (25, 50, 100, 200)
    rows = []
    datasets = {}
    for size in sizes:
        config = ScenarioConfig(n_loyal=size, n_churners=size, seed=13)
        start = time.perf_counter()
        datasets[size] = generate_dataset(config)
        gen_seconds = time.perf_counter() - start
        start = time.perf_counter()
        model = _fit_stability(datasets[size])
        fit_seconds = time.perf_counter() - start
        rows.append(
            (
                2 * size,
                datasets[size].log.n_baskets,
                f"{gen_seconds:.3f}",
                f"{fit_seconds:.3f}",
                f"{fit_seconds / (2 * size) * 1e3:.2f}",
            )
        )
        del model
    text = "\n".join(
        [
            "S1 — stability model scaling (fit time vs customers)",
            format_table(
                ("customers", "receipts", "generate s", "fit s", "fit ms/cust"),
                rows,
            ),
        ]
    )
    save_artifact(output_dir, "scaling.txt", text)

    # The timed benchmark: fitting the largest population.
    benchmark.pedantic(
        _fit_stability, args=(datasets[sizes[-1]],), rounds=3, iterations=1
    )

    # Linearity: per-customer cost must not blow up with population size.
    per_customer = [float(row[4]) for row in rows]
    assert per_customer[-1] < per_customer[0] * 3 + 1.0
