"""A8 — backtesting "likely to defect in the future months".

The paper's abstract claims the model identifies customers *likely to
defect in the future*.  This bench backtests the stability-trend
forecaster: at each forecast month, risk rankings built from data up to
that month are scored against (a) the cohort labels and (b) the customers
whose stability actually crossed the threshold in later windows.
"""

from __future__ import annotations

from benchmarks.conftest import save_artifact
from repro.eval.forecasting import evaluate_forecasts
from repro.eval.reporting import format_table

MONTHS = (18, 20, 22)


def test_forecast_backtest(benchmark, bench_dataset, output_dir):
    evaluations = {
        month: evaluate_forecasts(bench_dataset.bundle, forecast_month=month)
        for month in MONTHS[:-1]
    }
    evaluations[MONTHS[-1]] = benchmark.pedantic(
        evaluate_forecasts,
        kwargs={"bundle": bench_dataset.bundle, "forecast_month": MONTHS[-1]},
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            month,
            f"{e.auroc_vs_labels:.3f}",
            f"{e.auroc_vs_future_crossing:.3f}",
            e.n_future_crossers,
        )
        for month, e in sorted(evaluations.items())
    ]
    text = "\n".join(
        [
            "A8 — trend-forecast backtest (risk ranking from data up to the "
            "forecast month)",
            format_table(
                ("forecast month", "AUROC vs labels", "AUROC vs future crossing",
                 "future crossers"),
                rows,
            ),
        ]
    )
    save_artifact(output_dir, "forecast_backtest.txt", text)

    # Once the decline has begun, the forecaster identifies future
    # defectors well above chance — and improves as evidence accumulates.
    assert evaluations[20].auroc_vs_future_crossing > 0.65
    assert evaluations[22].auroc_vs_future_crossing > 0.8
    assert (
        evaluations[22].auroc_vs_future_crossing
        > evaluations[18].auroc_vs_future_crossing
    )
