"""S2 — out-of-core slab grid: mmap vs in-RAM fits at 1k/10k/100k.

The paper's dataset has 6M customers — far more than fits comfortably in
the RAM of a laptop-class machine once kernel temporaries are counted.
This bench drives the slab data plane (:mod:`repro.data.slabs`) across a
population grid and pins its two contracts:

* **bit-identity** — the chunked out-of-core kernel over the memory-
  mapped store produces byte-for-byte the same stability/kept/total
  matrices as the in-RAM kernel over fully materialised columns;
* **bounded memory** — the mmap arm's traced-allocation peak at the
  largest cell stays at or below 25% of the in-RAM arm's (the in-RAM
  arm must pay for materialising every column *plus* whole-population
  kernel temporaries; the mmap arm touches one shard at a time).

Results merge into ``BENCH_scaling.json`` under the ``slab_grid`` key so
the backend-grid artifact keeps its own cadence.

Environment knobs:

* ``REPRO_SLAB_SIZES`` — comma-separated total-customer sizes
  (default ``1000,10000,100000``; add ``1000000`` for the opt-in
  million-customer cell);
* ``REPRO_SLAB_PEAK_BUDGET_MB`` — optional absolute ceiling (MiB) on the
  mmap arm's traced peak at the largest cell, on top of the ratio pin.
"""

from __future__ import annotations

import os
from pathlib import Path

from benchmarks.conftest import save_artifact
from repro.eval.benchmarking import merge_scaling_json, render_scaling, slab_grid_telemetry

TELEMETRY_PATH = Path(__file__).resolve().parents[1] / "BENCH_scaling.json"

SEED = 13

#: The mmap arm's traced peak must stay at or below this fraction of the
#: in-RAM arm's at the largest grid cell (acceptance criterion).
PEAK_RATIO_BUDGET = 0.25

#: The ratio pin only means something once the population is large
#: enough for column + kernel memory to dominate the Python baseline.
RATIO_PIN_MIN_CUSTOMERS = 100_000


def _sizes() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_SLAB_SIZES", "1000,10000,100000")
    return tuple(int(token) for token in raw.split(",") if token.strip())


def test_slab_grid(benchmark, output_dir):
    sizes = _sizes()
    telemetry = slab_grid_telemetry(sizes=sizes, seed=SEED)
    payload = {"slab_grid": telemetry}
    text = "\n".join(
        [
            "S2 — out-of-core slab grid (mmap vs in-RAM, traced peaks)",
            render_scaling({"results": [], "slab_grid": telemetry}),
        ]
    )
    save_artifact(output_dir, "slab_grid.txt", text)
    merge_scaling_json(TELEMETRY_PATH, payload)

    # Bit-identity at every cell: the slab plane is a pure data-plane
    # change, never a numeric one.
    for entry in telemetry["results"]:
        assert entry["bit_identical"], entry["customers"]

    largest = telemetry["results"][-1]
    if largest["customers"] >= RATIO_PIN_MIN_CUSTOMERS:
        assert (
            largest["peak_ratio_mmap_vs_in_ram"] <= PEAK_RATIO_BUDGET
        ), largest
    budget_mb = os.environ.get("REPRO_SLAB_PEAK_BUDGET_MB")
    if budget_mb:
        assert largest["mmap"]["peak_traced_mb"] <= float(budget_mb), largest

    # The timed benchmark: one mmap-arm fit at the smallest cell (the
    # grid above already timed every cell; this keeps pytest-benchmark's
    # regression tracking on a fast, stable scenario).
    benchmark.pedantic(
        slab_grid_telemetry,
        kwargs={"sizes": (sizes[0],), "seed": SEED},
        rounds=1,
        iterations=1,
    )
