"""S4 — statistical power: minimum cohort size for a reliable evaluation.

Across-seed standard deviation of the month-20 AUROC at several cohort
sizes.  Practitioners reproducing Figure 1 at laptop scale should use at
least the recommended size; below it the curve's month-to-month wiggles
are sampling noise, not signal.
"""

from __future__ import annotations

from benchmarks.conftest import save_artifact
from repro.eval.power import power_analysis
from repro.eval.reporting import format_table


def test_power_analysis(benchmark, output_dir):
    analysis = benchmark.pedantic(
        power_analysis,
        kwargs={
            "cohort_sizes": (10, 20, 40, 80),
            "seeds": (1, 2, 3, 4),
            "eval_month": 20,
            "target_std": 0.05,
        },
        rounds=1,
        iterations=1,
    )
    recommendation = (
        f"recommended: >= {analysis.recommended_n} customers per cohort "
        f"(std <= {analysis.target_std})"
        if analysis.recommended_n is not None
        else "no tested size met the target std; use more customers"
    )
    text = "\n".join(
        [
            f"S4 — AUROC sampling noise at month {analysis.eval_month} "
            f"vs cohort size (4 seeds)",
            format_table(("n per cohort", "mean AUROC", "std"), analysis.rows()),
            recommendation,
        ]
    )
    save_artifact(output_dir, "power_analysis.txt", text)

    stds = [p.std_auroc for p in analysis.points]
    # Sampling noise must shrink as cohorts grow (allowing seed luck).
    assert stds[-1] <= stds[0] + 0.02
    assert all(p.mean_auroc > 0.65 for p in analysis.points)
