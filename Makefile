# Developer entry points. The offline environment lacks the `wheel`
# package, so `install` uses the legacy setuptools path.

.PHONY: install test test-faults bench bench-pytest examples figures all clean

install:
	python setup.py develop

test:
	pytest tests/

# The resilience suite under -W error: injected worker crashes, torn
# checkpoint/snapshot files, interrupted-sweep resume.
test-faults:
	PYTHONPATH=src python -m pytest tests/runtime -q -W error

bench:
	PYTHONPATH=src python -m repro.cli bench --json BENCH_scaling.json

bench-pytest:
	pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran cleanly"

figures:
	python -m repro.cli figure1
	python -m repro.cli figure2
	python -m repro.cli stats

all: test bench

clean:
	rm -rf build repro.egg-info benchmarks/output .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
