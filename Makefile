# Developer entry points. The offline environment lacks the `wheel`
# package, so `install` uses the legacy setuptools path.

.PHONY: install test test-faults lint typecheck trace-demo serve-demo soak-smoke bench bench-pytest bench-slab-smoke examples figures all clean

install:
	python setup.py develop

test:
	pytest tests/

# The repo's own AST lint: determinism, atomic I/O, exception
# discipline, float equality, telemetry taxonomy, annotation coverage
# (see DESIGN.md §8), plus the project-level interprocedural passes
# (DUR/SEQ/FRK/RES, §8.8) which ride along automatically.  Exits
# non-zero on any finding not grandfathered in lint-baseline.json.
lint:
	PYTHONPATH=src python -m repro.analysis

# Gradual strict typing gate over the fully annotated packages
# (configured under [tool.mypy] in pyproject.toml).  Requires mypy;
# the offline container enforces the annotation half via `make lint`
# (rule TYP001) instead.
typecheck:
	mypy --config-file pyproject.toml

# The resilience suite under -W error: injected worker crashes, torn
# checkpoint/snapshot files, interrupted-sweep resume.
test-faults:
	PYTHONPATH=src python -m pytest tests/runtime -q -W error

# End-to-end telemetry demo: a verbose, traced, checkpointed figure1
# run (sharded fit + manifest), then the span-summary table.
trace-demo:
	mkdir -p trace-demo
	PYTHONPATH=src python -m repro.cli -v \
		--trace-out trace-demo/trace.jsonl \
		--metrics-out trace-demo/metrics.json \
		--loyal 20 --churners 20 \
		figure1 --n-jobs 2 --checkpoint-dir trace-demo/ckpt
	PYTHONPATH=src python -m repro.cli obs summarize trace-demo/trace.jsonl

# Streaming-serving demo: record a synthetic basket stream, serve it in
# two interrupted legs (mid-run stop + checkpoint resume), prove the
# final scores bit-identical to the offline batch sweep, then show the
# run manifest location.  See DESIGN.md §10.
serve-demo:
	mkdir -p serve-demo
	PYTHONPATH=src python -m repro.cli --loyal 25 --churners 25 \
		record --out serve-demo/stream.jsonl
	PYTHONPATH=src python -m repro.cli -v serve serve-demo/stream.jsonl \
		--checkpoint-dir serve-demo/ckpt --batch-size 400 --n-shards 2 \
		--no-api --max-batches 3; test $$? -eq 3
	PYTHONPATH=src python -m repro.cli -v serve serve-demo/stream.jsonl \
		--checkpoint-dir serve-demo/ckpt --batch-size 400 --n-shards 2 \
		--no-api --parity-check
	@echo "run manifest: serve-demo/ckpt/manifest.json"

# Chaos soak smoke: record a 500-customer stream, replay it against the
# serving layer for ~60s of wall clock while the smoke schedule injects
# one fault per site (torn cursor, worker crash, slow shard, kill/resume,
# checkpoint-I/O error, torn state), verify recovery + offline parity
# after each, enforce the p99 latency SLO, and refresh the soak scenario
# of BENCH_serve.json.  Exits non-zero on any violation.  See DESIGN.md
# §11.
soak-smoke:
	mkdir -p soak-smoke
	PYTHONPATH=src python -m repro.cli --loyal 250 --churners 250 \
		record --out soak-smoke/stream.jsonl
	PYTHONPATH=src python -m repro.cli -v \
		--metrics-out soak-smoke/metrics.json \
		soak soak-smoke/stream.jsonl --workdir soak-smoke/run \
		--chaos smoke --duration 60 --batch-size 2000 \
		--n-shards 2 --parallel --slow-seconds 1.0 \
		--slo-p99-ms 30000 --min-throughput 50 \
		--flight-dir soak-smoke/flight \
		--metrics-stream-out soak-smoke/live.jsonl \
		--pin-telemetry-overhead \
		--bench-out BENCH_serve.json
	@echo "live snapshots: soak-smoke/live.jsonl (view: repro-attrition obs tail)"
	@echo "flight artifacts: soak-smoke/flight/"

bench:
	PYTHONPATH=src python -m repro.cli bench --json BENCH_scaling.json

bench-pytest:
	pytest benchmarks/ --benchmark-only

# Fast out-of-core smoke cell: 1k customers, mmap-vs-in-RAM differential
# plus an absolute traced-peak budget (also the CI bench-smoke job).
bench-slab-smoke:
	REPRO_SLAB_SIZES=1000 REPRO_SLAB_PEAK_BUDGET_MB=256 \
		pytest benchmarks/bench_slab_grid.py --benchmark-only -q

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran cleanly"

figures:
	python -m repro.cli figure1
	python -m repro.cli figure2
	python -m repro.cli stats

all: test bench

clean:
	rm -rf build repro.egg-info benchmarks/output trace-demo serve-demo .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
