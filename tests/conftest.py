"""Shared fixtures.

Expensive fixtures (synthetic datasets, the case study) are session-scoped
so the suite builds them once; they are treated as immutable by tests.
"""

from __future__ import annotations

import pytest

from repro.data import Basket, StudyCalendar, TransactionLog
from repro.synth import ScenarioConfig, figure2_case_study, generate_dataset


@pytest.fixture(scope="session")
def calendar() -> StudyCalendar:
    """The paper's 28-month study calendar."""
    return StudyCalendar.paper()


@pytest.fixture(scope="session")
def small_dataset():
    """A small but fully-featured synthetic dataset (40 + 40 customers)."""
    return generate_dataset(
        ScenarioConfig(n_loyal=40, n_churners=40, seed=3)
    )


@pytest.fixture(scope="session")
def tiny_dataset():
    """A minimal dataset for fast protocol tests (12 + 12 customers)."""
    return generate_dataset(
        ScenarioConfig(n_loyal=12, n_churners=12, seed=5)
    )


@pytest.fixture(scope="session")
def case_study():
    """The Figure 2 case-study fixture."""
    return figure2_case_study(seed=11)


@pytest.fixture()
def regular_log(calendar: StudyCalendar) -> TransactionLog:
    """Customer 1 buys items {1, 2, 3} near the start of every month."""
    log = TransactionLog()
    for month in range(calendar.n_months):
        day = calendar.month_start_day(month) + 2
        log.add(Basket.of(customer_id=1, day=day, items=[1, 2, 3], monetary=10.0))
    return log
