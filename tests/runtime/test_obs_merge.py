"""Worker-span merging through the resilient executor.

With telemetry on, every worker attempt records its own spans/metrics
and ships them back with the result; :func:`run_sharded` stitches them
into the parent trace.  The invariant: telemetry changes what is
*observed*, never what is *computed* — fault injection included.
"""

from __future__ import annotations

import os

from repro.obs.metrics import (
    SHARD_DEGRADED,
    SHARD_RETRIES,
    MetricsRegistry,
    use_metrics,
)
from repro.obs.trace import Tracer, span, use_tracer
from repro.runtime.executor import run_sharded
from repro.runtime.faults import FaultPlan


def _square(x: int) -> int:
    return x * x


def _square_traced(x: int) -> int:
    # Spans opened inside the worker land on its fresh tracer and ride
    # back to the parent with the result.
    with span("worker.kernel", x=x):
        return x * x


def test_clean_run_merges_one_shard_span_per_task():
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        results, report = run_sharded(_square, [1, 2, 3])
    assert results == [1, 4, 9]
    assert report.fault_free
    shard_spans = [r for r in tracer.records if r.name == "executor.shard"]
    assert len(shard_spans) == 3
    assert {s.attrs["shard"] for s in shard_spans} == {0, 1, 2}
    # Worker spans keep their worker pid and hang under a parent wave span.
    waves = {r.span_id for r in tracer.records if r.name == "executor.wave"}
    parent_pid = os.getpid()
    for shard_span in shard_spans:
        assert shard_span.pid != parent_pid
        assert shard_span.parent_id in waves
    assert any(r.name == "executor.run_sharded" for r in tracer.records)


def test_function_spans_nest_under_the_shard_span():
    tracer = Tracer()
    with use_tracer(tracer):
        results, _ = run_sharded(_square_traced, [4, 5])
    assert results == [16, 25]
    by_id = {r.span_id: r for r in tracer.records}
    kernels = [r for r in tracer.records if r.name == "worker.kernel"]
    assert len(kernels) == 2
    for kernel in kernels:
        assert by_id[kernel.parent_id].name == "executor.shard"


def test_retried_shard_merges_only_the_successful_attempt():
    # Shard 1's first attempt dies before fn runs, so only the retry's
    # telemetry comes back; the retry counter still records the failure.
    plan = FaultPlan(errors=((1, 0),))
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        results, report = run_sharded(_square, [1, 2, 3], fault_plan=plan)
    assert results == [1, 4, 9]
    assert report.outcomes[1].pool_attempts == 2
    assert registry.counter_value(SHARD_RETRIES) == 1
    assert registry.counter_value(SHARD_DEGRADED) == 0
    retried = [
        r
        for r in tracer.records
        if r.name == "executor.shard" and r.attrs.get("shard") == 1
    ]
    assert len(retried) == 1
    assert retried[0].attrs["attempt"] == 1


def test_degraded_shard_is_traced_in_the_parent_process():
    # Crashing every allowed attempt forces the serial fallback, which is
    # traced directly on the parent tracer (no merge involved).
    plan = FaultPlan(crashes=((0, 0),))
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        results, report = run_sharded(
            _square, [6, 7], retries=0, backoff_seconds=0, fault_plan=plan
        )
    assert results == [36, 49]
    # The crash breaks the whole pool, so the sibling shard may also fail
    # its only attempt and degrade alongside shard 0.
    assert report.outcomes[0].degraded
    assert registry.counter_value(SHARD_DEGRADED) == report.n_degraded
    assert registry.counter_value(SHARD_RETRIES) >= 1
    degraded = [
        r
        for r in tracer.records
        if r.name == "executor.shard" and r.attrs.get("degraded")
    ]
    assert len(degraded) == report.n_degraded
    assert all(r.pid == os.getpid() for r in degraded)


def test_results_are_identical_with_telemetry_on_and_off():
    plan = FaultPlan(errors=((0, 0),))
    plain, _ = run_sharded(_square, [3, 4, 5], fault_plan=plan)
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        traced, _ = run_sharded(_square, [3, 4, 5], fault_plan=plan)
    assert traced == plain == [9, 16, 25]
    assert tracer.records  # telemetry actually recorded something


def test_disabled_telemetry_records_nothing():
    results, report = run_sharded(_square, [1, 2])
    assert results == [1, 4]
    assert report.fault_free
