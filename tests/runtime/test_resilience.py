"""Acceptance tests: the fault paths of fits and sweeps, end to end.

These are the scenarios ISSUE-level resilience promises:

* a worker killed mid-fit leaves the stability matrix bit-identical;
* a sweep killed halfway resumes from its checkpoint directory without
  recomputing finished cells;
* a corrupt checkpoint is detected, never silently ingested.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rfm import RFMModel
from repro.config import ExperimentConfig
from repro.core.batch import stability_matrix
from repro.core.model import StabilityModel
from repro.data.population import PopulationFrame
from repro.errors import CheckpointError
from repro.eval.protocol import EvaluationProtocol
from repro.runtime.checkpoint import CheckpointJournal
from repro.runtime.faults import FaultPlan, tear_file


@pytest.fixture(scope="module")
def frame(tiny_dataset) -> PopulationFrame:
    config = ExperimentConfig(window_months=2)
    return PopulationFrame.from_log(
        tiny_dataset.log, config.grid(tiny_dataset.calendar)
    )


def _assert_same_matrices(a, b) -> None:
    assert np.array_equal(a.stability, b.stability, equal_nan=True)
    assert np.array_equal(a.kept_mass, b.kept_mass)
    assert np.array_equal(a.total_mass, b.total_mass)


def test_killed_worker_mid_fit_is_bit_identical(frame):
    serial = stability_matrix(frame, n_jobs=1)
    crashed = stability_matrix(
        frame,
        n_jobs=4,
        fault_plan=FaultPlan(crashes=((1, 0),)),
    )
    _assert_same_matrices(serial, crashed)
    assert crashed.execution is not None
    assert crashed.execution.n_shards == 4
    assert not crashed.execution.fault_free
    assert crashed.execution.n_retried >= 1


def test_exhausted_retries_still_bit_identical(frame):
    serial = stability_matrix(frame, n_jobs=1)
    degraded = stability_matrix(
        frame,
        n_jobs=2,
        retries=0,
        fault_plan=FaultPlan(crashes=((0, 0), (1, 0))),
    )
    _assert_same_matrices(serial, degraded)
    assert degraded.execution.n_degraded == 2


def test_model_surfaces_execution_report(tiny_dataset, frame):
    config = ExperimentConfig(window_months=2, backend="batch", n_jobs=3)
    model = StabilityModel.from_config(tiny_dataset.calendar, config).fit(frame)
    report = model.execution_report
    assert report is not None
    assert report.fault_free
    assert report.n_shards == 3

    serial = StabilityModel.from_config(
        tiny_dataset.calendar, config.evolve(backend="batch", n_jobs=1)
    ).fit(frame)
    assert serial.execution_report is None


class _CountingRFM(RFMModel):
    """RFM scorer that counts fits and can simulate a mid-sweep kill."""

    def __init__(self, *args, fail_after: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.n_fits = 0
        self.fail_after = fail_after

    def fit(self, log, cohorts, window_index, customers):
        if self.fail_after is not None and self.n_fits >= self.fail_after:
            raise KeyboardInterrupt("simulated kill at cell boundary")
        self.n_fits += 1
        return super().fit(log, cohorts, window_index, customers)


def test_interrupted_sweep_resumes_without_recomputation(
    tiny_dataset, tmp_path
):
    bundle = tiny_dataset.bundle
    config = ExperimentConfig(window_months=2, backend="batch")
    fresh = EvaluationProtocol(bundle, config=config)
    train, test = fresh.train_test_split(seed=0)
    n_cells = len(
        fresh.evaluation_windows(RFMModel(bundle.calendar, config=config))
    )
    assert n_cells >= 4
    kill_at = n_cells // 2

    # Uninterrupted reference, no checkpointing.
    reference = fresh.evaluate_window_scorer(
        RFMModel(bundle.calendar, config=config), "rfm", train, test
    )

    # First run dies at ~50% of the cells.
    scorer = _CountingRFM(bundle.calendar, config=config, fail_after=kill_at)
    interrupted = EvaluationProtocol(
        bundle, config=config, checkpoint_dir=tmp_path
    )
    with pytest.raises(KeyboardInterrupt):
        interrupted.evaluate_window_scorer(scorer, "rfm", train, test)
    journal = CheckpointJournal(tmp_path, schema="eval-protocol")
    assert journal.n_entries() == kill_at

    # The rerun computes only the unfinished cells...
    scorer = _CountingRFM(bundle.calendar, config=config)
    resumed = EvaluationProtocol(
        bundle, config=config, checkpoint_dir=tmp_path
    ).evaluate_window_scorer(scorer, "rfm", train, test)
    assert scorer.n_fits == n_cells - kill_at
    assert journal.n_entries() == n_cells
    # ...and the resumed series is bit-identical to the uninterrupted one.
    assert resumed == reference

    # A third run recomputes nothing at all.
    scorer = _CountingRFM(bundle.calendar, config=config, fail_after=0)
    replayed = EvaluationProtocol(
        bundle, config=config, checkpoint_dir=tmp_path
    ).evaluate_window_scorer(scorer, "rfm", train, test)
    assert replayed == reference


def test_corrupt_checkpoint_cell_detected(tiny_dataset, tmp_path):
    bundle = tiny_dataset.bundle
    config = ExperimentConfig(window_months=2, backend="batch")
    protocol = EvaluationProtocol(
        bundle, config=config, checkpoint_dir=tmp_path
    )
    train, test = protocol.train_test_split(seed=0)
    protocol.evaluate_window_scorer(
        RFMModel(bundle.calendar, config=config), "rfm", train, test
    )
    cells = sorted(tmp_path.glob("*.json"))
    assert cells
    tear_file(cells[0], keep_fraction=0.4)
    with pytest.raises(CheckpointError, match="corrupt or truncated"):
        EvaluationProtocol(
            bundle, config=config, checkpoint_dir=tmp_path
        ).evaluate_window_scorer(
            RFMModel(bundle.calendar, config=config), "rfm", train, test
        )


def test_checkpoint_dir_reused_across_configs_never_aliases(
    tiny_dataset, tmp_path
):
    bundle = tiny_dataset.bundle
    for alpha in (2.0, 4.0):
        config = ExperimentConfig(
            window_months=2, alpha=alpha, backend="batch"
        )
        protocol = EvaluationProtocol(
            bundle, config=config, checkpoint_dir=tmp_path
        )
        fit = StabilityModel.from_config(bundle.calendar, config).fit(
            protocol.frame()
        )
        series = protocol.evaluate_stability_model(fit)
        plain = EvaluationProtocol(
            bundle, config=config
        ).evaluate_stability_model(fit)
        assert series == plain


def test_checkpoint_dir_reused_across_splits_never_aliases(
    tiny_dataset, tmp_path
):
    # Same bundle, same config, different train/test split seeds: every
    # cell must be keyed to its own split, so the second run recomputes
    # instead of replaying the first run's AUROCs.
    bundle = tiny_dataset.bundle
    config = ExperimentConfig(window_months=2, backend="batch")
    n_cells = None
    for seed in (0, 1):
        protocol = EvaluationProtocol(
            bundle, config=config, checkpoint_dir=tmp_path
        )
        train, test = protocol.train_test_split(seed=seed)
        series = protocol.evaluate_window_scorer(
            RFMModel(bundle.calendar, config=config), "rfm", train, test
        )
        plain = EvaluationProtocol(bundle, config=config).evaluate_window_scorer(
            RFMModel(bundle.calendar, config=config), "rfm", train, test
        )
        assert series == plain
        n_cells = len(series.points) if n_cells is None else n_cells
    # Both runs journaled their own cells — nothing was aliased.
    journal = CheckpointJournal(tmp_path, schema="eval-protocol")
    assert journal.n_entries() == 2 * n_cells


def test_checkpoint_dir_reused_across_datasets_never_aliases(
    tiny_dataset, tmp_path
):
    # A journal directory reused against a differently-seeded dataset
    # must key cells to each bundle's content, not silently return the
    # first dataset's results.
    from repro.synth import ScenarioConfig, generate_dataset

    other = generate_dataset(ScenarioConfig(n_loyal=12, n_churners=12, seed=6))
    assert other.bundle.fingerprint() != tiny_dataset.bundle.fingerprint()

    config = ExperimentConfig(window_months=2, backend="batch")
    for dataset in (tiny_dataset, other):
        bundle = dataset.bundle
        protocol = EvaluationProtocol(
            bundle, config=config, checkpoint_dir=tmp_path
        )
        fit = StabilityModel.from_config(bundle.calendar, config).fit(
            protocol.frame()
        )
        series = protocol.evaluate_stability_model(fit)
        plain = EvaluationProtocol(
            bundle, config=config
        ).evaluate_stability_model(fit)
        assert series == plain
