"""Tests for StabilityMonitor snapshot/restore.

The contract under test is the round-trip guarantee: interrupting a
stream at any point, snapshotting, restoring (even through a JSON
serialisation cycle) and feeding the rest of the stream must produce
exactly the reports an uninterrupted monitor produces.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.config import ExperimentConfig
from repro.core.significance import LinearSignificance
from repro.core.streaming import StabilityMonitor, WindowCloseReport
from repro.errors import SnapshotError
from repro.runtime.faults import tear_file
from repro.runtime.snapshot import (
    SNAPSHOT_VERSION,
    load_snapshot,
    restore_monitor,
    save_snapshot,
    snapshot_monitor,
)


def _stream(dataset):
    return sorted(dataset.log, key=lambda basket: basket.day)


def _assert_reports_equal(
    left: list[WindowCloseReport], right: list[WindowCloseReport]
) -> None:
    assert len(left) == len(right)
    for a, b in zip(left, right, strict=True):
        assert a.window_index == b.window_index
        assert a.alarms == b.alarms
        assert set(a.stabilities) == set(b.stabilities)
        for customer, value in a.stabilities.items():
            other = b.stabilities[customer]
            if math.isnan(value):
                assert math.isnan(other)
            else:
                assert value == other


def _monitor(dataset) -> StabilityMonitor:
    config = ExperimentConfig(window_months=2, alpha=2.0)
    return StabilityMonitor.from_config(dataset.calendar, config, beta=0.5)


def test_round_trip_mid_stream(tiny_dataset):
    baskets = _stream(tiny_dataset)
    cut = len(baskets) // 2

    reference = _monitor(tiny_dataset)
    expected = reference.ingest_many(baskets)
    expected += reference.finish()

    interrupted = _monitor(tiny_dataset)
    head_reports = interrupted.ingest_many(baskets[:cut])
    # Snapshot through a full JSON cycle — what a file sees.
    payload = json.loads(json.dumps(interrupted.snapshot()))
    restored = StabilityMonitor.from_snapshot(payload)
    tail_reports = restored.ingest_many(baskets[cut:])
    tail_reports += restored.finish()

    _assert_reports_equal(head_reports + tail_reports, expected)
    # Alarm evidence survives the restart too.
    for customer in reference.customers():
        assert restored.explain_alarm(customer) == reference.explain_alarm(
            customer
        )


def test_save_load_file(tiny_dataset, tmp_path):
    baskets = _stream(tiny_dataset)
    monitor = _monitor(tiny_dataset)
    monitor.ingest_many(baskets[: len(baskets) // 3])
    path = save_snapshot(monitor, tmp_path / "monitor.json")
    restored = load_snapshot(path)
    assert restored.current_window == monitor.current_window
    assert restored.customers() == monitor.customers()
    leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".")]
    assert leftovers == []


def test_torn_snapshot_detected(tiny_dataset, tmp_path):
    monitor = _monitor(tiny_dataset)
    monitor.ingest_many(_stream(tiny_dataset)[:20])
    path = save_snapshot(monitor, tmp_path / "monitor.json")
    tear_file(path, keep_fraction=0.6)
    with pytest.raises(SnapshotError, match="corrupt or truncated"):
        load_snapshot(path)


def test_missing_file_raises(tmp_path):
    with pytest.raises(SnapshotError, match="cannot read"):
        load_snapshot(tmp_path / "absent.json")


def test_version_and_schema_validation(tiny_dataset):
    monitor = _monitor(tiny_dataset)
    monitor.ingest_many(_stream(tiny_dataset)[:10])
    payload = snapshot_monitor(monitor)

    wrong_schema = dict(payload, schema="something-else")
    with pytest.raises(SnapshotError, match="schema"):
        restore_monitor(wrong_schema)

    wrong_version = dict(payload, version=SNAPSHOT_VERSION + 1)
    with pytest.raises(SnapshotError, match="version"):
        restore_monitor(wrong_version)

    del payload["customers"]
    with pytest.raises(SnapshotError, match="customers"):
        restore_monitor(payload)


def test_malformed_pairs_rejected(tiny_dataset):
    monitor = _monitor(tiny_dataset)
    monitor.ingest_many(_stream(tiny_dataset)[:10])
    payload = snapshot_monitor(monitor)
    payload["customers"][0]["presence"] = [[1, 2, 3]]
    with pytest.raises(SnapshotError, match="presence"):
        restore_monitor(payload)


def test_custom_significance_refused(tiny_dataset):
    config = ExperimentConfig(window_months=2)
    grid = config.grid(tiny_dataset.calendar)
    monitor = StabilityMonitor(grid, significance=LinearSignificance())
    with pytest.raises(SnapshotError, match="LinearSignificance"):
        monitor.snapshot()
