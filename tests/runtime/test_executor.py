"""Tests for the resilient shard executor.

Every fault below is injected deterministically through a
:class:`~repro.runtime.faults.FaultPlan`; the invariant under test is
always the same: ``results == [fn(t) for t in tasks]`` no matter what the
infrastructure did, with the damage visible in the
:class:`~repro.runtime.executor.ExecutionReport` instead of the results.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.errors import ConfigError, ExecutionError
from repro.runtime.executor import run_sharded
from repro.runtime.faults import FaultPlan


def _square(x: int) -> int:
    return x * x


def _always_raises(x: int) -> int:
    raise ValueError(f"kernel bug on {x}")


def _interrupt_after_marking(directory: str) -> int:
    Path(directory, f"call-{os.getpid()}-{time.time_ns()}").touch()
    raise KeyboardInterrupt("simulated Ctrl-C")


def test_clean_run_returns_results_in_order():
    results, report = run_sharded(_square, [1, 2, 3, 4])
    assert results == [1, 4, 9, 16]
    assert report.fault_free
    assert report.n_shards == 4
    assert all(o.pool_attempts == 1 for o in report.outcomes)
    assert "fault-free" in report.summary()


def test_empty_task_list():
    results, report = run_sharded(_square, [])
    assert results == []
    assert report.n_shards == 0
    assert report.fault_free


def test_injected_error_is_retried():
    plan = FaultPlan(errors=((1, 0),))
    results, report = run_sharded(_square, [1, 2, 3], fault_plan=plan)
    assert results == [1, 4, 9]
    assert not report.fault_free
    outcome = report.outcomes[1]
    assert outcome.pool_attempts == 2
    assert not outcome.degraded
    assert any("InjectedFault" in e for e in outcome.errors)
    # The other shards were untouched by a plain in-worker exception.
    assert report.outcomes[0].clean and report.outcomes[2].clean


def test_worker_crash_is_retried_bit_identical():
    # Shard 0's worker dies via os._exit on its first attempt — the same
    # signature as an OOM kill.  The pool breaks, but every shard's
    # result must still come back correct.
    plan = FaultPlan(crashes=((0, 0),))
    results, report = run_sharded(_square, [5, 6, 7], fault_plan=plan)
    assert results == [25, 36, 49]
    assert not report.fault_free
    assert report.n_retried >= 1
    assert report.n_degraded == 0
    assert "retried" in report.summary()


def test_exhausted_retries_degrade_to_in_process():
    # The fault fires on every attempt the budget allows, so the shard
    # must fall back to the serial in-process path — which bypasses
    # injection by design (it models the parent process).
    plan = FaultPlan(errors=((0, 0), (0, 1)))
    results, report = run_sharded(
        _square, [3, 4], retries=1, backoff_seconds=0, fault_plan=plan
    )
    assert results == [9, 16]
    assert report.outcomes[0].degraded
    assert report.outcomes[0].pool_attempts == 2
    assert report.n_degraded == 1
    assert not report.outcomes[1].degraded


def test_all_shards_crashing_still_completes():
    plan = FaultPlan(crashes=((0, 0), (1, 0)))
    results, report = run_sharded(
        _square, [2, 3], retries=0, backoff_seconds=0, fault_plan=plan
    )
    assert results == [4, 9]
    assert report.n_degraded == 2


def test_slow_shard_times_out_then_recovers():
    plan = FaultPlan(slow=((0, 0, 5.0),))
    results, report = run_sharded(
        _square,
        [8, 9],
        retries=1,
        backoff_seconds=0,
        timeout=0.3,
        fault_plan=plan,
    )
    assert results == [64, 81]
    assert any("Timeout" in e for e in report.outcomes[0].errors)


def test_keyboard_interrupt_aborts_instead_of_retrying(tmp_path):
    # Ctrl-C is not a retryable shard failure: the run must abort on the
    # first interrupt instead of burning retry waves and the serial
    # fallback.  The marker files count how often the shard actually ran.
    calls = tmp_path / "calls"
    calls.mkdir()
    with pytest.raises(KeyboardInterrupt):
        run_sharded(
            _interrupt_after_marking, [str(calls)], retries=3, backoff_seconds=0
        )
    assert len(list(calls.iterdir())) == 1


def test_wave_deadline_is_shared_not_cumulative():
    # Both shards sleep past the deadline; one wave deadline covers them
    # together, the run degrades both serially and never waits out the
    # full injected sleeps.
    plan = FaultPlan(slow=((0, 0, 2.0), (1, 0, 2.0)))
    started = time.perf_counter()
    results, report = run_sharded(
        _square,
        [2, 3],
        retries=0,
        backoff_seconds=0,
        timeout=0.2,
        fault_plan=plan,
    )
    elapsed = time.perf_counter() - started
    assert results == [4, 9]
    assert report.n_degraded == 2
    assert all(
        any("Timeout" in e for e in o.errors) for o in report.outcomes
    )
    assert elapsed < 2.0  # did not wait for the 2s sleepers


def test_genuine_function_bug_raises_execution_error():
    with pytest.raises(ExecutionError, match="shard 0 failed in-process"):
        run_sharded(_always_raises, [1], retries=0, backoff_seconds=0)


def test_parameter_validation():
    with pytest.raises(ConfigError, match="retries"):
        run_sharded(_square, [1], retries=-1)
    with pytest.raises(ConfigError, match="backoff_seconds"):
        run_sharded(_square, [1], backoff_seconds=-0.1)
    with pytest.raises(ConfigError, match="timeout"):
        run_sharded(_square, [1], timeout=0)
