"""Tests for the deterministic fault-injection harness."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigError
from repro.runtime.faults import FaultPlan, InjectedFault, tear_file


def test_plan_normalises_cells():
    plan = FaultPlan(
        crashes=[("0", "1")], errors=[(2.0, 0)], slow=[(1, 0, "0.5")]
    )
    assert plan.crashes == ((0, 1),)
    assert plan.errors == ((2, 0),)
    assert plan.slow == ((1, 0, 0.5),)


def test_negative_delay_rejected():
    with pytest.raises(ConfigError, match="delays"):
        FaultPlan(slow=((0, 0, -1.0),))


def test_delay_of_matches_exactly_one_cell():
    plan = FaultPlan(slow=((0, 0, 0.2), (0, 1, 0.3), (1, 0, 9.0)))
    assert plan.delay_of(0, 0) == pytest.approx(0.2)
    assert plan.delay_of(0, 1) == pytest.approx(0.3)
    assert plan.delay_of(2, 0) == 0.0


def test_duplicate_crash_cell_rejected():
    with pytest.raises(ConfigError, match=r"\(shard 0, attempt 1\) in crashes"):
        FaultPlan(crashes=((0, 1), (0, 1)))


def test_duplicate_error_cell_rejected():
    with pytest.raises(ConfigError, match=r"\(shard 2, attempt 0\) in errors"):
        FaultPlan(errors=((2, 0), (1, 0), (2, 0)))


def test_duplicate_slow_cell_rejected():
    # Duplicate sleeps on one cell would silently merge (summed delay)
    # — now a construction-time error naming the cell.
    with pytest.raises(ConfigError, match=r"\(shard 0, attempt 0\) in slow"):
        FaultPlan(slow=((0, 0, 0.2), (0, 0, 0.3)))


def test_crash_and_error_on_same_cell_conflict():
    with pytest.raises(ConfigError, match=r"conflicting fault cell \(shard 1, attempt 0\)"):
        FaultPlan(crashes=((1, 0),), errors=((1, 0),))


def test_slow_may_coincide_with_crash_cell():
    # A worker that hangs and then dies is a meaningful composite fault.
    plan = FaultPlan(crashes=((0, 0),), slow=((0, 0, 0.1),))
    assert plan.delay_of(0, 0) == pytest.approx(0.1)


def test_apply_raises_injected_fault_only_at_its_cell():
    plan = FaultPlan(errors=((3, 1),))
    plan.apply(3, 0)  # no-op
    plan.apply(0, 1)  # no-op
    with pytest.raises(InjectedFault, match="shard 3"):
        plan.apply(3, 1)


def test_plan_is_picklable():
    plan = FaultPlan(crashes=((0, 0),), errors=((1, 1),), slow=((2, 0, 0.1),))
    assert pickle.loads(pickle.dumps(plan)) == plan


def test_tear_file_truncates(tmp_path):
    path = tmp_path / "cell.json"
    path.write_bytes(b"0123456789")
    tear_file(path, keep_fraction=0.5)
    assert path.read_bytes() == b"01234"
    tear_file(path, keep_fraction=0.0)
    assert path.read_bytes() == b""
    tear_file(path, keep_fraction=0.0)  # empty file is a no-op
    assert path.read_bytes() == b""


def test_tear_file_rejects_full_keep(tmp_path):
    path = tmp_path / "cell.json"
    path.write_bytes(b"x")
    with pytest.raises(ConfigError, match="keep_fraction"):
        tear_file(path, keep_fraction=1.0)
