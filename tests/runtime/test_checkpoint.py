"""Tests for the atomic checkpoint journal."""

from __future__ import annotations

import json

import pytest

from repro.errors import CheckpointError
from repro.runtime.checkpoint import JOURNAL_VERSION, CheckpointJournal
from repro.runtime.faults import tear_file


def test_store_load_round_trip(tmp_path):
    journal = CheckpointJournal(tmp_path, schema="test")
    key = ("rfm", "month=20", "w2_a2")
    value = {"auroc": 0.1 + 0.2, "points": [[0.05, 1.5]]}
    journal.store(key, value)
    assert journal.load(key) == value
    # json emits repr precision, so floats survive bit-exactly.
    assert journal.load(key)["auroc"] == 0.1 + 0.2


def test_has_and_missing_load(tmp_path):
    journal = CheckpointJournal(tmp_path, schema="test")
    assert not journal.has(("a",))
    with pytest.raises(CheckpointError):
        journal.load(("a",))
    journal.store(("a",), 1)
    assert journal.has(("a",))


def test_get_or_compute_skips_finished_cells(tmp_path):
    journal = CheckpointJournal(tmp_path, schema="test")
    calls = []

    def compute():
        calls.append(1)
        return 42

    assert journal.get_or_compute(("cell",), compute) == 42
    assert journal.get_or_compute(("cell",), compute) == 42
    assert len(calls) == 1


def test_no_temp_files_left_behind(tmp_path):
    journal = CheckpointJournal(tmp_path, schema="test")
    journal.store(("a",), 1)
    journal.store(("b",), 2)
    leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".")]
    assert leftovers == []
    assert journal.n_entries() == 2


def test_keys_listing(tmp_path):
    journal = CheckpointJournal(tmp_path, schema="test")
    journal.store(("b", "2"), 1)
    journal.store(("a", "1"), 2)
    assert journal.keys() == [("a", "1"), ("b", "2")]


def test_keys_listing_validates_like_load(tmp_path):
    # keys()/n_entries() must apply the same validation as load(): a
    # foreign-schema cell in the directory is an error, not a listing.
    journal = CheckpointJournal(tmp_path, schema="test")
    journal.store(("a",), 1)
    CheckpointJournal(tmp_path, schema="other").store(("b",), 2)
    with pytest.raises(CheckpointError, match="schema"):
        journal.keys()
    with pytest.raises(CheckpointError, match="schema"):
        journal.n_entries()


def test_keys_listing_rejects_torn_file(tmp_path):
    journal = CheckpointJournal(tmp_path, schema="test")
    journal.store(("a",), {"big": list(range(100))})
    tear_file(journal.path_of(("a",)), keep_fraction=0.5)
    with pytest.raises(CheckpointError, match="corrupt or truncated"):
        journal.keys()


def test_keys_listing_rejects_misplaced_file(tmp_path):
    journal = CheckpointJournal(tmp_path, schema="test")
    journal.store(("a",), 1)
    journal.path_of(("a",)).rename(tmp_path / "misplaced.0000000000.json")
    with pytest.raises(CheckpointError, match="does not map"):
        journal.keys()


def test_nasty_key_parts_are_filesystem_safe(tmp_path):
    journal = CheckpointJournal(tmp_path, schema="test")
    key = ("a/b: c", "../../etc", "x" * 200)
    journal.store(key, "ok")
    path = journal.path_of(key)
    assert path.parent == tmp_path
    assert journal.load(key) == "ok"


def test_torn_checkpoint_detected(tmp_path):
    journal = CheckpointJournal(tmp_path, schema="test")
    journal.store(("cell",), {"big": list(range(100))})
    tear_file(journal.path_of(("cell",)), keep_fraction=0.5)
    with pytest.raises(CheckpointError, match="corrupt or truncated"):
        journal.has(("cell",))
    with pytest.raises(CheckpointError, match="corrupt or truncated"):
        journal.get_or_compute(("cell",), lambda: 0)


def test_foreign_schema_rejected(tmp_path):
    writer = CheckpointJournal(tmp_path, schema="sweep-a")
    writer.store(("cell",), 1)
    reader = CheckpointJournal(tmp_path, schema="sweep-b")
    # Same key, same path, different sweep: must refuse, not ingest.
    assert reader.path_of(("cell",)) == writer.path_of(("cell",))
    with pytest.raises(CheckpointError, match="schema"):
        reader.load(("cell",))


def test_version_mismatch_rejected(tmp_path):
    journal = CheckpointJournal(tmp_path, schema="test")
    journal.store(("cell",), 1)
    path = journal.path_of(("cell",))
    payload = json.loads(path.read_text())
    payload["version"] = JOURNAL_VERSION + 1
    path.write_text(json.dumps(payload))
    with pytest.raises(CheckpointError, match="version"):
        journal.load(("cell",))


def test_key_tampering_rejected(tmp_path):
    journal = CheckpointJournal(tmp_path, schema="test")
    journal.store(("cell",), 1)
    path = journal.path_of(("cell",))
    payload = json.loads(path.read_text())
    payload["key"] = ["other"]
    path.write_text(json.dumps(payload))
    with pytest.raises(CheckpointError, match="does not match"):
        journal.load(("cell",))


def test_missing_field_rejected(tmp_path):
    journal = CheckpointJournal(tmp_path, schema="test")
    journal.store(("cell",), 1)
    path = journal.path_of(("cell",))
    payload = json.loads(path.read_text())
    del payload["value"]
    path.write_text(json.dumps(payload))
    with pytest.raises(CheckpointError, match="missing 'value'"):
        journal.load(("cell",))


def test_empty_key_and_schema_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="schema"):
        CheckpointJournal(tmp_path, schema="")
    journal = CheckpointJournal(tmp_path, schema="test")
    with pytest.raises(CheckpointError, match="non-empty"):
        journal.store((), 1)
