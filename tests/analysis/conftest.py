"""Shared fixtures for the static-analysis suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Finding, analyze_file, get_rule


@pytest.fixture
def lint(tmp_path):
    """Lint a source snippet as if it lived at a given dotted module.

    Returns the findings for one rule only, so fixture files can violate
    other rules (e.g. TYP001) without polluting the assertion.
    """

    def run(source: str, *, module: str, rule: str) -> list[Finding]:
        path = tmp_path / "fixture.py"
        path.write_text(source)
        return analyze_file(path, module=module, rules=[get_rule(rule)])

    return run


@pytest.fixture
def repo_root() -> Path:
    return Path(__file__).resolve().parents[2]
