"""Per-rule fixtures: each rule fires on its violation and stays silent
on the compliant twin.  The firing assertions are golden — rule id,
line and message fragment — so a rule that drifts to a different node
or wording fails loudly."""

from __future__ import annotations

import textwrap


def _src(body: str) -> str:
    return textwrap.dedent(body).lstrip("\n")


class TestDET001UnseededRandomness:
    def test_stdlib_random_module_fires(self, lint):
        findings = lint(
            _src(
                """
                import random

                def pick() -> float:
                    return random.random()
                """
            ),
            module="repro.synth.streams",
            rule="DET001",
        )
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "DET001"
        assert f.line == 4
        assert "hidden global state" in f.message
        assert "default_rng" in f.suggestion

    def test_from_random_import_fires(self, lint):
        findings = lint(
            _src(
                """
                from random import choice

                def pick(items: list) -> object:
                    return choice(items)
                """
            ),
            module="repro.synth.streams",
            rule="DET001",
        )
        assert [f.line for f in findings] == [4]
        assert "choice()" in findings[0].message

    def test_numpy_legacy_api_fires(self, lint):
        findings = lint(
            _src(
                """
                import numpy as np

                def noise(n: int) -> object:
                    return np.random.rand(n)
                """
            ),
            module="repro.core.batch",
            rule="DET001",
        )
        assert len(findings) == 1
        assert "legacy" in findings[0].message

    def test_unseeded_default_rng_fires(self, lint):
        findings = lint(
            _src(
                """
                import numpy as np

                def make_rng() -> object:
                    return np.random.default_rng()
                """
            ),
            module="repro.core.batch",
            rule="DET001",
        )
        assert len(findings) == 1
        assert "without a seed" in findings[0].message

    def test_seeded_generator_is_silent(self, lint):
        findings = lint(
            _src(
                """
                import numpy as np

                def make_rng(seed: int) -> object:
                    return np.random.default_rng(seed)

                def spawn(seed: int) -> object:
                    return np.random.SeedSequence(seed).spawn(4)
                """
            ),
            module="repro.core.batch",
            rule="DET001",
        )
        assert findings == []

    def test_outside_repro_is_out_of_scope(self, lint):
        findings = lint(
            "import random\nx = random.random()\n",
            module="scripts.demo",
            rule="DET001",
        )
        assert findings == []

    def test_inline_pragma_suppresses(self, lint):
        findings = lint(
            _src(
                """
                import random

                x = random.random()  # lint: allow[DET001] demo fixture
                """
            ),
            module="repro.synth.streams",
            rule="DET001",
        )
        assert findings == []


class TestDET002WallClockRead:
    def test_time_time_fires(self, lint):
        findings = lint(
            _src(
                """
                import time

                def stamp() -> float:
                    return time.time()
                """
            ),
            module="repro.core.model",
            rule="DET002",
        )
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "time.time()" in findings[0].message

    def test_from_time_import_time_fires(self, lint):
        findings = lint(
            _src(
                """
                from time import time

                def stamp() -> float:
                    return time()
                """
            ),
            module="repro.core.model",
            rule="DET002",
        )
        assert len(findings) == 1

    def test_datetime_now_fires(self, lint):
        findings = lint(
            _src(
                """
                import datetime

                def stamp() -> object:
                    return datetime.datetime.now()
                """
            ),
            module="repro.eval.protocol",
            rule="DET002",
        )
        assert len(findings) == 1

    def test_perf_counter_is_fine_everywhere(self, lint):
        findings = lint(
            _src(
                """
                import time

                def interval() -> float:
                    return time.perf_counter()
                """
            ),
            module="repro.core.model",
            rule="DET002",
        )
        assert findings == []

    def test_obs_layer_may_read_the_clock(self, lint):
        source = "import time\nstamp = time.time()\n"
        assert lint(source, module="repro.obs.manifest", rule="DET002") == []
        assert (
            lint(source, module="repro.runtime.executor", rule="DET002") == []
        )
        # ... but the rest of the runtime may not.
        assert (
            lint(source, module="repro.runtime.checkpoint", rule="DET002")
            != []
        )


class TestIO001NonAtomicWrite:
    def test_plain_write_in_runtime_fires(self, lint):
        findings = lint(
            _src(
                """
                def persist(path: str, text: str) -> None:
                    with open(path, "w") as fh:
                        fh.write(text)
                """
            ),
            module="repro.runtime.journal",
            rule="IO001",
        )
        assert len(findings) == 1
        assert findings[0].rule == "IO001"
        assert "atomic" in (findings[0].message + findings[0].suggestion)

    def test_write_text_fires(self, lint):
        findings = lint(
            _src(
                """
                from pathlib import Path

                def persist(path: Path, text: str) -> None:
                    path.write_text(text)
                """
            ),
            module="repro.obs.export",
            rule="IO001",
        )
        assert len(findings) == 1

    def test_inlined_replace_protocol_is_silent(self, lint):
        findings = lint(
            _src(
                """
                import os

                def persist(path: str, text: str) -> None:
                    tmp = path + ".tmp"
                    with open(tmp, "w") as fh:
                        fh.write(text)
                    os.replace(tmp, path)
                """
            ),
            module="repro.runtime.journal",
            rule="IO001",
        )
        assert findings == []

    def test_reads_are_silent(self, lint):
        findings = lint(
            _src(
                """
                def load(path: str) -> str:
                    with open(path) as fh:
                        return fh.read()
                """
            ),
            module="repro.runtime.journal",
            rule="IO001",
        )
        assert findings == []

    def test_outside_durable_layers_is_out_of_scope(self, lint):
        findings = lint(
            _src(
                """
                def persist(path: str, text: str) -> None:
                    with open(path, "w") as fh:
                        fh.write(text)
                """
            ),
            module="repro.viz.export",
            rule="IO001",
        )
        assert findings == []


class TestERR001ExceptionDiscipline:
    def test_bare_except_fires_anywhere(self, lint):
        findings = lint(
            _src(
                """
                def risky() -> None:
                    try:
                        pass
                    except:
                        pass
                """
            ),
            module="repro.viz.ascii",
            rule="ERR001",
        )
        assert len(findings) == 1
        assert "bare except" in findings[0].message

    def test_swallowed_exception_in_runtime_fires(self, lint):
        findings = lint(
            _src(
                """
                def risky() -> None:
                    try:
                        pass
                    except Exception:
                        pass
                """
            ),
            module="repro.runtime.executor",
            rule="ERR001",
        )
        assert len(findings) == 1

    def test_recorded_exception_in_runtime_is_silent(self, lint):
        findings = lint(
            _src(
                """
                def risky(errors: list) -> None:
                    try:
                        pass
                    except Exception as exc:
                        errors.append(str(exc))
                """
            ),
            module="repro.runtime.executor",
            rule="ERR001",
        )
        assert findings == []

    def test_reraised_exception_is_silent(self, lint):
        findings = lint(
            _src(
                """
                def risky() -> None:
                    try:
                        pass
                    except Exception as exc:
                        raise RuntimeError("wrapped") from exc
                """
            ),
            module="repro.runtime.checkpoint",
            rule="ERR001",
        )
        assert findings == []

    def test_base_exception_without_reraise_fires(self, lint):
        findings = lint(
            _src(
                """
                def risky() -> None:
                    try:
                        pass
                    except BaseException:
                        pass
                """
            ),
            module="repro.core.model",
            rule="ERR001",
        )
        assert len(findings) == 1

    def test_base_exception_with_reraise_is_silent(self, lint):
        findings = lint(
            _src(
                """
                def risky(pool: object) -> None:
                    try:
                        pass
                    except BaseException:
                        pool.shutdown()
                        raise
                """
            ),
            module="repro.runtime.executor",
            rule="ERR001",
        )
        assert findings == []


class TestFLT001FloatEquality:
    def test_float_literal_equality_fires(self, lint):
        findings = lint(
            _src(
                """
                def classify(x: float) -> bool:
                    return x == 1.0
                """
            ),
            module="repro.core.trend",
            rule="FLT001",
        )
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "FLT001"
        assert f.line == 2
        assert "float equality" in f.message
        assert "isclose" in f.suggestion

    def test_not_equal_fires_too(self, lint):
        findings = lint(
            "def f(x: float) -> bool:\n    return x != 0.5\n",
            module="repro.eval.metrics",
            rule="FLT001",
        )
        assert len(findings) == 1

    def test_integer_equality_is_silent(self, lint):
        findings = lint(
            "def f(n: int) -> bool:\n    return n == 0\n",
            module="repro.core.trend",
            rule="FLT001",
        )
        assert findings == []

    def test_ordering_comparisons_are_silent(self, lint):
        findings = lint(
            "def f(x: float) -> bool:\n    return x <= 1.0\n",
            module="repro.core.trend",
            rule="FLT001",
        )
        assert findings == []

    def test_outside_core_eval_is_out_of_scope(self, lint):
        findings = lint(
            "def f(x: float) -> bool:\n    return x == 1.0\n",
            module="repro.viz.ascii",
            rule="FLT001",
        )
        assert findings == []


class TestOBS001CanonicalInstrumentNames:
    def test_unknown_metric_literal_fires(self, lint):
        findings = lint(
            _src(
                """
                from repro.obs import metrics as obs_metrics

                def record() -> None:
                    obs_metrics.get_metrics().counter("bogus.metric").inc()
                """
            ),
            module="repro.runtime.checkpoint",
            rule="OBS001",
        )
        assert len(findings) == 1
        assert "'bogus.metric'" in findings[0].message
        assert "taxonomy" in findings[0].message

    def test_unknown_span_literal_fires(self, lint):
        findings = lint(
            _src(
                """
                from repro.obs import trace as obs_trace

                def work() -> None:
                    with obs_trace.span("bogus.span"):
                        pass
                """
            ),
            module="repro.core.engines",
            rule="OBS001",
        )
        assert len(findings) == 1

    def test_canonical_names_are_silent(self, lint):
        findings = lint(
            _src(
                """
                from repro.obs import metrics as obs_metrics
                from repro.obs import trace as obs_trace

                def record() -> None:
                    registry = obs_metrics.get_metrics()
                    registry.counter(obs_metrics.CHECKPOINT_HITS).inc()
                    with obs_trace.span("executor.shard", shard=1):
                        pass
                """
            ),
            module="repro.runtime.checkpoint",
            rule="OBS001",
        )
        assert findings == []

    def test_nonexistent_constant_fires(self, lint):
        findings = lint(
            _src(
                """
                from repro.obs import metrics as obs_metrics

                def record() -> None:
                    obs_metrics.get_metrics().counter(
                        obs_metrics.NO_SUCH_COUNTER
                    ).inc()
                """
            ),
            module="repro.runtime.checkpoint",
            rule="OBS001",
        )
        assert len(findings) == 1
        assert "NO_SUCH_COUNTER" in findings[0].message

    def test_obs_package_itself_is_out_of_scope(self, lint):
        findings = lint(
            'x = __import__("repro.obs.trace").span("whatever.name")\n',
            module="repro.obs.trace",
            rule="OBS001",
        )
        assert findings == []

    def test_unknown_gauge_literal_fires(self, lint):
        findings = lint(
            _src(
                """
                from repro.obs import metrics as obs_metrics

                def record() -> None:
                    obs_metrics.get_metrics().gauge("bogus.depth").set(1.0)
                """
            ),
            module="repro.serve.loop",
            rule="OBS001",
        )
        assert len(findings) == 1
        assert "gauge" in findings[0].message
        assert "'bogus.depth'" in findings[0].message

    def test_canonical_gauge_is_silent(self, lint):
        findings = lint(
            _src(
                """
                from repro.obs import metrics as obs_metrics

                def record() -> None:
                    registry = obs_metrics.get_metrics()
                    registry.gauge(obs_metrics.SERVE_QUEUE_DEPTH).set(3.0)
                    registry.gauge("serve.lag_days").set(0.0)
                """
            ),
            module="repro.serve.loop",
            rule="OBS001",
        )
        assert findings == []

    def test_unknown_windowed_series_fires(self, lint):
        findings = lint(
            _src(
                """
                def report(windowed) -> float:
                    return windowed.rate("bogus.series")
                """
            ),
            module="repro.serve.api",
            rule="OBS001",
        )
        assert len(findings) == 1
        assert "windowed series" in findings[0].message

    def test_canonical_windowed_queries_are_silent(self, lint):
        findings = lint(
            _src(
                """
                def report(windowed) -> None:
                    windowed.rate("serve.ingested")
                    windowed.window_count("soak.faults_injected")
                    windowed.window_summary("serve.batch_s")
                """
            ),
            module="repro.serve.api",
            rule="OBS001",
        )
        assert findings == []

    def test_nonexistent_gauge_constant_fires(self, lint):
        findings = lint(
            _src(
                """
                from repro.obs import metrics as obs_metrics

                def record() -> None:
                    obs_metrics.get_metrics().gauge(
                        obs_metrics.NO_SUCH_GAUGE
                    ).set(1.0)
                """
            ),
            module="repro.serve.loop",
            rule="OBS001",
        )
        assert len(findings) == 1
        assert "NO_SUCH_GAUGE" in findings[0].message


class TestTYP001StrictAnnotations:
    def test_unannotated_def_in_gated_module_fires(self, lint):
        findings = lint(
            "def f(x):\n    return x\n",
            module="repro.core.model",
            rule="TYP001",
        )
        assert len(findings) == 1
        f = findings[0]
        assert "f() is missing annotations" in f.message
        assert "return type" in f.message
        assert "x" in f.message

    def test_missing_kwargs_annotation_fires(self, lint):
        findings = lint(
            "def f(x: int, **kw) -> int:\n    return x\n",
            module="repro.obs.trace",
            rule="TYP001",
        )
        assert len(findings) == 1
        assert "**kw" in findings[0].message

    def test_fully_annotated_is_silent(self, lint):
        findings = lint(
            _src(
                """
                class C:
                    def method(self, x: int, *args: object) -> int:
                        return x

                    @classmethod
                    def make(cls) -> "C":
                        return cls()
                """
            ),
            module="repro.runtime.snapshot",
            rule="TYP001",
        )
        assert findings == []

    def test_ungated_modules_are_out_of_scope(self, lint):
        findings = lint(
            "def f(x):\n    return x\n",
            module="repro.viz.ascii",
            rule="TYP001",
        )
        assert findings == []
