"""OBS001's taxonomy stays in lock-step with repro.obs.metrics.

The rule checks instrument names against ``CANONICAL_METRIC_NAMES`` /
``CANONICAL_SPAN_NAMES`` *live* (imported, not copied), so the only way
the gate can rot is if the frozensets and the module's constants drift
apart.  These tests pin that correspondence in both directions.
"""

from __future__ import annotations

from repro.obs import metrics as obs_metrics


def _string_constants() -> dict[str, str]:
    return {
        name: value
        for name, value in vars(obs_metrics).items()
        if name.isupper()
        and isinstance(value, str)
        and not name.startswith("_")
    }


def test_every_metric_constant_is_canonical():
    constants = _string_constants()
    metric_names = {
        v
        for k, v in constants.items()
        if k.startswith(("CHECKPOINT_", "SHARD_", "CELLS_", "STAGE_"))
    }
    assert metric_names <= obs_metrics.CANONICAL_METRIC_NAMES


def test_every_span_constant_is_canonical():
    constants = _string_constants()
    span_names = {v for k, v in constants.items() if k.startswith("SPAN_")}
    assert span_names <= obs_metrics.CANONICAL_SPAN_NAMES


def test_canonical_sets_contain_only_declared_constants():
    declared = set(_string_constants().values())
    assert obs_metrics.CANONICAL_METRIC_NAMES <= declared
    assert obs_metrics.CANONICAL_SPAN_NAMES <= declared
    assert obs_metrics.CANONICAL_GAUGE_NAMES <= declared
    assert obs_metrics.CANONICAL_WINDOWED_NAMES <= declared


def test_every_gauge_constant_is_canonical():
    """The position gauges (PR 9) follow the same two-way pin."""
    constants = _string_constants()
    gauge_names = {
        v
        for k, v in constants.items()
        if k in ("SERVE_QUEUE_DEPTH", "SERVE_LAG_DAYS", "SERVE_COMMIT_INDEX",
                 "SOAK_SLO_BURN")
    }
    assert gauge_names == obs_metrics.CANONICAL_GAUGE_NAMES


def test_windowed_names_are_existing_counters_or_stages():
    """The window layer diffs the cumulative registry, so every windowed
    series must already be a canonical counter/histogram name."""
    assert (
        obs_metrics.CANONICAL_WINDOWED_NAMES
        <= obs_metrics.CANONICAL_METRIC_NAMES
    )


def test_stage_names_are_valid_span_names_too():
    """timed_stage() opens a span under the histogram's metric name."""
    constants = _string_constants()
    stage_names = {
        v for k, v in constants.items() if k.startswith("STAGE_")
    }
    assert stage_names <= obs_metrics.CANONICAL_SPAN_NAMES


def test_obs001_reads_the_taxonomy_live(tmp_path):
    """Adding a constant to the module is enough — no rule edit needed."""
    from repro.analysis import analyze_file, get_rule

    source = (
        "from repro.obs import metrics as obs_metrics\n"
        "from repro.obs import trace as obs_trace\n"
        "\n"
        "def work() -> None:\n"
    )
    for name in sorted(obs_metrics.CANONICAL_SPAN_NAMES):
        source += f"    with obs_trace.span({name!r}):\n        pass\n"
    path = tmp_path / "all_spans.py"
    path.write_text(source)
    findings = analyze_file(
        path, module="repro.core.fixture", rules=[get_rule("OBS001")]
    )
    assert findings == []
