"""The live tree obeys its own invariants, modulo the committed baseline.

This is the in-suite mirror of CI's ``static-analysis`` job: linting
``src/repro`` with the repo's ``lint-baseline.json`` must produce zero
new findings and zero stale entries, and the baseline itself must stay
small and justified (the grandfather list shrinks, it does not grow).
"""

from __future__ import annotations

from repro.analysis import Baseline, run_analysis
from repro.analysis.baseline import BASELINE_NAME

#: Hard cap on grandfathered findings (PR acceptance criterion).
MAX_BASELINE_ENTRIES = 5


def test_src_repro_is_lint_clean(repo_root):
    baseline = Baseline.load(repo_root / BASELINE_NAME)
    report = run_analysis(
        [repo_root / "src" / "repro"], baseline=baseline, root=repo_root
    )
    assert report.clean, "\n" + report.render()
    assert report.unused_baseline == (), "\n" + report.render()
    assert report.n_files > 50  # the sweep actually covered the tree


def test_baseline_is_small_and_justified(repo_root):
    baseline = Baseline.load(repo_root / BASELINE_NAME)
    assert len(baseline.entries) <= MAX_BASELINE_ENTRIES
    for entry in baseline.entries:
        assert entry.justification.strip()
        # Justifications must explain, not hand-wave.
        assert len(entry.justification) >= 20, entry


def test_fixture_suite_and_live_rules_agree(repo_root):
    """Every registered rule is exercised by the fixture suite.

    File-scope rules live in ``test_rules.py``; project-scope rules in
    ``test_project_rules.py`` (backed by the multi-file packages under
    ``fixtures/``).
    """
    from pathlib import Path

    from repro.analysis import all_rules

    here = Path(__file__).parent
    fixtures = "\n".join(
        (here / name).read_text()
        for name in ("test_rules.py", "test_project_rules.py")
    )
    for rule in all_rules():
        assert rule.rule_id in fixtures, (
            f"{rule.rule_id} has no firing/silent fixture coverage"
        )
