"""Exit-code and output contracts of ``repro-attrition lint`` / ``-m``."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def _clean_tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "clean.py").write_text("x = 1\n")
    return pkg


def _dirty_tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(
        "import time\n\n\ndef stamp() -> float:\n    return time.time()\n"
    )
    return pkg


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        assert main([str(_clean_tree(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "0 new finding(s)" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        assert main([str(_dirty_tree(tmp_path)), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        assert main([str(_clean_tree(tmp_path)), "--rules", "NOPE999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{nope")
        code = main(
            [str(_clean_tree(tmp_path)), "--baseline", str(bad)]
        )
        assert code == 2
        assert "lint:" in capsys.readouterr().err

    def test_exit_contract_on_seeded_violation_fixture(self, capsys):
        """The 0/1/2 contract over the committed fixture packages — the
        same assertions CI's exit-contract step makes."""
        # Seeded violation: findings -> 1.
        assert main([str(FIXTURES / "seq_fire"), "--no-baseline"]) == 1
        assert "SEQ001" in capsys.readouterr().out
        # Sanctioned twin, same rule: clean -> 0.
        code = main(
            [str(FIXTURES / "seq_silent"), "--no-baseline", "--rules", "SEQ001"]
        )
        assert code == 0
        capsys.readouterr()
        # Config error: unknown rule -> 2.
        assert main([str(FIXTURES / "seq_fire"), "--rules", "NOPE*"]) == 2
        assert "matches no registered rule" in capsys.readouterr().err


class TestSelectionAndOutput:
    def test_rules_filter_limits_the_run(self, tmp_path, capsys):
        # The dirty tree violates DET002 (and TYP001-irrelevant here);
        # restricting to FLT001 must come back clean.
        code = main(
            [str(_dirty_tree(tmp_path)), "--no-baseline", "--rules", "FLT001"]
        )
        assert code == 0
        capsys.readouterr()

    def test_rules_accepts_family_globs(self, capsys):
        # A family glob plus an exact id: only those rules run, so the
        # seeded SEQ001/DUR001 fixtures fire and nothing else does.
        code = main(
            [
                str(FIXTURES / "dur_fire"),
                str(FIXTURES / "seq_fire"),
                "--no-baseline",
                "--rules",
                "DUR*,SEQ001",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "DUR001" in out
        assert "SEQ001" in out
        assert "TYP001" not in out  # untyped fixtures, rule not selected

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "TYP001" in out

    def test_list_rules_shows_scope_column(self, capsys):
        assert main(["--list-rules"]) == 0
        lines = capsys.readouterr().out.splitlines()
        scopes = {
            line.split()[0]: line.split()[1] for line in lines if line.strip()
        }
        assert scopes["DET001"] == "file"
        for rule_id in ("DUR001", "SEQ001", "FRK001", "RES001"):
            assert scopes[rule_id] == "project"

    def test_graph_out_writes_callgraph_json(self, tmp_path, capsys):
        graph = tmp_path / "callgraph.json"
        code = main(
            [
                str(FIXTURES / "dur_fire"),
                "--no-baseline",
                "--rules",
                "DUR001",
                "--graph-out",
                str(graph),
            ]
        )
        assert code == 1
        capsys.readouterr()
        doc = json.loads(graph.read_text())
        assert doc["schema"] == "repro-callgraph"
        edges = {(e["caller"], e["callee"]) for e in doc["edges"]}
        assert (
            "repro.serve.writer.persist_snapshot",
            "repro.util.helpers.dump_payload",
        ) in edges

    def test_graph_out_without_project_rules(self, tmp_path, capsys):
        # The graph is built on demand even when only file rules ran.
        graph = tmp_path / "callgraph.json"
        code = main(
            [
                str(FIXTURES / "dur_silent"),
                "--no-baseline",
                "--rules",
                "FLT001",
                "--graph-out",
                str(graph),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert json.loads(graph.read_text())["n_functions"] > 0

    def test_json_output_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "findings.json"
        code = main(
            [
                str(_dirty_tree(tmp_path)),
                "--no-baseline",
                "--format",
                "json",
                "--output",
                str(artifact),
            ]
        )
        assert code == 1
        capsys.readouterr()
        payload = json.loads(artifact.read_text())
        assert payload["schema"] == "repro-lint-report"
        assert any(f["rule"] == "DET002" for f in payload["new"])

    def test_baseline_file_absorbs_findings(self, tmp_path, capsys):
        tree = _dirty_tree(tmp_path)
        # First run captures the finding, second run baselines it.
        code = main(
            [
                str(tree),
                "--no-baseline",
                "--format",
                "json",
                "--output",
                str(tmp_path / "report.json"),
            ]
        )
        assert code == 1
        capsys.readouterr()
        report = json.loads((tmp_path / "report.json").read_text())
        entries = [
            {
                "rule": f["rule"],
                "path": f["path"],
                "line_text": f["line_text"],
                "justification": "fixture grandfathering",
            }
            for f in report["new"]
        ]
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema": "repro-lint-baseline",
                    "version": 1,
                    "entries": entries,
                }
            )
        )
        assert main([str(tree), "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out


class TestUmbrellaCli:
    def test_lint_subcommand_is_wired(self, tmp_path, capsys):
        from repro.cli import main as umbrella

        code = umbrella(["lint", str(_clean_tree(tmp_path))])
        assert code == 0
        assert "0 new finding(s)" in capsys.readouterr().out
