"""Baseline file semantics: content-keyed matching and strict loading."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, BaselineEntry, Finding
from repro.errors import SchemaError


def _finding(**overrides) -> Finding:
    base = {
        "rule": "FLT001",
        "path": "src/repro/core/x.py",
        "line": 10,
        "message": "float equality",
        "suggestion": "isclose",
        "line_text": "if x == 0.0:",
    }
    base.update(overrides)
    return Finding(**base)


def _entry(**overrides) -> BaselineEntry:
    base = {
        "rule": "FLT001",
        "path": "src/repro/core/x.py",
        "line_text": "if x == 0.0:",
        "justification": "sentinel comparison",
    }
    base.update(overrides)
    return BaselineEntry(**base)


class TestMatching:
    def test_matches_on_content_not_line_number(self):
        entry = _entry()
        assert entry.matches(_finding(line=10))
        assert entry.matches(_finding(line=999))

    def test_rule_path_and_text_must_all_match(self):
        entry = _entry()
        assert not entry.matches(_finding(rule="DET001"))
        assert not entry.matches(_finding(path="src/repro/core/y.py"))
        assert not entry.matches(_finding(line_text="if x == 1.0:"))

    def test_split_reports_stale_entries(self):
        baseline = Baseline(entries=(_entry(), _entry(path="gone.py")))
        new, baselined, unused = baseline.split([_finding()])
        assert new == []
        assert len(baselined) == 1
        assert [e.path for e in unused] == ["gone.py"]


class TestLoading:
    def test_round_trip(self, tmp_path):
        baseline = Baseline(entries=(_entry(),))
        path = tmp_path / "lint-baseline.json"
        path.write_text(baseline.dumps())
        assert Baseline.load(path) == baseline

    def test_load_or_empty_on_missing_file(self, tmp_path):
        assert Baseline.load_or_empty(tmp_path / "nope.json") == Baseline()

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{truncated")
        with pytest.raises(SchemaError, match="not valid JSON"):
            Baseline.load(path)

    def test_foreign_schema_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something-else", "version": 1}))
        with pytest.raises(SchemaError, match="not a repro-lint-baseline"):
            Baseline.load(path)

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {"schema": "repro-lint-baseline", "version": 99, "entries": []}
            )
        )
        with pytest.raises(SchemaError, match="version"):
            Baseline.load(path)

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "repro-lint-baseline",
                    "version": 1,
                    "entries": [{"rule": "FLT001", "path": "x.py"}],
                }
            )
        )
        with pytest.raises(SchemaError, match="missing field"):
            Baseline.load(path)

    def test_empty_justification_raises(self, tmp_path):
        payload = Baseline(entries=(_entry(justification="  "),)).to_dict()
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(SchemaError, match="justification"):
            Baseline.load(path)
