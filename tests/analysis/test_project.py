"""Unit tests for the project layer: symbols, call graph, CFG.

These pin the resolution semantics the interprocedural rules stand on:
import chasing through ``__init__`` re-exports, aliasing, cycle
safety, conservative (resolve-or-``None``) behaviour, and the
happens-before queries of the statement CFG.
"""

from __future__ import annotations

import ast
from textwrap import dedent

from repro.analysis.engine import FileContext, _parse_file
from repro.analysis.project import (
    GRAPH_SCHEMA,
    GRAPH_VERSION,
    CallGraph,
    ControlFlowGraph,
    ProjectContext,
    SymbolTable,
    render_chain,
    statement_calls,
)


def ctx_for(tmp_path, module: str, source: str) -> FileContext:
    path = tmp_path / (module.replace(".", "/") + ".py")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dedent(source))
    parsed = _parse_file(path, module=module, root=tmp_path)
    assert isinstance(parsed, FileContext), parsed
    return parsed


def table_for(tmp_path, sources: dict[str, str]) -> SymbolTable:
    return SymbolTable.build(
        [ctx_for(tmp_path, module, src) for module, src in sources.items()]
    )


# ----------------------------------------------------------------------
# Symbol table
# ----------------------------------------------------------------------
def test_symbols_index_functions_methods_and_nested_defs(tmp_path):
    table = table_for(
        tmp_path,
        {
            "repro.serve.loop": """
                def outer():
                    def inner():
                        return 1
                    return inner

                class Pool:
                    def advance(self):
                        return None
            """
        },
    )
    quals = set(table.functions)
    assert "repro.serve.loop.outer" in quals
    assert "repro.serve.loop.outer.inner" in quals
    assert "repro.serve.loop.Pool.advance" in quals
    advance = table.functions["repro.serve.loop.Pool.advance"]
    assert advance.class_name == "Pool"
    assert table.classes["repro.serve.loop.Pool"] == {
        "advance": "repro.serve.loop.Pool.advance"
    }


def test_resolve_direct_import_and_alias(tmp_path):
    table = table_for(
        tmp_path,
        {
            "repro.util.helpers": """
                def dump(path):
                    return path
            """,
            "repro.serve.writer": """
                from repro.util.helpers import dump as dump_alias

                def persist(path):
                    return dump_alias(path)
            """,
        },
    )
    assert (
        table.resolve("repro.serve.writer", "dump_alias")
        == "repro.util.helpers.dump"
    )
    # Unknown names stay unresolved rather than guessed.
    assert table.resolve("repro.serve.writer", "missing") is None


def test_resolve_module_attribute_chain(tmp_path):
    table = table_for(
        tmp_path,
        {
            "repro.util.helpers": """
                def dump(path):
                    return path
            """,
            "repro.serve.writer": """
                import repro.util.helpers

                def persist(path):
                    return repro.util.helpers.dump(path)
            """,
        },
    )
    assert (
        table.resolve("repro.serve.writer", "repro.util.helpers.dump")
        == "repro.util.helpers.dump"
    )


def test_resolve_chases_init_reexport(tmp_path):
    """``from repro.serve import helper`` where serve/__init__ aliases
    the symbol out of a private implementation module."""
    table = table_for(
        tmp_path,
        {
            "repro.serve.impl": """
                def helper():
                    return 1
            """,
            "repro.serve": """
                from repro.serve.impl import helper as run_helper
            """,
            "repro.other": """
                from repro.serve import run_helper

                def caller():
                    return run_helper()
            """,
        },
    )
    assert (
        table.resolve("repro.other", "run_helper")
        == "repro.serve.impl.helper"
    )


def test_resolve_survives_reexport_cycles(tmp_path):
    table = table_for(
        tmp_path,
        {
            "repro.a": "from repro.b import thing_b as thing_a\n",
            "repro.b": "from repro.a import thing_a as thing_b\n",
        },
    )
    # A re-export cycle with no definition terminates as unresolved.
    assert table.resolve("repro.a", "thing_a") is None


def test_resolve_method_requires_uniqueness(tmp_path):
    table = table_for(
        tmp_path,
        {
            "repro.x": """
                class A:
                    def only_here(self):
                        return 1

                    def shared(self):
                        return 1
            """,
            "repro.y": """
                class B:
                    def shared(self):
                        return 2
            """,
        },
    )
    assert table.resolve_method("only_here") == "repro.x.A.only_here"
    assert table.resolve_method("shared") is None  # ambiguous
    assert table.resolve_method("absent") is None


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
def test_callgraph_edges_and_self_method_resolution(tmp_path):
    table = table_for(
        tmp_path,
        {
            "repro.serve.ckpt": """
                class Checkpoint:
                    def write(self):
                        return None

                    def run(self):
                        self.write()
            """
        },
    )
    graph = CallGraph.build(table)
    callees = graph.callees("repro.serve.ckpt.Checkpoint.run")
    assert [s.callee for s in callees] == [
        "repro.serve.ckpt.Checkpoint.write"
    ]


def test_callgraph_find_path_and_cycles(tmp_path):
    table = table_for(
        tmp_path,
        {
            "repro.a": """
                from repro.b import pong

                def ping():
                    return pong()
            """,
            "repro.b": """
                import repro.a

                def pong():
                    return repro.a.ping()

                def sink():
                    return 1
            """,
        },
    )
    graph = CallGraph.build(table)
    # Mutual recursion terminates and the target is simply not found.
    assert (
        graph.find_path("repro.a.ping", lambda f: f.name == "sink") is None
    )
    path = graph.find_path("repro.a.ping", lambda f: f.name == "pong")
    assert path is not None
    assert render_chain(path) == "repro.a.ping -> repro.b.pong"
    assert graph.reaches("repro.a.ping", lambda f: f.name == "ping")


def test_callgraph_skip_modules_blocks_traversal(tmp_path):
    table = table_for(
        tmp_path,
        {
            "repro.atomicio": """
                def atomic_write_text(path):
                    with open(path, "w") as fh:
                        fh.write("x")
            """,
            "repro.serve.writer": """
                from repro.atomicio import atomic_write_text

                def persist(path):
                    atomic_write_text(path)
            """,
        },
    )
    graph = CallGraph.build(table)

    def writes_raw(info):
        return info.name == "atomic_write_text"

    assert graph.reaches("repro.serve.writer.persist", writes_raw)
    assert not graph.reaches(
        "repro.serve.writer.persist",
        writes_raw,
        skip_modules=("repro.atomicio",),
    )


def test_callgraph_json_dump_shape(tmp_path):
    table = table_for(
        tmp_path,
        {
            "repro.m": """
                def f():
                    return g() + unknown()

                def g():
                    return 1
            """
        },
    )
    doc = CallGraph.build(table).to_dict()
    assert doc["schema"] == GRAPH_SCHEMA
    assert doc["version"] == GRAPH_VERSION
    assert doc["n_functions"] == 2
    assert doc["n_edges"] == 1
    assert doc["n_unresolved_calls"] == 1
    (edge,) = doc["edges"]
    assert edge["caller"] == "repro.m.f"
    assert edge["callee"] == "repro.m.g"


def test_project_context_build_and_pragma_filter(tmp_path):
    ctx = ctx_for(
        tmp_path,
        "repro.serve.writer",
        """
        def persist(path):  # lint: allow[DUR001] fixture pragma
            return path
        """,
    )
    project = ProjectContext.build([ctx])
    assert project.symbols.functions["repro.serve.writer.persist"]
    finding = ctx.finding("DUR001", ctx.tree.body[0], "msg")
    assert project.allowed(finding)
    other = ctx.finding("SEQ001", ctx.tree.body[0], "msg")
    assert not project.allowed(other)


# ----------------------------------------------------------------------
# Control-flow graph
# ----------------------------------------------------------------------
def fn_cfg(source: str) -> ControlFlowGraph:
    tree = ast.parse(dedent(source))
    fn = tree.body[0]
    assert isinstance(fn, ast.FunctionDef)
    return ControlFlowGraph(fn)


def calls_name(name: str):
    def predicate(stmt: ast.stmt) -> bool:
        return any(
            isinstance(c.func, ast.Name) and c.func.id == name
            for c in statement_calls(stmt)
        )

    return predicate


def test_cfg_straight_line_ordering():
    cfg = fn_cfg(
        """
        def f():
            first()
            second()
        """
    )
    assert cfg.unordered(calls_name("first"), calls_name("second")) == []
    assert cfg.reachable_from(calls_name("first"), calls_name("second"))
    assert not cfg.reachable_from(calls_name("second"), calls_name("first"))


def test_cfg_branch_breaks_ordering():
    cfg = fn_cfg(
        """
        def f(flag):
            if flag:
                first()
            second()
        """
    )
    # The no-flag path reaches second() without first().
    assert cfg.unordered(calls_name("first"), calls_name("second"))


def test_cfg_both_branches_preserve_ordering():
    cfg = fn_cfg(
        """
        def f(flag):
            if flag:
                first()
            else:
                first()
            second()
        """
    )
    assert cfg.unordered(calls_name("first"), calls_name("second")) == []


def test_cfg_loop_back_edge_allows_after_path():
    cfg = fn_cfg(
        """
        def f(items):
            for item in items:
                second()
                first()
        """
    )
    # Second iteration executes second() after first(): order violated.
    assert cfg.reachable_from(calls_name("first"), calls_name("second"))


def test_cfg_exception_paths_are_excluded():
    cfg = fn_cfg(
        """
        def f():
            try:
                first()
            except ValueError:
                second()
            finally:
                cleanup()
        """
    )
    # The handler body is off the normal-path graph by design.
    assert not cfg.reachable_from(calls_name("first"), calls_name("second"))
    assert cfg.reachable_from(calls_name("first"), calls_name("cleanup"))


def test_cfg_return_cuts_flow():
    cfg = fn_cfg(
        """
        def f(flag):
            if flag:
                return None
            second()
        """
    )
    # Only the fall-through arm reaches second(); a return does not.
    witnesses = cfg.unordered(calls_name("first"), calls_name("second"))
    assert len(witnesses) == 1
