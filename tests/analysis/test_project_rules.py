"""Golden fixtures for the interprocedural rule families.

Each rule family gets a firing fixture package (the violation the rule
exists to catch) and a silent twin (the sanctioned idiom it must not
flag).  Fixtures live under ``tests/analysis/fixtures/<name>/repro/...``
so module inference anchors them into the ``repro`` namespace without
touching the live tree.

SEQ001 additionally gets a mutation test against the *real*
``repro.serve.loop`` source: re-ordering the cursor seal before the
shard-state write must be caught.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_file, analyze_paths, get_rule

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"


def lint_fixture(name: str, rule_id: str):
    """Run exactly one rule over one fixture package."""
    findings, n_files = analyze_paths(
        [FIXTURES / name], rules=[get_rule(rule_id)]
    )
    assert n_files > 0, f"fixture package {name} has no python files"
    return findings


def fired_lines(findings, filename: str) -> list[int]:
    return sorted(
        f.line for f in findings if f.path.rpartition("/")[2] == filename
    )


# ----------------------------------------------------------------------
# DUR001 — durable-write discipline
# ----------------------------------------------------------------------
def test_dur001_fires_on_wrapped_raw_write():
    findings = lint_fixture("dur_fire", "DUR001")
    assert findings, "DUR001 must catch the wrapped raw write chain"
    assert all(f.rule == "DUR001" for f in findings)
    (finding,) = findings
    # Anchored at the call site inside the persistence layer, with the
    # offending chain rendered in the message.
    assert finding.path.endswith("writer.py")
    assert "persist_snapshot" in finding.message
    assert "dump_payload" in finding.message


def test_dur001_silent_on_atomic_chain():
    assert lint_fixture("dur_silent", "DUR001") == []


# ----------------------------------------------------------------------
# SEQ001 — cursor seal ordering
# ----------------------------------------------------------------------
def test_seq001_fires_on_seal_before_state_write():
    findings = lint_fixture("seq_fire", "SEQ001")
    assert all(f.rule == "SEQ001" for f in findings)
    lines = fired_lines(findings, "checkpoint.py")
    # One witness in commit_batch (loop write after seal), one in the
    # else arm of commit_branchy.
    assert len(lines) == 2
    assert lines[0] < 20 < lines[1]


def test_seq001_silent_on_write_then_seal():
    assert lint_fixture("seq_silent", "SEQ001") == []


def test_seq001_catches_reordered_live_commit(tmp_path):
    """Mutation test: break the real serve loop's commit ordering and
    verify SEQ001 catches exactly that edit."""
    live = SRC / "repro" / "serve" / "loop.py"
    source = live.read_text()
    seal = "checkpoint.commit(make_cursor(finished))"
    write_anchor = "checkpoint.write_state("
    assert seal in source, "serve loop commit-point anchor moved"
    assert write_anchor in source, "serve loop write_state anchor moved"

    # The live source must prove clean first.
    rules = [get_rule("SEQ001")]
    clean = tmp_path / "loop.py"
    clean.write_text(source)
    assert analyze_file(clean, module="repro.serve.loop", rules=rules) == []

    # Hoist the seal above the state write inside commit_state().
    write_line = next(
        line for line in source.splitlines() if write_anchor in line
    )
    indent = write_line[: len(write_line) - len(write_line.lstrip())]
    mutated = tmp_path / "loop_mutated.py"
    mutated.write_text(
        source.replace(write_line, f"{indent}{seal}\n{write_line}", 1)
    )
    findings = analyze_file(mutated, module="repro.serve.loop", rules=rules)
    assert findings, "SEQ001 must catch a seal hoisted above write_state"
    assert all(f.rule == "SEQ001" for f in findings)


# ----------------------------------------------------------------------
# FRK001 — fork safety of dispatch sites and worker chains
# ----------------------------------------------------------------------
def test_frk001_fires_on_handles_and_unsafe_worker_chain():
    findings = lint_fixture("frk_fire", "FRK001")
    assert all(f.rule == "FRK001" for f in findings)
    messages = [
        f.message for f in findings if f.path.endswith("dispatch.py")
    ]
    # Three dispatch sites, each unsafe in its own way: a handle shipped
    # as an argument, a closure capturing a handle, and a worker chain
    # touching a module-level lock.
    assert any("passes an open file handle" in m for m in messages), messages
    assert any("captures 'sink'" in m for m in messages), messages
    assert any("guarded_worker" in m for m in messages), messages
    assert fired_lines(findings, "dispatch.py") == [14, 14, 22, 29]


def test_frk001_silent_on_wire_values():
    assert lint_fixture("frk_silent", "FRK001") == []


# ----------------------------------------------------------------------
# RES001 — resource release on exception paths
# ----------------------------------------------------------------------
def test_res001_fires_on_leaky_handles():
    findings = lint_fixture("res_fire", "RES001")
    assert all(f.rule == "RES001" for f in findings)
    lines = fired_lines(findings, "stream.py")
    assert len(lines) == 2  # the open() and the socket()


def test_res001_silent_on_managed_forms():
    # with-items, closing(), ownership transfer via return/attribute,
    # and finally-released names are all sanctioned.
    assert lint_fixture("res_silent", "RES001") == []
