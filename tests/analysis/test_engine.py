"""Engine mechanics: registry, pragmas, parse failures, reporting."""

from __future__ import annotations

import pytest

from repro.analysis import (
    AnalysisReport,
    Baseline,
    BaselineEntry,
    Finding,
    all_rules,
    analyze_file,
    get_rule,
    iter_source_files,
    run_analysis,
)
from repro.analysis.engine import Rule, _module_name, register_rule
from repro.errors import ConfigError


class TestRegistry:
    def test_standard_pack_is_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)
        for expected in (
            "DET001",
            "DET002",
            "ERR001",
            "FLT001",
            "IO001",
            "OBS001",
            "TYP001",
        ):
            assert expected in ids

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.summary, rule.rule_id

    def test_unknown_rule_raises(self):
        with pytest.raises(ConfigError, match="unknown rule"):
            get_rule("NOPE999")

    def test_invalid_rule_id_is_rejected(self):
        class Bad(Rule):
            rule_id = "lowercase1"
            summary = "bad"

        with pytest.raises(ConfigError, match="invalid rule id"):
            register_rule(Bad)

    def test_duplicate_rule_id_is_rejected(self):
        class Clone(Rule):
            rule_id = "DET001"
            summary = "duplicate"

        with pytest.raises(ConfigError, match="duplicate rule id"):
            register_rule(Clone)


class TestModuleNaming:
    @pytest.mark.parametrize(
        ("path", "expected"),
        [
            ("src/repro/core/batch.py", "repro.core.batch"),
            ("src/repro/__init__.py", "repro"),
            ("repro/obs/trace.py", "repro.obs.trace"),
            ("standalone.py", "standalone"),
        ],
    )
    def test_inference(self, path, expected):
        from pathlib import Path

        assert _module_name(Path(path)) == expected


class TestAnalyzeFile:
    def test_syntax_error_becomes_syn000(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        findings = analyze_file(path, module="repro.core.broken")
        assert len(findings) == 1
        assert findings[0].rule == "SYN000"
        assert "does not parse" in findings[0].message

    def test_pragma_covers_multiple_rules(self, tmp_path):
        path = tmp_path / "fixture.py"
        path.write_text(
            "import time\n"
            "stamp = time.time()  # lint: allow[DET002, IO001] fixture\n"
        )
        findings = analyze_file(path, module="repro.core.fixture")
        assert [f for f in findings if f.rule == "DET002"] == []

    def test_pragma_does_not_cover_other_rules(self, tmp_path):
        path = tmp_path / "fixture.py"
        path.write_text(
            "import time\n"
            "stamp = time.time()  # lint: allow[FLT001] wrong rule\n"
        )
        findings = analyze_file(path, module="repro.core.fixture")
        assert [f.rule for f in findings] == ["DET002"]

    def test_iter_source_files_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        cache = tmp_path / "pkg" / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.pyc.py").write_text("x = 1\n")
        found = list(iter_source_files([tmp_path]))
        assert [p.name for p in found] == ["a.py"]

    def test_iter_source_files_rejects_non_python(self, tmp_path):
        target = tmp_path / "data.json"
        target.write_text("{}")
        with pytest.raises(ConfigError, match="not a Python file"):
            list(iter_source_files([target]))


class TestAnalysisReport:
    def _finding(self, rule="DET001", line=3):
        return Finding(
            rule=rule,
            path="src/repro/x.py",
            line=line,
            message="msg",
            suggestion="fix",
            line_text="x = bad()",
        )

    def test_clean_means_no_new_findings(self):
        report = AnalysisReport(
            new=(), baselined=(self._finding(),), unused_baseline=(), n_files=3
        )
        assert report.clean

    def test_render_includes_findings_and_summary(self):
        report = AnalysisReport(
            new=(self._finding(),), baselined=(), unused_baseline=(), n_files=1
        )
        text = report.render()
        assert "src/repro/x.py:3: DET001 msg (fix)" in text
        assert "1 new finding(s)" in text

    def test_stale_baseline_entries_are_called_out(self):
        entry = BaselineEntry(
            rule="FLT001",
            path="src/repro/gone.py",
            line_text="x == 0.0",
            justification="was needed once",
        )
        report = AnalysisReport(
            new=(), baselined=(), unused_baseline=(entry,), n_files=1
        )
        assert "no longer matches anything" in report.render()

    def test_to_dict_is_json_schema_stable(self):
        report = AnalysisReport(
            new=(self._finding(),), baselined=(), unused_baseline=(), n_files=1
        )
        payload = report.to_dict()
        assert payload["schema"] == "repro-lint-report"
        assert payload["new"][0]["rule"] == "DET001"
        assert payload["new"][0]["line"] == 3


class TestRunAnalysis:
    def test_baseline_absorbs_known_findings(self, tmp_path):
        path = tmp_path / "fixture.py"
        path.write_text("import time\nstamp = time.time()\n")
        findings = analyze_file(path, module="repro.core.fixture")
        (det,) = [f for f in findings if f.rule == "DET002"]
        baseline = Baseline(
            entries=(
                BaselineEntry(
                    rule=det.rule,
                    path=det.path,
                    line_text=det.line_text,
                    justification="fixture",
                ),
            )
        )
        new, baselined, unused = baseline.split([det])
        assert new == []
        assert baselined == [det]
        assert unused == []

    def test_run_analysis_counts_files(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        report = run_analysis([tmp_path])
        assert report.n_files == 2
        assert report.clean
