"""Serving-layer code with every handle released on all paths."""

import socket
from contextlib import closing


class StatusServer:
    def __init__(self, host, port):
        del host, port

    def stop(self):
        return None


def read_manifest(path):
    # with-statement: released on every path.
    with open(path) as fh:
        return fh.read()


def probe_endpoint(host, port):
    # Wrapped in a managing combinator.
    with closing(socket.socket()) as sock:
        sock.connect((host, port))
        return True


def make_reader(path):
    # A factory returning the handle transfers ownership to the caller.
    return open(path)


class Endpoint:
    def __init__(self, host, port):
        # Ownership moves to the object; its lifecycle releases it.
        self._server = StatusServer(host, port)

    def close(self):
        self._server.stop()


def serve_once(host, port):
    # Bound name released in a finally block.
    server = StatusServer(host, port)
    try:
        return repr(server)
    finally:
        server.stop()
