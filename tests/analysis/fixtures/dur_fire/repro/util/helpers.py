"""Helper module outside the persistence scope: the hidden raw sink."""

import json


def dump_payload(path, payload):
    """Raw write IO001 cannot see from the caller's file."""
    with open(path, "w") as handle:
        json.dump(payload, handle)


def format_payload(payload):
    return json.dumps(payload, sort_keys=True)
