"""Persistence-layer module whose write is wrapped in another module."""

from repro.util.helpers import dump_payload


def persist_snapshot(path, payload):
    # DUR001: the chain persist_snapshot -> dump_payload ends in a raw
    # open(..., "w") outside repro.atomicio.
    dump_payload(path, payload)
