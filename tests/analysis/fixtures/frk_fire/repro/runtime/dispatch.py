"""Dispatch sites smuggling handles across the fork boundary."""

from repro.runtime.workers import guarded_worker


def run_sharded(fn, tasks, **kwargs):
    del kwargs
    return [fn(t) for t in tasks], None


def dispatch_with_handle(tasks):
    # FRK001: a live file handle as a task argument.
    handle = open("state.bin", "rb")
    results, report = run_sharded(guarded_worker, tasks, journal=handle)
    handle.close()
    return results, report


def dispatch_with_capture(tasks):
    # FRK001: the lambda captures a handle from the enclosing scope.
    sink = open("sink.log", "a")
    results, _ = run_sharded(lambda t: sink.write(str(t)), tasks)
    sink.close()
    return results


def dispatch_unsafe_worker(tasks):
    # FRK001: the worker chain reaches a module-level lock.
    results, report = run_sharded(guarded_worker, tasks)
    return results, report
