"""Worker module that leans on a module-level handle: not fork-safe."""

import threading

_CACHE_LOCK = threading.Lock()


def guarded_worker(task):
    # FRK001 (interprocedural leg): reached from a dispatch site, this
    # function references a module-level lock that does not survive the
    # fork boundary.
    with _CACHE_LOCK:
        return task
