"""Fork-safe worker: plain wire values in, plain values out."""

_DEFAULT_ALPHA = 2.0


def shard_worker(task):
    # Rebuilds whatever it needs from the picklable task tuple and
    # returns plain values; module-level state it reads is a constant.
    shard_id, rows = task
    total = sum(value * _DEFAULT_ALPHA for value in rows)
    return shard_id, total
