"""Dispatch sites shipping only picklable wire values: fork-safe."""

from repro.runtime.workers import shard_worker


def run_sharded(fn, tasks, **kwargs):
    del kwargs
    return [fn(t) for t in tasks], None


def dispatch_wire_tuples(rows, n_shards):
    # Tasks are plain tuples; the worker is a module-level function
    # whose only module state is an immutable constant: no finding.
    tasks = [
        (shard, tuple(rows[shard::n_shards])) for shard in range(n_shards)
    ]
    results, report = run_sharded(shard_worker, tasks, max_workers=n_shards)
    return results, report
