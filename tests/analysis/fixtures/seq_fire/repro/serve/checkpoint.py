"""Commit-protocol module with the seal ordered before a state write."""


class BrokenCheckpoint:
    def write_state(self, commit_index, shards):
        del commit_index, shards

    def commit(self, cursor):
        del cursor


def commit_batch(checkpoint, shards, cursor):
    # SEQ001: the cursor is sealed first; the shard writes after it can
    # be lost while the sealed cursor already points past them.
    checkpoint.commit(cursor)
    for commit_index, shard in enumerate(shards):
        checkpoint.write_state(commit_index, shard)


def commit_branchy(checkpoint, shards, cursor, *, flush):
    # SEQ001 via a branch: the else arm writes state after the seal.
    if flush:
        checkpoint.write_state(0, shards)
        checkpoint.commit(cursor)
    else:
        checkpoint.commit(cursor)
        checkpoint.write_state(0, shards)
