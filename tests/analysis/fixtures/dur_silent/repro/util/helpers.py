"""Compliant helpers: atomic inline, or no write at all."""

import json
import os


def dump_payload_atomic(path, payload):
    """Inlined write-temp-then-rename: a sanctioned atomic writer."""
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)


def format_payload(payload):
    return json.dumps(payload, sort_keys=True)
