"""Persistence-layer module whose wrapped chains are all durable."""

from repro.atomicio import atomic_write_json
from repro.util.helpers import dump_payload_atomic, format_payload


def persist_snapshot(path, payload):
    # Chain ends in an inlined temp-then-rename writer: no finding.
    dump_payload_atomic(path, payload)


def persist_manifest(path, payload):
    # Direct use of the sanctioned layer: no finding.
    atomic_write_json(path, {"payload": format_payload(payload)})
