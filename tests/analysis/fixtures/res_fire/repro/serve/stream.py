"""Serving-layer code that leaks handles on exception paths."""

import socket


def read_manifest(path):
    # RES001: fh.read() can raise, leaking the handle; close() on the
    # happy path is not exception-safe release.
    fh = open(path)
    data = fh.read()
    fh.close()
    return data


def probe_endpoint(host, port):
    # RES001: connect() can raise after the socket exists.
    sock = socket.socket()
    sock.connect((host, port))
    sock.close()
    return True
