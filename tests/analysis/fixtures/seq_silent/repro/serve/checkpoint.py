"""Commit-protocol module with the correct write-then-seal ordering."""


class GoodCheckpoint:
    def write_state(self, commit_index, shards):
        del commit_index, shards

    def commit(self, cursor):
        del cursor


def commit_batch(checkpoint, shards, cursor):
    # All shard writes strictly precede the single seal: no finding.
    for commit_index, shard in enumerate(shards):
        checkpoint.write_state(commit_index, shard)
    checkpoint.commit(cursor)


def commit_with_hook(checkpoint, shards, cursor, on_state_written=None):
    # Extra statements between write and seal are fine; so is a hook.
    checkpoint.write_state(0, shards)
    if on_state_written is not None:
        on_state_written(0)
    checkpoint.commit(cursor)


def commit_guarded(checkpoint, shards, cursor, *, dry_run):
    # The seal on one branch never precedes a write on any path.
    checkpoint.write_state(0, shards)
    if dry_run:
        return
    checkpoint.commit(cursor)
