"""Tests for repro.ml.calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, DataError, NotFittedError
from repro.ml.calibration import (
    PlattCalibrator,
    expected_calibration_error,
    reliability_curve,
)
from repro.ml.metrics import auroc


def _calibrated_sample(n: int = 2000, seed: int = 0):
    """Probabilities that are correct by construction."""
    rng = np.random.default_rng(seed)
    probs = rng.random(n)
    y = (rng.random(n) < probs).astype(int)
    return y, probs


class TestReliabilityCurve:
    def test_calibrated_sample_has_small_gaps(self):
        y, probs = _calibrated_sample()
        bins = reliability_curve(y, probs, n_bins=10)
        assert bins
        assert all(b.gap < 0.1 for b in bins)

    def test_bin_counts_sum_to_n(self):
        y, probs = _calibrated_sample(n=500)
        bins = reliability_curve(y, probs, n_bins=8)
        assert sum(b.count for b in bins) == 500

    def test_empty_bins_skipped(self):
        y = np.array([0, 1])
        probs = np.array([0.05, 0.95])
        bins = reliability_curve(y, probs, n_bins=10)
        assert len(bins) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            reliability_curve(np.array([0]), np.array([0.5]), n_bins=0)
        with pytest.raises(DataError):
            reliability_curve(np.array([0, 1]), np.array([0.5, 1.5]))
        with pytest.raises(DataError):
            reliability_curve(np.array([0, 2]), np.array([0.5, 0.5]))


class TestExpectedCalibrationError:
    def test_calibrated_sample_low_ece(self):
        y, probs = _calibrated_sample()
        assert expected_calibration_error(y, probs) < 0.05

    def test_miscalibrated_sample_high_ece(self):
        y, probs = _calibrated_sample()
        squashed = 0.5 + (probs - 0.5) * 0.1  # overconfident midpoint
        assert expected_calibration_error(y, squashed) > 0.15

    def test_perfectly_wrong(self):
        y = np.array([1, 1, 0, 0])
        probs = np.array([0.0, 0.0, 1.0, 1.0])
        assert expected_calibration_error(y, probs) == pytest.approx(1.0)


class TestPlattCalibrator:
    def test_improves_ece_of_raw_scores(self):
        rng = np.random.default_rng(1)
        n = 2000
        y = (rng.random(n) < 0.5).astype(int)
        # A ranking score in [0, 1] that is NOT a probability.
        raw = 1.0 / (1.0 + np.exp(-(y * 1.5 + rng.normal(size=n)) * 4.0))
        before = expected_calibration_error(y, raw)
        calibrated = PlattCalibrator().fit_transform(raw, y)
        after = expected_calibration_error(y, calibrated)
        assert after < before

    def test_preserves_auroc(self):
        rng = np.random.default_rng(2)
        n = 800
        y = (rng.random(n) < 0.4).astype(int)
        raw = rng.normal(size=n) + y
        raw01 = (raw - raw.min()) / (raw.max() - raw.min())
        calibrated = PlattCalibrator().fit_transform(raw01, y)
        assert auroc(y, calibrated) == pytest.approx(auroc(y, raw01), abs=1e-12)

    def test_positive_slope_for_informative_score(self):
        rng = np.random.default_rng(3)
        y = (rng.random(500) < 0.5).astype(int)
        raw = 0.3 * y + 0.1 * rng.random(500)
        calibrator = PlattCalibrator().fit(raw, y)
        assert calibrator.slope > 0

    def test_output_is_probability(self):
        y, probs = _calibrated_sample(n=300)
        out = PlattCalibrator().fit_transform(probs, y)
        assert ((out >= 0) & (out <= 1)).all()

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            PlattCalibrator().transform(np.array([0.5]))
        with pytest.raises(NotFittedError):
            PlattCalibrator().slope

    def test_2d_scores_rejected(self):
        with pytest.raises(DataError):
            PlattCalibrator().fit(np.zeros((2, 2)), np.array([0, 1]))
