"""Tests for repro.ml.metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DataError
from repro.ml.metrics import (
    auroc,
    brier_score,
    confusion_at_threshold,
    lift_at_fraction,
    precision_recall_f1,
    roc_curve,
)


class TestAuroc:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert auroc(y, s) == 1.0

    def test_perfectly_wrong(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        assert auroc(y, s) == 0.0

    def test_constant_scores_are_chance(self):
        y = np.array([0, 1, 0, 1])
        s = np.zeros(4)
        assert auroc(y, s) == pytest.approx(0.5)

    def test_ties_use_midranks(self):
        y = np.array([0, 1, 1])
        s = np.array([0.5, 0.5, 0.9])
        # pairs: (neg 0.5 vs pos 0.5) = 0.5, (neg 0.5 vs pos 0.9) = 1.
        assert auroc(y, s) == pytest.approx(0.75)

    def test_single_class_rejected(self):
        with pytest.raises(DataError, match="both classes"):
            auroc(np.array([1, 1]), np.array([0.1, 0.2]))

    def test_non_binary_rejected(self):
        with pytest.raises(DataError, match="0/1"):
            auroc(np.array([0, 2]), np.array([0.1, 0.2]))

    def test_nan_scores_rejected(self):
        with pytest.raises(DataError, match="non-finite"):
            auroc(np.array([0, 1]), np.array([np.nan, 0.2]))

    def test_matches_trapezoid_of_roc_curve(self):
        rng = np.random.default_rng(0)
        y = (rng.random(200) < 0.3).astype(int)
        s = rng.random(200) + 0.5 * y
        assert auroc(y, s) == pytest.approx(roc_curve(y, s).area(), abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_complement_symmetry(self, seed: int):
        rng = np.random.default_rng(seed)
        y = (rng.random(50) < 0.4).astype(int)
        if len(np.unique(y)) < 2:
            y[0] = 1 - y[0]
        s = rng.random(50)
        assert auroc(y, s) == pytest.approx(1.0 - auroc(y, -s))

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_invariant_to_monotone_transform(self, seed: int):
        rng = np.random.default_rng(seed)
        y = (rng.random(40) < 0.5).astype(int)
        if len(np.unique(y)) < 2:
            y[0] = 1 - y[0]
        s = rng.random(40)
        assert auroc(y, s) == pytest.approx(auroc(y, np.exp(3 * s)))


class TestRocCurve:
    def test_starts_at_origin_ends_at_one_one(self):
        y = np.array([0, 1, 0, 1])
        s = np.array([0.2, 0.8, 0.4, 0.6])
        curve = roc_curve(y, s)
        assert (curve.fpr[0], curve.tpr[0]) == (0.0, 0.0)
        assert (curve.fpr[-1], curve.tpr[-1]) == (1.0, 1.0)

    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(1)
        y = (rng.random(100) < 0.5).astype(int)
        s = rng.random(100)
        curve = roc_curve(y, s)
        assert (np.diff(curve.fpr) >= 0).all()
        assert (np.diff(curve.tpr) >= 0).all()

    def test_thresholds_descending(self):
        y = np.array([0, 1, 0, 1])
        s = np.array([0.2, 0.8, 0.4, 0.6])
        curve = roc_curve(y, s)
        assert (np.diff(curve.thresholds) < 0).all()
        assert curve.thresholds[0] == np.inf

    def test_single_class_rejected(self):
        with pytest.raises(DataError):
            roc_curve(np.array([0, 0]), np.array([0.1, 0.2]))


class TestConfusion:
    def test_counts(self):
        y = np.array([1, 1, 0, 0])
        s = np.array([0.9, 0.2, 0.8, 0.1])
        cm = confusion_at_threshold(y, s, 0.5)
        assert (cm.tp, cm.fn, cm.fp, cm.tn) == (1, 1, 1, 1)

    def test_rates(self):
        y = np.array([1, 1, 0, 0])
        s = np.array([0.9, 0.2, 0.8, 0.1])
        cm = confusion_at_threshold(y, s, 0.5)
        assert cm.tpr == 0.5
        assert cm.fpr == 0.5
        assert cm.accuracy == 0.5
        assert cm.n == 4

    def test_threshold_inclusive(self):
        y = np.array([1, 0])
        s = np.array([0.5, 0.4])
        cm = confusion_at_threshold(y, s, 0.5)
        assert cm.tp == 1


class TestPrecisionRecall:
    def test_values(self):
        y = np.array([1, 1, 0, 0])
        s = np.array([0.9, 0.8, 0.7, 0.1])
        precision, recall, f1 = precision_recall_f1(y, s, 0.75)
        assert precision == 1.0
        assert recall == 1.0
        assert f1 == 1.0

    def test_undefined_returns_zero(self):
        y = np.array([1, 0])
        s = np.array([0.1, 0.1])
        precision, recall, f1 = precision_recall_f1(y, s, 0.5)
        assert (precision, recall, f1) == (0.0, 0.0, 0.0)


class TestLift:
    def test_perfect_targeting(self):
        y = np.array([1, 1, 0, 0, 0, 0, 0, 0])
        s = np.array([0.9, 0.8, 0.3, 0.2, 0.1, 0.1, 0.1, 0.1])
        # Top 25% = 2 customers, both churners; base rate = 0.25.
        assert lift_at_fraction(y, s, 0.25) == pytest.approx(4.0)

    def test_full_fraction_is_unit_lift(self):
        y = np.array([1, 0, 1, 0])
        s = np.array([0.4, 0.3, 0.2, 0.1])
        assert lift_at_fraction(y, s, 1.0) == pytest.approx(1.0)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(DataError, match="fraction"):
            lift_at_fraction(np.array([0, 1]), np.array([0.1, 0.2]), 0.0)

    def test_no_positives_rejected(self):
        with pytest.raises(DataError, match="no positive"):
            lift_at_fraction(np.array([0, 0]), np.array([0.1, 0.2]), 0.5)


class TestBrier:
    def test_perfect(self):
        assert brier_score(np.array([0, 1]), np.array([0.0, 1.0])) == 0.0

    def test_uniform(self):
        assert brier_score(np.array([0, 1]), np.array([0.5, 0.5])) == pytest.approx(0.25)

    def test_out_of_range_rejected(self):
        with pytest.raises(DataError, match="probabilities"):
            brier_score(np.array([0, 1]), np.array([0.5, 1.5]))
