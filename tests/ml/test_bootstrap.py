"""Tests for repro.ml.bootstrap (AUROC confidence intervals)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, DataError
from repro.ml.bootstrap import bootstrap_auroc_ci


def _sample(n: int = 200, signal: float = 1.0, seed: int = 0):
    rng = np.random.default_rng(seed)
    y = (rng.random(n) < 0.5).astype(int)
    scores = rng.normal(size=n) + signal * y
    return y, scores


class TestBootstrapAurocCi:
    def test_interval_contains_point(self):
        y, s = _sample()
        ci = bootstrap_auroc_ci(y, s, n_resamples=200)
        assert ci.low <= ci.point <= ci.high

    def test_interval_within_unit_range(self):
        y, s = _sample()
        ci = bootstrap_auroc_ci(y, s, n_resamples=200)
        assert 0.0 <= ci.low <= ci.high <= 1.0

    def test_stronger_signal_tighter_and_higher(self):
        y_weak, s_weak = _sample(signal=0.3)
        y_strong, s_strong = _sample(signal=3.0)
        weak = bootstrap_auroc_ci(y_weak, s_weak, n_resamples=200)
        strong = bootstrap_auroc_ci(y_strong, s_strong, n_resamples=200)
        assert strong.point > weak.point
        assert strong.low > weak.low

    def test_more_data_narrower_interval(self):
        y_small, s_small = _sample(n=60)
        y_big, s_big = _sample(n=600)
        small = bootstrap_auroc_ci(y_small, s_small, n_resamples=300)
        big = bootstrap_auroc_ci(y_big, s_big, n_resamples=300)
        assert big.width < small.width

    def test_deterministic_with_seed(self):
        y, s = _sample()
        a = bootstrap_auroc_ci(y, s, n_resamples=100, seed=5)
        b = bootstrap_auroc_ci(y, s, n_resamples=100, seed=5)
        assert (a.low, a.high) == (b.low, b.high)

    def test_confidence_widens_interval(self):
        y, s = _sample()
        narrow = bootstrap_auroc_ci(y, s, confidence=0.5, n_resamples=400)
        wide = bootstrap_auroc_ci(y, s, confidence=0.99, n_resamples=400)
        assert wide.width > narrow.width

    def test_invalid_confidence(self):
        y, s = _sample()
        with pytest.raises(ConfigError):
            bootstrap_auroc_ci(y, s, confidence=1.0)

    def test_too_few_resamples(self):
        y, s = _sample()
        with pytest.raises(ConfigError):
            bootstrap_auroc_ci(y, s, n_resamples=5)

    def test_single_class_rejected(self):
        with pytest.raises(DataError):
            bootstrap_auroc_ci(np.ones(10, dtype=int), np.zeros(10))

    def test_str_format(self):
        y, s = _sample()
        ci = bootstrap_auroc_ci(y, s, n_resamples=100)
        text = str(ci)
        assert "[" in text and "@95%" in text
