"""Tests for repro.ml.preprocess."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DataError, NotFittedError
from repro.ml.preprocess import StandardScaler, impute_finite


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_centred_not_scaled(self):
        X = np.array([[1.0, 5.0], [2.0, 5.0]])
        scaled = StandardScaler().fit_transform(X)
        assert not np.isnan(scaled).any()
        np.testing.assert_allclose(scaled[:, 1], 0.0)

    def test_transform_uses_fit_statistics(self):
        scaler = StandardScaler().fit(np.array([[0.0], [2.0]]))
        out = scaler.transform(np.array([[4.0]]))
        assert out[0, 0] == pytest.approx(3.0)  # (4 - 1) / 1

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-12
        )

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((1, 1)))

    def test_inverse_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().inverse_transform(np.zeros((1, 1)))

    def test_width_mismatch_rejected(self):
        scaler = StandardScaler().fit(np.zeros((2, 2)))
        with pytest.raises(DataError):
            scaler.transform(np.zeros((2, 3)))

    def test_empty_matrix_rejected(self):
        with pytest.raises(DataError, match="empty"):
            StandardScaler().fit(np.empty((0, 2)))

    def test_1d_rejected(self):
        with pytest.raises(DataError, match="2-D"):
            StandardScaler().fit(np.zeros(3))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_idempotent_on_standardised_data(self, seed: int):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(40, 2))
        once = StandardScaler().fit_transform(X)
        twice = StandardScaler().fit_transform(once)
        np.testing.assert_allclose(once, twice, atol=1e-10)


class TestImputeFinite:
    def test_nan_replaced_by_column_mean(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0], [np.nan, 6.0]])
        out = impute_finite(X)
        assert out[2, 0] == pytest.approx(2.0)
        assert out[0, 1] == pytest.approx(5.0)

    def test_inf_replaced(self):
        X = np.array([[np.inf], [2.0]])
        assert impute_finite(X)[0, 0] == pytest.approx(2.0)

    def test_explicit_fill(self):
        X = np.array([[np.nan], [2.0]])
        assert impute_finite(X, fill=-1.0)[0, 0] == -1.0

    def test_all_nan_column_fills_zero(self):
        X = np.array([[np.nan], [np.nan]])
        np.testing.assert_allclose(impute_finite(X), 0.0)

    def test_original_not_mutated(self):
        X = np.array([[np.nan], [2.0]])
        impute_finite(X)
        assert np.isnan(X[0, 0])

    def test_1d_rejected(self):
        with pytest.raises(DataError, match="2-D"):
            impute_finite(np.zeros(3))
