"""Tests for repro.ml.logistic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, DataError, NotFittedError
from repro.ml.logistic import LogisticRegression, log_loss, sigmoid


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetry(self):
        z = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(z) + sigmoid(-z), 1.0, atol=1e-12)

    def test_extreme_values_do_not_overflow(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert np.isfinite(out).all()

    @given(st.floats(min_value=-50, max_value=50))
    def test_range(self, z: float):
        value = sigmoid(np.array([z]))[0]
        assert 0.0 <= value <= 1.0


class TestLogLoss:
    def test_perfect_prediction_is_small(self):
        y = np.array([0, 1])
        assert log_loss(y, np.array([0.0, 1.0])) < 1e-10

    def test_uniform_prediction(self):
        y = np.array([0, 1])
        assert log_loss(y, np.array([0.5, 0.5])) == pytest.approx(np.log(2))

    def test_clipping_avoids_infinity(self):
        assert np.isfinite(log_loss(np.array([1]), np.array([0.0])))


class TestFit:
    def test_separable_1d(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        model = LogisticRegression(l2=1e-3).fit(X, y)
        probs = model.predict_proba(X)
        assert probs[0] < 0.5 < probs[3]
        assert model.converged_

    def test_coefficient_sign(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 1))
        y = (X[:, 0] > 0).astype(int)
        model = LogisticRegression().fit(X, y)
        assert model.coef_[0] > 0

    def test_intercept_matches_base_rate(self):
        # With no signal, the intercept should encode the positive rate.
        rng = np.random.default_rng(1)
        X = rng.normal(size=(500, 2))
        y = np.array([1] * 400 + [0] * 100)
        model = LogisticRegression(l2=1e-6).fit(X, y)
        predicted_rate = sigmoid(np.array([model.intercept_]))[0]
        assert predicted_rate == pytest.approx(0.8, abs=0.05)

    def test_matches_closed_form_on_balanced_data(self):
        # For symmetric data the decision boundary must sit at the midpoint.
        X = np.array([[-1.0], [1.0]] * 50)
        y = np.array([0, 1] * 50)
        model = LogisticRegression(l2=1e-4).fit(X, y)
        assert model.predict_proba(np.array([[0.0]]))[0] == pytest.approx(0.5, abs=1e-6)

    def test_l2_shrinks_coefficients(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        weak = LogisticRegression(l2=1e-4).fit(X, y)
        strong = LogisticRegression(l2=10.0).fit(X, y)
        assert abs(strong.coef_[0]) < abs(weak.coef_[0])

    def test_constant_labels_all_positive(self):
        X = np.array([[0.0], [1.0]])
        model = LogisticRegression().fit(X, np.array([1, 1]))
        assert (model.predict_proba(X) > 0.5).all()

    def test_singular_hessian_falls_back_to_gradient(self):
        # A constant-zero feature with no regularisation makes the Newton
        # system singular; the gradient fallback must still converge on
        # the informative feature.
        X = np.array([[0.0, 0.0], [0.0, 1.0], [0.0, 2.0], [0.0, 3.0]])
        y = np.array([0, 0, 1, 1])
        model = LogisticRegression(l2=0.0, max_iter=300).fit(X, y)
        probs = model.predict_proba(X)
        assert probs[0] < 0.5 < probs[3]

    def test_multifeature_recovers_relevant_feature(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(400, 3))
        logits = 2.0 * X[:, 1]
        y = (rng.random(400) < sigmoid(logits)).astype(int)
        model = LogisticRegression(l2=1e-3).fit(X, y)
        assert abs(model.coef_[1]) > abs(model.coef_[0])
        assert abs(model.coef_[1]) > abs(model.coef_[2])


class TestValidation:
    def test_negative_l2_rejected(self):
        with pytest.raises(ConfigError):
            LogisticRegression(l2=-1.0)

    def test_bad_max_iter_rejected(self):
        with pytest.raises(ConfigError):
            LogisticRegression(max_iter=0)

    def test_non_binary_labels_rejected(self):
        with pytest.raises(DataError, match="0/1"):
            LogisticRegression().fit(np.zeros((2, 1)), np.array([0, 2]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            LogisticRegression().fit(np.zeros((3, 1)), np.array([0, 1]))

    def test_1d_X_rejected(self):
        with pytest.raises(DataError, match="2-D"):
            LogisticRegression().fit(np.zeros(3), np.array([0, 1, 0]))

    def test_nan_features_rejected(self):
        X = np.array([[np.nan], [1.0]])
        with pytest.raises(DataError, match="non-finite"):
            LogisticRegression().fit(X, np.array([0, 1]))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict_proba(np.zeros((1, 1)))

    def test_predict_wrong_width_rejected(self):
        model = LogisticRegression().fit(np.zeros((4, 2)), np.array([0, 1, 0, 1]))
        with pytest.raises(DataError):
            model.predict_proba(np.zeros((1, 3)))


class TestPredict:
    def test_hard_predictions_binary(self):
        X = np.array([[0.0], [3.0]])
        model = LogisticRegression().fit(
            np.array([[0.0], [1.0], [2.0], [3.0]]), np.array([0, 0, 1, 1])
        )
        predictions = model.predict(X)
        assert set(predictions.tolist()) <= {0, 1}

    def test_threshold_shifts_predictions(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        model = LogisticRegression().fit(X, y)
        lenient = model.predict(X, threshold=0.1).sum()
        strict = model.predict(X, threshold=0.9).sum()
        assert lenient >= strict

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_probabilities_in_unit_interval(self, seed: int):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 2))
        y = (rng.random(30) < 0.5).astype(int)
        if len(np.unique(y)) < 2:
            y[0] = 1 - y[0]
        probs = LogisticRegression().fit(X, y).predict_proba(X)
        assert ((probs >= 0) & (probs <= 1)).all()
