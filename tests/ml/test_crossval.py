"""Tests for repro.ml.crossval."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, DataError
from repro.ml.crossval import GridSearchResult, KFold, StratifiedKFold, grid_search


class TestKFold:
    def test_partitions_all_indices(self):
        folds = list(KFold(n_splits=4, seed=0).split(21))
        assert len(folds) == 4
        covered = np.concatenate([test for __, test in folds])
        assert sorted(covered.tolist()) == list(range(21))

    def test_train_test_disjoint(self):
        for train, test in KFold(n_splits=3).split(10):
            assert not set(train.tolist()) & set(test.tolist())
            assert sorted(set(train.tolist()) | set(test.tolist())) == list(range(10))

    def test_deterministic_with_seed(self):
        a = [t.tolist() for __, t in KFold(n_splits=3, seed=42).split(12)]
        b = [t.tolist() for __, t in KFold(n_splits=3, seed=42).split(12)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [t.tolist() for __, t in KFold(n_splits=3, seed=1).split(30)]
        b = [t.tolist() for __, t in KFold(n_splits=3, seed=2).split(30)]
        assert a != b

    def test_no_shuffle_is_contiguous(self):
        folds = list(KFold(n_splits=2, shuffle=False).split(4))
        assert folds[0][1].tolist() == [0, 1]

    def test_too_few_samples_rejected(self):
        with pytest.raises(DataError):
            list(KFold(n_splits=5).split(3))

    def test_bad_n_splits_rejected(self):
        with pytest.raises(ConfigError):
            KFold(n_splits=1)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=6, max_value=50),
        k=st.integers(min_value=2, max_value=5),
    )
    def test_fold_sizes_balanced(self, n: int, k: int):
        sizes = [len(test) for __, test in KFold(n_splits=k).split(n)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == n


class TestStratifiedKFold:
    def test_class_ratio_preserved(self):
        labels = np.array([0] * 40 + [1] * 10)
        for __, test in StratifiedKFold(n_splits=5, seed=0).split(labels):
            test_labels = labels[test]
            assert (test_labels == 1).sum() == 2
            assert (test_labels == 0).sum() == 8

    def test_partitions_all_indices(self):
        labels = np.array([0, 1] * 10)
        covered = np.concatenate(
            [t for __, t in StratifiedKFold(n_splits=4).split(labels)]
        )
        assert sorted(covered.tolist()) == list(range(20))

    def test_small_class_rejected(self):
        labels = np.array([0] * 10 + [1])
        with pytest.raises(DataError, match="fewer than"):
            list(StratifiedKFold(n_splits=5).split(labels))

    def test_2d_labels_rejected(self):
        with pytest.raises(DataError, match="1-D"):
            list(StratifiedKFold().split(np.zeros((4, 2))))

    def test_every_fold_has_both_classes(self):
        labels = np.array([0] * 15 + [1] * 5)
        for train, test in StratifiedKFold(n_splits=5, seed=3).split(labels):
            assert set(labels[test]) == {0, 1}
            assert set(labels[train]) == {0, 1}


class TestGridSearch:
    @staticmethod
    def _folds(n: int = 10, k: int = 2):
        return list(KFold(n_splits=k, seed=0).split(n))

    def test_best_params_maximise_score(self):
        result = grid_search(
            {"x": [1, 2, 3]},
            lambda params, train, test: -abs(params["x"] - 2),
            self._folds(),
        )
        assert result.best_params == {"x": 2}
        assert result.best_score == 0.0
        assert len(result.table) == 3

    def test_cartesian_product(self):
        result = grid_search(
            {"a": [1, 2], "b": [10, 20, 30]},
            lambda params, train, test: params["a"] * params["b"],
            self._folds(),
        )
        assert len(result.table) == 6
        assert result.best_params == {"a": 2, "b": 30}

    def test_fold_scores_recorded(self):
        result = grid_search(
            {"x": [5]},
            lambda params, train, test: float(len(test)),
            self._folds(10, 2),
        )
        __, mean, fold_scores = result.table[0]
        assert fold_scores == [5.0, 5.0]
        assert mean == 5.0

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigError):
            grid_search({}, lambda p, a, b: 0.0, self._folds())

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigError):
            grid_search({"x": []}, lambda p, a, b: 0.0, self._folds())

    def test_no_folds_rejected(self):
        with pytest.raises(ConfigError, match="fold"):
            grid_search({"x": [1]}, lambda p, a, b: 0.0, [])

    def test_result_type(self):
        result = grid_search(
            {"x": [1]}, lambda p, a, b: 1.0, self._folds()
        )
        assert isinstance(result, GridSearchResult)
