"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

ARGS = ["--loyal", "8", "--churners", "8", "--seed", "2"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["figure2"])
        assert args.loyal == 150
        assert args.seed == 7


class TestCommands:
    def test_stats(self, capsys):
        assert main([*ARGS, "stats"]) == 0
        out = capsys.readouterr().out
        assert "customers" in out
        assert "6,000,000" in out

    def test_figure1(self, capsys):
        assert main([*ARGS, "figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "stability AUROC" in out

    def test_figure1_checkpointed_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(
            [*ARGS, "figure1", "--retries", "1",
             "--checkpoint-dir", str(ckpt)]
        ) == 0
        first = capsys.readouterr().out
        cells = list(ckpt.glob("*.json"))
        assert cells
        # Rerun against the same journal: every cell loads, same output.
        assert main(
            [*ARGS, "figure1", "--retries", "1",
             "--checkpoint-dir", str(ckpt)]
        ) == 0
        assert capsys.readouterr().out == first

    def test_figure2(self, capsys):
        assert main([*ARGS, "figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Coffee" in out

    def test_tune(self, capsys):
        assert main([*ARGS, "tune", "--folds", "2"]) == 0
        out = capsys.readouterr().out
        assert "selected:" in out
        assert "paper selected window=2, alpha=2" in out

    def test_generate(self, tmp_path, capsys):
        out_dir = tmp_path / "dataset"
        assert main([*ARGS, "generate", "--out", str(out_dir)]) == 0
        assert (out_dir / "transactions.csv").exists()
        assert (out_dir / "cohorts.json").exists()
        assert (out_dir / "catalog.jsonl").exists()
        assert "wrote" in capsys.readouterr().out

    def test_explain_known_customer(self, capsys):
        assert main([*ARGS, "explain", "--customer", "12", "--window", "10"]) == 0
        out = capsys.readouterr().out
        assert "customer 12" in out
        assert "stability=" in out

    def test_explain_unknown_customer(self, capsys):
        assert main([*ARGS, "explain", "--customer", "999", "--window", "5"]) == 1
        assert "not in the dataset" in capsys.readouterr().err

    def test_delay(self, capsys):
        assert main([*ARGS, "delay", "--far", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "calibrated beta" in out
        assert "median delay" in out

    def test_compare(self, capsys):
        assert main([*ARGS, "compare", "--months", "20", "24"]) == 0
        out = capsys.readouterr().out
        assert "stability" in out
        assert "sequence" in out
        assert "lift@10%" in out

    def test_losses(self, capsys):
        assert main([*ARGS, "losses", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "loss events across" in out
        assert "abrupt" in out

    def test_report(self, capsys):
        assert main([*ARGS, "report", "--customer", "12"]) == 0
        out = capsys.readouterr().out
        assert "customer 12" in out
        assert "stability trajectory" in out

    def test_report_unknown_customer(self, capsys):
        assert main([*ARGS, "report", "--customer", "999"]) == 1
        assert "not in the dataset" in capsys.readouterr().err

    def test_quality_generated(self, capsys):
        assert main([*ARGS, "quality"]) == 0
        out = capsys.readouterr().out
        assert "verdict:" in out

    def test_quality_from_csv(self, tmp_path, capsys):
        out_dir = tmp_path / "ds"
        main([*ARGS, "generate", "--out", str(out_dir)])
        capsys.readouterr()
        assert main([*ARGS, "quality", "--log", str(out_dir / "transactions.csv")]) == 0
        assert "customers:" in capsys.readouterr().out

    def test_quality_lenient_quarantines_bad_rows(self, tmp_path, capsys):
        out_dir = tmp_path / "ds"
        main([*ARGS, "generate", "--out", str(out_dir)])
        capsys.readouterr()
        csv_path = out_dir / "transactions.csv"
        lines = csv_path.read_text().splitlines()
        lines.insert(2, "not,a,valid,row")
        csv_path.write_text("\n".join(lines) + "\n")
        assert main(
            [*ARGS, "quality", "--log", str(csv_path), "--lenient"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 quarantined" in out
        assert "verdict:" in out

    def test_export_csv(self, tmp_path, capsys):
        out = tmp_path / "figure1.csv"
        assert main([*ARGS, "export", "--out", str(out)]) == 0
        content = out.read_text()
        assert content.startswith("month,stability_auroc,rfm_auroc")

    def test_export_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "figure1.json"
        assert main([*ARGS, "export", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["metadata"]["onset_month"] == 18
        assert len(payload["month"]) == 7

    def test_bench(self, tmp_path, capsys):
        import json

        out = tmp_path / "telemetry.json"
        assert main(
            [
                *ARGS,
                "bench",
                "--sizes", "4",
                "--repeat", "1",
                "--resilience-size", "8",
                "--json", str(out),
            ]
        ) == 0
        stdout = capsys.readouterr().out
        assert "speedup" in stdout
        assert "resilient executor" in stdout
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "stability_fit_scaling"
        assert payload["results"][0]["customers"] == 8
        assert payload["results"][0]["speedup_batch_vs_incremental"] > 0
        resilience = payload["resilient_executor"]
        assert resilience["scenario"] == "resilient_executor_overhead"
        assert resilience["bare_seconds"] > 0
        assert resilience["resilient_seconds"] > 0

    def test_bench_single_backend(self, capsys):
        assert main([*ARGS, "bench", "--backend", "batch", "--sizes", "4",
                     "--repeat", "1"]) == 0
        out = capsys.readouterr().out
        assert "batch s" in out
        assert "incremental s" not in out

    def test_bench_telemetry_overhead_section(self, tmp_path, capsys):
        import json

        out = tmp_path / "telemetry.json"
        assert main(
            [*ARGS, "bench", "--backend", "batch", "--sizes", "4",
             "--repeat", "1", "--telemetry-size", "8", "--json", str(out)]
        ) == 0
        assert "% overhead" in capsys.readouterr().out
        overhead = json.loads(out.read_text())["telemetry_overhead"]
        assert overhead["scenario"] == "telemetry_overhead"
        assert overhead["spans_per_sweep"] > 0
        assert overhead["disabled_seconds"] > 0
        assert overhead["recording_seconds"] > 0

    def test_generated_dataset_round_trips(self, tmp_path):
        from repro.data.io import read_cohorts_json, read_log_csv

        out_dir = tmp_path / "dataset"
        main([*ARGS, "generate", "--out", str(out_dir)])
        log = read_log_csv(out_dir / "transactions.csv")
        cohorts = read_cohorts_json(out_dir / "cohorts.json")
        assert log.n_customers == 16
        assert cohorts.n_loyal == 8


class TestTelemetry:
    def test_trace_and_metrics_outputs(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(
            ["--trace-out", str(trace), "--metrics-out", str(metrics),
             *ARGS, "figure1"]
        ) == 0
        captured = capsys.readouterr()
        assert f"wrote trace to {trace}" in captured.err
        assert f"wrote metrics to {metrics}" in captured.err

        from repro.obs import read_trace_jsonl

        names = {r.name for r in read_trace_jsonl(trace)}
        assert "engine.fit" in names
        assert "eval.cell" in names

        import json

        payload = json.loads(metrics.read_text())
        assert payload["schema"] == "repro-metrics"
        assert payload["counters"]["sweep.cells_computed"] > 0

    def test_telemetry_does_not_change_output(self, tmp_path, capsys):
        assert main([*ARGS, "figure1"]) == 0
        plain = capsys.readouterr().out
        assert main(
            ["--trace-out", str(tmp_path / "t.jsonl"), *ARGS, "figure1"]
        ) == 0
        assert capsys.readouterr().out == plain

    def test_obs_summarize(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        main(["--trace-out", str(trace), *ARGS, "figure1"])
        capsys.readouterr()
        assert main([*ARGS, "obs", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "span(s)" in out
        assert "engine.fit" in out
        assert "p95 s" in out

    def test_obs_summarize_corrupt_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{torn json\n")
        assert main([*ARGS, "obs", "summarize", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("obs summarize: cannot read trace:")
        assert err.count("\n") == 1  # one-line diagnostic

    def test_obs_summarize_missing_trace(self, tmp_path, capsys):
        assert main([*ARGS, "obs", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("obs summarize: cannot read trace:")
        assert err.count("\n") == 1  # one-line diagnostic

    def test_obs_tail_renders_one_frame(self, tmp_path, capsys):
        stream = tmp_path / "metrics-stream.jsonl"
        stream.write_text(
            json.dumps(
                {
                    "schema": "repro-metrics-window",
                    "version": 1,
                    "ts": 1.0,
                    "window_s": 60.0,
                    "span_s": 5.0,
                    "samples": 1,
                    "rates": {"serve.ingested": 10.0},
                    "windows": {},
                    "gauges": {"serve.lag_days": 2.0},
                    "counters": {"serve.ingested": 50},
                }
            )
            + "\n"
        )
        assert main([*ARGS, "obs", "tail", str(stream)]) == 0
        captured = capsys.readouterr()
        assert "repro live telemetry" in captured.out
        assert "serve.lag_days" in captured.out
        assert "rendered 1 frame(s)" in captured.err

    def test_obs_tail_missing_stream_exits_2(self, tmp_path, capsys):
        assert main([*ARGS, "obs", "tail", str(tmp_path / "nope.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("obs tail: cannot read stream:")
        assert err.count("\n") == 1

    def test_obs_tail_corrupt_stream_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{torn\n" + '{"schema": "repro-metrics-window"}\n')
        assert main([*ARGS, "obs", "tail", str(bad)]) == 2
        assert "cannot read stream" in capsys.readouterr().err

    def test_checkpointed_run_writes_a_manifest(self, tmp_path, capsys):
        from repro.obs import read_manifest

        ckpt = tmp_path / "ckpt"
        assert main(
            ["--trace-out", str(tmp_path / "t.jsonl"),
             *ARGS, "figure1", "--checkpoint-dir", str(ckpt)]
        ) == 0
        assert "wrote run manifest" in capsys.readouterr().out
        manifest = read_manifest(ckpt)
        assert manifest.experiment == "figure1"
        assert manifest.seed == 2
        assert manifest.config["window_months"] == 2
        assert manifest.dataset_fingerprint
        assert manifest.spans  # tracing was on, so the rollup is embedded

    def test_verbose_surfaces_progress_heartbeats(self, tmp_path, capsys):
        assert main(["-v", *ARGS, "figure1"]) == 0
        err = capsys.readouterr().err
        assert "eval stability" in err
        assert "cells" in err

    def test_logging_reconfiguration_is_idempotent(self, capsys):
        import logging

        from repro.cli import _LOG_HANDLER_FLAG

        root = logging.getLogger("repro")
        try:
            main(["-v", *ARGS, "stats"])
            main(["-v", *ARGS, "stats"])
            tagged = [
                h for h in root.handlers
                if getattr(h, _LOG_HANDLER_FLAG, False)
            ]
            assert len(tagged) == 1
            # Dropping -v removes the handler again.
            main([*ARGS, "stats"])
            assert not any(
                getattr(h, _LOG_HANDLER_FLAG, False) for h in root.handlers
            )
        finally:
            for handler in list(root.handlers):
                if getattr(handler, _LOG_HANDLER_FLAG, False):
                    root.removeHandler(handler)
            root.setLevel(logging.NOTSET)
            capsys.readouterr()


class TestRecordAndServe:
    """The ``record`` and ``serve`` subcommands (repro.serve layer)."""

    STREAM_ARGS = [
        "--loyal", "8", "--churners", "8", "--seed", "2",
    ]
    RECORD = ["record", "--months", "10", "--onset-month", "6"]

    @pytest.fixture()
    def stream_file(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        assert main([*self.STREAM_ARGS, *self.RECORD, "--out", str(path)]) == 0
        return path

    def test_record_reports_fingerprint(self, tmp_path, capsys):
        path = tmp_path / "stream.jsonl"
        assert main([*self.STREAM_ARGS, *self.RECORD, "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "recorded" in out
        assert "fingerprint" in out
        assert path.exists()

    def test_serve_help_mentions_key_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in (
            "--checkpoint-dir", "--batch-size", "--n-shards",
            "--status-port", "--no-api", "--parity-check",
        ):
            assert flag in out

    def test_serve_with_parity_check(self, stream_file, tmp_path, capsys):
        assert main(
            ["serve", str(stream_file),
             "--checkpoint-dir", str(tmp_path / "ckpt"),
             "--batch-size", "120", "--n-shards", "2",
             "--no-api", "--parity-check"]
        ) == 0
        out = capsys.readouterr().out
        assert "parity OK" in out
        assert "checkpointed" in out
        assert "score fingerprint" in out

    def test_serve_interrupted_exits_3_then_resumes(
        self, stream_file, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        base = ["serve", str(stream_file), "--checkpoint-dir", str(ckpt),
                "--batch-size", "120", "--no-api"]
        assert main([*base, "--max-batches", "2"]) == 3
        captured = capsys.readouterr()
        assert "rerun with the same --checkpoint-dir" in captured.err
        assert main([*base, "--parity-check"]) == 0
        assert "[resumed]" in capsys.readouterr().out

    def test_serve_missing_stream(self, tmp_path, capsys):
        assert main(
            ["serve", str(tmp_path / "nope.jsonl"),
             "--checkpoint-dir", str(tmp_path / "ckpt"), "--no-api"]
        ) == 1
        assert "not found" in capsys.readouterr().err

    def test_serve_status_api_binds_ephemeral_port(
        self, stream_file, tmp_path, capsys
    ):
        assert main(
            ["serve", str(stream_file),
             "--checkpoint-dir", str(tmp_path / "ckpt"),
             "--batch-size", "120"]
        ) == 0
        assert "status API on http://127.0.0.1:" in capsys.readouterr().err

    def test_serve_requires_checkpoint_dir(self, stream_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", str(stream_file)])
        assert excinfo.value.code == 2


class TestSoak:
    """The ``soak`` subcommand (repro.soak chaos harness)."""

    STREAM_ARGS = ["--loyal", "8", "--churners", "8", "--seed", "2"]
    RECORD = ["record", "--months", "10", "--onset-month", "6"]

    @pytest.fixture()
    def stream_file(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        assert main([*self.STREAM_ARGS, *self.RECORD, "--out", str(path)]) == 0
        return path

    def test_soak_help_mentions_key_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["soak", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in (
            "--chaos", "--duration", "--rate", "--slo-p99-ms",
            "--workdir", "--bench-out", "--min-throughput",
        ):
            assert flag in out

    def test_fault_free_soak_passes_and_writes_bench(
        self, stream_file, tmp_path, capsys
    ):
        bench = tmp_path / "BENCH_serve.json"
        assert main(
            ["soak", str(stream_file), "--workdir", str(tmp_path / "run"),
             "--batch-size", "120", "--n-shards", "1",
             "--slo-p99-ms", "60000", "--bench-out", str(bench)]
        ) == 0
        captured = capsys.readouterr()
        assert "soak: PASSED" in captured.out
        assert "parity vs offline sweep: ok" in captured.out
        payload = json.loads(bench.read_text())
        assert payload["soak"]["passed"] is True
        assert payload["soak"]["slo"]["p99"]["ok"] is True

    def test_chaos_smoke_injects_every_site(
        self, stream_file, tmp_path, capsys
    ):
        bench = tmp_path / "BENCH_serve.json"
        assert main(
            ["soak", str(stream_file), "--workdir", str(tmp_path / "run"),
             "--chaos", "smoke", "--batch-size", "120",
             "--n-shards", "2", "--parallel", "--slow-seconds", "0.3",
             "--slo-p99-ms", "120000", "--bench-out", str(bench)]
        ) == 0
        out = capsys.readouterr().out
        for site in (
            "tear_cursor", "worker_crash", "slow_shard",
            "kill_resume", "ckpt_io", "tear_state",
        ):
            assert site in out
        payload = json.loads(bench.read_text())
        assert payload["soak"]["faults_injected"] == 6

    def test_chaos_smoke_without_parallel_is_config_error(
        self, stream_file, tmp_path, capsys
    ):
        assert main(
            ["soak", str(stream_file), "--workdir", str(tmp_path / "run"),
             "--chaos", "smoke", "--batch-size", "120"]
        ) == 2
        assert "configuration error" in capsys.readouterr().err

    def test_slo_violation_exits_1(self, stream_file, tmp_path, capsys):
        assert main(
            ["soak", str(stream_file), "--workdir", str(tmp_path / "run"),
             "--batch-size", "120", "--slo-p99-ms", "0.000001"]
        ) == 1
        out = capsys.readouterr().out
        assert "soak: FAILED" in out
        assert "SLO" in out

    def test_soak_missing_stream(self, tmp_path, capsys):
        assert main(
            ["soak", str(tmp_path / "nope.jsonl"),
             "--workdir", str(tmp_path / "run")]
        ) == 1
        assert "not found" in capsys.readouterr().err
