"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

ARGS = ["--loyal", "8", "--churners", "8", "--seed", "2"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["figure2"])
        assert args.loyal == 150
        assert args.seed == 7


class TestCommands:
    def test_stats(self, capsys):
        assert main([*ARGS, "stats"]) == 0
        out = capsys.readouterr().out
        assert "customers" in out
        assert "6,000,000" in out

    def test_figure1(self, capsys):
        assert main([*ARGS, "figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "stability AUROC" in out

    def test_figure1_checkpointed_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(
            [*ARGS, "figure1", "--retries", "1",
             "--checkpoint-dir", str(ckpt)]
        ) == 0
        first = capsys.readouterr().out
        cells = list(ckpt.glob("*.json"))
        assert cells
        # Rerun against the same journal: every cell loads, same output.
        assert main(
            [*ARGS, "figure1", "--retries", "1",
             "--checkpoint-dir", str(ckpt)]
        ) == 0
        assert capsys.readouterr().out == first

    def test_figure2(self, capsys):
        assert main([*ARGS, "figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Coffee" in out

    def test_tune(self, capsys):
        assert main([*ARGS, "tune", "--folds", "2"]) == 0
        out = capsys.readouterr().out
        assert "selected:" in out
        assert "paper selected window=2, alpha=2" in out

    def test_generate(self, tmp_path, capsys):
        out_dir = tmp_path / "dataset"
        assert main([*ARGS, "generate", "--out", str(out_dir)]) == 0
        assert (out_dir / "transactions.csv").exists()
        assert (out_dir / "cohorts.json").exists()
        assert (out_dir / "catalog.jsonl").exists()
        assert "wrote" in capsys.readouterr().out

    def test_explain_known_customer(self, capsys):
        assert main([*ARGS, "explain", "--customer", "12", "--window", "10"]) == 0
        out = capsys.readouterr().out
        assert "customer 12" in out
        assert "stability=" in out

    def test_explain_unknown_customer(self, capsys):
        assert main([*ARGS, "explain", "--customer", "999", "--window", "5"]) == 1
        assert "not in the dataset" in capsys.readouterr().err

    def test_delay(self, capsys):
        assert main([*ARGS, "delay", "--far", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "calibrated beta" in out
        assert "median delay" in out

    def test_compare(self, capsys):
        assert main([*ARGS, "compare", "--months", "20", "24"]) == 0
        out = capsys.readouterr().out
        assert "stability" in out
        assert "sequence" in out
        assert "lift@10%" in out

    def test_losses(self, capsys):
        assert main([*ARGS, "losses", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "loss events across" in out
        assert "abrupt" in out

    def test_report(self, capsys):
        assert main([*ARGS, "report", "--customer", "12"]) == 0
        out = capsys.readouterr().out
        assert "customer 12" in out
        assert "stability trajectory" in out

    def test_report_unknown_customer(self, capsys):
        assert main([*ARGS, "report", "--customer", "999"]) == 1
        assert "not in the dataset" in capsys.readouterr().err

    def test_quality_generated(self, capsys):
        assert main([*ARGS, "quality"]) == 0
        out = capsys.readouterr().out
        assert "verdict:" in out

    def test_quality_from_csv(self, tmp_path, capsys):
        out_dir = tmp_path / "ds"
        main([*ARGS, "generate", "--out", str(out_dir)])
        capsys.readouterr()
        assert main([*ARGS, "quality", "--log", str(out_dir / "transactions.csv")]) == 0
        assert "customers:" in capsys.readouterr().out

    def test_quality_lenient_quarantines_bad_rows(self, tmp_path, capsys):
        out_dir = tmp_path / "ds"
        main([*ARGS, "generate", "--out", str(out_dir)])
        capsys.readouterr()
        csv_path = out_dir / "transactions.csv"
        lines = csv_path.read_text().splitlines()
        lines.insert(2, "not,a,valid,row")
        csv_path.write_text("\n".join(lines) + "\n")
        assert main(
            [*ARGS, "quality", "--log", str(csv_path), "--lenient"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 quarantined" in out
        assert "verdict:" in out

    def test_export_csv(self, tmp_path, capsys):
        out = tmp_path / "figure1.csv"
        assert main([*ARGS, "export", "--out", str(out)]) == 0
        content = out.read_text()
        assert content.startswith("month,stability_auroc,rfm_auroc")

    def test_export_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "figure1.json"
        assert main([*ARGS, "export", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["metadata"]["onset_month"] == 18
        assert len(payload["month"]) == 7

    def test_bench(self, tmp_path, capsys):
        import json

        out = tmp_path / "telemetry.json"
        assert main(
            [
                *ARGS,
                "bench",
                "--sizes", "4",
                "--repeat", "1",
                "--resilience-size", "8",
                "--json", str(out),
            ]
        ) == 0
        stdout = capsys.readouterr().out
        assert "speedup" in stdout
        assert "resilient executor" in stdout
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "stability_fit_scaling"
        assert payload["results"][0]["customers"] == 8
        assert payload["results"][0]["speedup_batch_vs_incremental"] > 0
        resilience = payload["resilient_executor"]
        assert resilience["scenario"] == "resilient_executor_overhead"
        assert resilience["bare_seconds"] > 0
        assert resilience["resilient_seconds"] > 0

    def test_bench_single_backend(self, capsys):
        assert main([*ARGS, "bench", "--backend", "batch", "--sizes", "4",
                     "--repeat", "1"]) == 0
        out = capsys.readouterr().out
        assert "batch s" in out
        assert "incremental s" not in out

    def test_generated_dataset_round_trips(self, tmp_path):
        from repro.data.io import read_cohorts_json, read_log_csv

        out_dir = tmp_path / "dataset"
        main([*ARGS, "generate", "--out", str(out_dir)])
        log = read_log_csv(out_dir / "transactions.csv")
        cohorts = read_cohorts_json(out_dir / "cohorts.json")
        assert log.n_customers == 16
        assert cohorts.n_loyal == 8
