"""Integration tests: the whole pipeline, end to end.

These tests exercise the full chain the paper's evaluation runs through:
generator -> transaction log -> (serialisation round trip) -> stability /
RFM models -> protocol -> figures, including the product-level taxonomy
path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rfm import RFMModel
from repro.core.model import StabilityModel
from repro.data.io import read_log_csv, write_log_csv
from repro.data.store import EventStore
from repro.eval.figure1 import run_figure1
from repro.eval.figure2 import run_figure2
from repro.eval.protocol import EvaluationProtocol
from repro.ml.metrics import auroc
from repro.synth.generator import ScenarioConfig, generate_dataset


class TestFullPipeline:
    def test_serialisation_preserves_figure1(self, tiny_dataset, tmp_path):
        """Writing the log to CSV and reading it back must not change results."""
        path = tmp_path / "log.csv"
        write_log_csv(tiny_dataset.log, path)
        restored = read_log_csv(path)
        model_a = StabilityModel(tiny_dataset.calendar).fit(tiny_dataset.log)
        model_b = StabilityModel(tiny_dataset.calendar).fit(restored)
        for customer in tiny_dataset.log.customers():
            assert model_a.trajectory(customer).values() == pytest.approx(
                model_b.trajectory(customer).values(), nan_ok=True
            )

    def test_event_store_preserves_figure1(self, tiny_dataset):
        """The columnar store round trip must not change stability values."""
        restored = EventStore.from_log(tiny_dataset.log).to_log()
        model_a = StabilityModel(tiny_dataset.calendar).fit(tiny_dataset.log)
        model_b = StabilityModel(tiny_dataset.calendar).fit(restored)
        customer = tiny_dataset.log.customers()[0]
        assert model_a.trajectory(customer).values() == pytest.approx(
            model_b.trajectory(customer).values(), nan_ok=True
        )

    def test_product_level_pipeline(self):
        """Product-level generation + taxonomy abstraction yields a working eval."""
        dataset = generate_dataset(
            ScenarioConfig(n_loyal=10, n_churners=10, seed=8, product_level=True)
        )
        result = run_figure1(dataset.bundle, seed=0)
        assert result.stability.at_month(24) > 0.6

    def test_stability_model_separates_cohorts_post_onset(self, small_dataset):
        model = StabilityModel(small_dataset.calendar).fit(small_dataset.log)
        customers = small_dataset.cohorts.all_customers()
        window = next(
            k for k in range(model.n_windows) if model.window_month(k) == 22
        )
        scores = model.churn_scores(window, customers)
        y = small_dataset.cohorts.label_vector(customers)
        s = np.asarray([scores[c] for c in customers])
        assert auroc(y, s) > 0.85

    def test_rfm_and_stability_agree_on_ranking_direction(self, small_dataset):
        protocol = EvaluationProtocol(small_dataset.bundle)
        train, test = protocol.train_test_split(seed=0)
        stability = StabilityModel(small_dataset.calendar).fit(
            small_dataset.log, test
        )
        series_s = protocol.evaluate_stability_model(stability, test)
        rfm = RFMModel(small_dataset.calendar)
        series_r = protocol.evaluate_window_scorer(rfm, "rfm", train, test)
        # Both models improve from the onset to the end of the study.
        assert series_s.at_month(24) > series_s.at_month(18)
        assert series_r.at_month(24) > series_r.at_month(18)

    def test_figure2_on_alternative_seed(self):
        """The case study reproduces for other seeds of the fixture."""
        result = run_figure2(seed=23)
        assert result.explained_names(20, top_k=1) == ["Coffee"]
        assert set(result.explained_names(22, top_k=3)) == {
            "Milk",
            "Sponges",
            "Cheese",
        }

    def test_alarm_to_explanation_workflow(self, small_dataset):
        """A retailer's workflow: detect, then explain the detected window."""
        churner = sorted(small_dataset.cohorts.churners)[0]
        model = StabilityModel(small_dataset.calendar).fit(
            small_dataset.log, [churner]
        )
        # Partial defection keeps stability well above zero; 0.8 is the
        # operating point a retailer would pick for this cohort depth.
        alarms = model.detect(beta=0.8)
        assert alarms, "an injected churner must trip the detector"
        alarm = alarms[0]
        # Alarms must fire only after the ground-truth onset.
        onset = small_dataset.cohorts.onset_of(churner)
        assert model.window_month(alarm.window_index) >= onset
        explanation = model.explain(churner, alarm.window_index, top_k=5)
        predicted = {m.item for m in explanation.missing}
        schedule = small_dataset.schedules[churner]
        dropped = set(schedule.drop_month)
        assert predicted & dropped, "explanations must name injected losses"

    def test_loyal_customers_rarely_trip_detector(self, small_dataset):
        loyal = sorted(small_dataset.cohorts.loyal)
        model = StabilityModel(small_dataset.calendar).fit(small_dataset.log, loyal)
        alarms = model.detect(beta=0.4)
        assert len(alarms) <= len(loyal) * 0.25
