"""Cross-layer property tests (hypothesis).

These fuzz whole pipelines with randomly generated logs, pinning the
invariants that hold regardless of data:

* CSV serialisation round-trips exactly;
* the streaming monitor agrees with the batch model;
* the vectorised engine agrees with the incremental one end to end;
* stability stays in [0, 1] through the full model facade;
* abstraction (product -> segment) never increases the item universe.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import StabilityModel
from repro.core.streaming import StabilityMonitor
from repro.core.vectorized import vectorized_stability
from repro.core.windowing import WindowGrid, windowed_history
from repro.data.basket import Basket
from repro.data.calendar import StudyCalendar
from repro.data.io import read_log_csv, write_log_csv
from repro.data.transactions import TransactionLog

# A 6-month mini-study keeps the fuzzing fast while covering several windows.
_CALENDAR = StudyCalendar(n_months=6)

basket_strategy = st.builds(
    Basket.of,
    customer_id=st.integers(min_value=0, max_value=4),
    day=st.integers(min_value=0, max_value=_CALENDAR.n_days - 1),
    items=st.frozensets(st.integers(min_value=0, max_value=9), min_size=0, max_size=5),
    monetary=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)

log_strategy = st.lists(basket_strategy, min_size=1, max_size=40).map(TransactionLog)


class TestSerialisationProperties:
    @settings(max_examples=40, deadline=None)
    @given(log=log_strategy)
    def test_csv_round_trip_exact(self, log: TransactionLog, tmp_path_factory):
        path = tmp_path_factory.mktemp("fuzz") / "log.csv"
        write_log_csv(log, path)
        restored = read_log_csv(path)
        assert restored.n_baskets == log.n_baskets
        for customer in log.customers():
            # Monetary values round-trip bit-exactly: the writer emits
            # full repr precision, not a rounded fixed-point format.
            original = [
                (b.day, b.items, b.monetary) for b in log.history(customer)
            ]
            back = [
                (b.day, b.items, b.monetary) for b in restored.history(customer)
            ]
            assert back == original


class TestEngineEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(log=log_strategy)
    def test_streaming_matches_batch(self, log: TransactionLog):
        model = StabilityModel(_CALENDAR, window_months=1).fit(log)
        monitor = StabilityMonitor(model.grid)
        for customer in log.customers():
            monitor.register(customer)
        reports = monitor.ingest_many(sorted(log, key=lambda b: b.day))
        reports += monitor.finish()
        by_window = {r.window_index: r for r in reports}
        for customer in log.customers():
            trajectory = model.trajectory(customer)
            for k in range(model.n_windows):
                batch = trajectory.at(k).stability
                streamed = by_window[k].stabilities[customer]
                if math.isnan(batch):
                    assert math.isnan(streamed)
                else:
                    assert streamed == pytest.approx(batch, abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(log=log_strategy)
    def test_vectorized_matches_batch(self, log: TransactionLog):
        grid = WindowGrid.monthly(_CALENDAR, 1)
        for customer in log.customers():
            windows = windowed_history(log.history(customer), grid)
            fast = vectorized_stability(windows)
            model = StabilityModel(_CALENDAR, window_months=1).fit(
                log, [customer]
            )
            slow = model.trajectory(customer).values()
            for a, b in zip(fast, slow, strict=True):
                if math.isnan(b):
                    assert math.isnan(a)
                else:
                    assert a == pytest.approx(b, abs=1e-12)


class TestModelInvariants:
    @settings(max_examples=40, deadline=None)
    @given(log=log_strategy, alpha=st.sampled_from([1.5, 2.0, 4.0]))
    def test_stability_bounded_through_facade(self, log: TransactionLog, alpha):
        model = StabilityModel(_CALENDAR, window_months=1, alpha=alpha).fit(log)
        for customer in model.customers():
            for value in model.trajectory(customer).values():
                assert math.isnan(value) or 0.0 <= value <= 1.0 + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(log=log_strategy)
    def test_churn_scores_bounded(self, log: TransactionLog):
        model = StabilityModel(_CALENDAR, window_months=1).fit(log)
        for k in range(model.n_windows):
            for score in model.churn_scores(k).values():
                assert 0.0 <= score <= 1.0 + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(log=log_strategy, modulus=st.integers(min_value=1, max_value=5))
    def test_abstraction_shrinks_universe(self, log: TransactionLog, modulus):
        lifted = log.abstracted(lambda i: i % modulus)
        assert len(lifted.item_universe()) <= len(log.item_universe())
        assert lifted.n_baskets == log.n_baskets
