"""Smoke tests: every example script must run cleanly end to end.

Examples are documentation that executes; a broken example is a broken
promise.  Each test runs one script in a subprocess and checks its exit
code and a signature line of its output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: script name -> substring its stdout must contain.
EXPECTED_OUTPUT = {
    "quickstart.py": "stability trajectory:",
    "retention_campaign.py": "lift",
    "monitoring_dashboard.py": "churners caught",
    "custom_data.py": "abstracted",
    "parameter_tuning.py": "paper selected",
    "streaming_alerts.py": "true churners caught",
    "loss_characterization.py": "department rollup",
    "unlabeled_pipeline.py": "label audit",
    "early_warning.py": "call list",
    "big_data_workflow.py": "constant memory",
    "calibrated_probabilities.py": "reliability after calibration",
}


def _run(script: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_OUTPUT), (
        "examples/ and the smoke-test roster diverged; update EXPECTED_OUTPUT"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs(script: str):
    result = _run(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_OUTPUT[script] in result.stdout
    assert not result.stderr.strip(), result.stderr[-2000:]
