"""Cross-module integration flows beyond the core pipeline.

Each test chains several subsystems the way the examples do, pinning that
the seams hold: loyalty labels feeding the evaluation, quality profiling
feeding the generator's output, shards feeding the streaming monitor,
calibration sitting on top of model scores, and the characterization /
forecasting layers consuming fitted trajectories.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import StabilityModel
from repro.core.streaming import StabilityMonitor
from repro.core.trend import forecast_stability, rank_by_risk
from repro.core.windowing import WindowGrid
from repro.data import DatasetBundle, TransactionLog, build_cohorts
from repro.data.quality import profile_log
from repro.data.streams import PartitionedLogWriter, iter_partitioned_log
from repro.eval.protocol import EvaluationProtocol
from repro.ml.calibration import PlattCalibrator, expected_calibration_error


class TestLoyaltyToEvaluation:
    def test_behavioural_labels_support_full_figure1(self, small_dataset):
        """Derived cohorts must drive the standard protocol end to end."""
        cohorts = build_cohorts(
            small_dataset.log,
            small_dataset.calendar,
            outcome_start_month=18,
            drop_threshold=0.8,
        )
        bundle = DatasetBundle.checked(
            log=small_dataset.log.filter_customers(cohorts.all_customers()),
            catalog=small_dataset.catalog,
            calendar=small_dataset.calendar,
            cohorts=cohorts,
        )
        protocol = EvaluationProtocol(bundle)
        model = StabilityModel(bundle.calendar).fit(bundle.log)
        series = protocol.evaluate_stability_model(
            model, cohorts.all_customers()
        )
        # Behavioural churners shop less AND lose items; the stability
        # model must separate them from the behavioural loyals too.
        assert series.at_month(24) > 0.7


class TestShardsToMonitor:
    def test_sharded_stream_reproduces_batch(self, tiny_dataset, tmp_path):
        baskets = sorted(tiny_dataset.log, key=lambda b: b.day)
        with PartitionedLogWriter(tmp_path / "shards", n_shards=3) as writer:
            writer.write_all(baskets)
        grid = WindowGrid.monthly(tiny_dataset.calendar, 2)
        monitor = StabilityMonitor(grid)
        for customer in tiny_dataset.log.customers():
            monitor.register(customer)
        reports = monitor.ingest_many(
            iter_partitioned_log(tmp_path / "shards", merge_by_day=True)
        )
        reports += monitor.finish()
        model = StabilityModel(tiny_dataset.calendar).fit(tiny_dataset.log)
        by_window = {r.window_index: r for r in reports}
        customer = tiny_dataset.log.customers()[0]
        import math

        for k in range(model.n_windows):
            batch = model.trajectory(customer).at(k).stability
            streamed = by_window[k].stabilities[customer]
            assert (math.isnan(batch) and math.isnan(streamed)) or (
                streamed == pytest.approx(batch, abs=1e-12)
            )


class TestQualityOnGeneratedAndCorrupted:
    def test_generated_data_passes_structural_checks(self, tiny_dataset):
        report = profile_log(tiny_dataset.log, calendar=tiny_dataset.calendar)
        assert report.n_duplicate_receipts == 0
        assert report.n_empty_baskets == 0
        assert report.empty_months == []

    def test_corruption_is_caught(self, tiny_dataset):
        corrupted = TransactionLog(tiny_dataset.log)
        first = tiny_dataset.log.history(tiny_dataset.log.customers()[0])[0]
        corrupted.add(first)  # duplicate receipt
        report = profile_log(corrupted)
        assert report.n_duplicate_receipts >= 1
        assert not report.is_clean


class TestCalibrationOnModelScores:
    def test_platt_improves_model_score_calibration(self, small_dataset):
        protocol = EvaluationProtocol(small_dataset.bundle)
        fit_ids, eval_ids = protocol.train_test_split(seed=3)
        model = StabilityModel(small_dataset.calendar).fit(small_dataset.log)
        window = 10  # month 22

        def vectors(ids):
            scores = model.churn_scores(window, ids)
            return (
                small_dataset.cohorts.label_vector(ids),
                np.asarray([scores[c] for c in ids]),
            )

        fit_y, fit_s = vectors(fit_ids)
        eval_y, eval_s = vectors(eval_ids)
        calibrated = PlattCalibrator().fit(fit_s, fit_y).transform(eval_s)
        assert expected_calibration_error(
            eval_y, calibrated
        ) < expected_calibration_error(eval_y, eval_s)


class TestForecastOnFittedPopulation:
    def test_risk_ranking_prefers_churners(self, small_dataset):
        model = StabilityModel(small_dataset.calendar).fit(small_dataset.log)
        decision_window = 10  # month 22
        from repro.errors import ConfigError

        forecasts = []
        for customer in model.customers():
            try:
                forecasts.append(
                    forecast_stability(
                        model.trajectory(customer),
                        beta=0.5,
                        upto_window=decision_window,
                    )
                )
            except ConfigError:
                continue  # fewer than two defined stability values
        ranked = rank_by_risk(forecasts)
        top = [f.customer_id for f in ranked[:10]]
        churner_share = np.mean(
            [small_dataset.cohorts.is_churner(c) for c in top]
        )
        assert churner_share >= 0.7
