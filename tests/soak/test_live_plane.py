"""Tests for the live telemetry plane under soak: flight triggers,
publisher wiring, the overhead pin."""

from __future__ import annotations

import pytest

from repro.obs import (
    FlightRecorder,
    MetricsPublisher,
    parse_prometheus,
    read_flight_jsonl,
)
from repro.serve import StatusBoard
from repro.soak import (
    TELEMETRY_OVERHEAD_BUDGET_PCT,
    ChaosSchedule,
    SoakPlan,
    live_plane_overhead,
    run_soak,
)

BATCH = 120


def _plane(tmp_path):
    board = StatusBoard()
    flight = FlightRecorder(tmp_path / "flight")
    publisher = MetricsPublisher(
        board=board,
        flight=flight,
        stream_path=tmp_path / "metrics-stream.jsonl",
        interval_s=0.0,
    )
    return publisher, board, flight


class TestFaultsFlushFlights:
    def test_each_injected_fault_triggers_an_artifact(
        self, soak_stream, tmp_path, soak_config
    ):
        publisher, board, flight = _plane(tmp_path)
        chaos = ChaosSchedule(
            torn_cursors=(1,), kills=(2,), torn_state=(3,)
        )
        plan = SoakPlan(batch_size=BATCH)
        report = run_soak(
            soak_stream,
            tmp_path / "soak",
            plan,
            chaos,
            config=soak_config,
            status=board,
            publisher=publisher,
        )
        assert report.passed
        assert report.faults_injected == len(chaos.cells())
        assert len(flight.flushed) >= len(chaos.cells())
        reasons = [read_flight_jsonl(p)[0]["reason"] for p in flight.flushed]
        for cell in chaos.cells():
            assert f"fault:{cell.site}" in reasons

    def test_flight_artifact_names_the_fault_cell(
        self, soak_stream, tmp_path, soak_config
    ):
        publisher, board, flight = _plane(tmp_path)
        chaos = ChaosSchedule(kills=(2,))
        plan = SoakPlan(batch_size=BATCH)
        run_soak(
            soak_stream,
            tmp_path / "soak",
            plan,
            chaos,
            config=soak_config,
            publisher=publisher,
        )
        site_flushes = [
            (header, records)
            for header, records in (
                read_flight_jsonl(p) for p in flight.flushed
            )
            if str(header["reason"]).startswith("fault:")
        ]
        assert site_flushes
        header, records = site_flushes[0]
        fault_events = [
            r
            for r in records
            if r.get("kind") == "event" and r.get("event") == "fault_injected"
        ]
        assert fault_events
        assert f"fault:{fault_events[-1]['site']}" == header["reason"]
        assert fault_events[-1]["batch"] == header["commit_index"]


class TestSloViolationFlushes:
    def test_violation_triggers_flight_and_burn_budgets(
        self, soak_stream, tmp_path, soak_config
    ):
        publisher, _, flight = _plane(tmp_path)
        plan = SoakPlan(batch_size=BATCH, slo_p99_ms=1e-6)
        report = run_soak(
            soak_stream,
            tmp_path / "soak",
            plan,
            None,
            config=soak_config,
            publisher=publisher,
        )
        assert not report.passed
        # The harness fills the publisher's budgets from the plan.
        assert publisher.slo_budgets_ms == plan.slo_budgets_ms()
        reasons = [read_flight_jsonl(p)[0]["reason"] for p in flight.flushed]
        assert any(str(r).startswith("slo_violation:") for r in reasons)


class TestBoardExposition:
    def test_soak_keeps_the_metrics_endpoint_current(
        self, soak_stream, tmp_path, soak_config
    ):
        publisher, board, _ = _plane(tmp_path)
        plan = SoakPlan(batch_size=BATCH)
        run_soak(
            soak_stream,
            tmp_path / "soak",
            plan,
            None,
            config=soak_config,
            status=board,
            publisher=publisher,
        )
        code, text = board.handle("/metrics")
        assert code == 200
        series = parse_prometheus(text)
        assert series["repro_serve_ingested_total"] > 0
        assert series["repro_soak_loops_total"] >= 1


class TestOverheadPin:
    def test_live_plane_is_bit_identical_and_cheap(
        self, soak_stream, soak_config
    ):
        # soak_config unused: the pin serves with default scoring, the
        # same on both sides, which is all bit-identity needs.
        verdict = live_plane_overhead(soak_stream, batch_size=BATCH, repeats=1)
        assert verdict["fingerprint"]
        assert verdict["off_s"] > 0 and verdict["on_s"] > 0
        assert verdict["budget_pct"] == TELEMETRY_OVERHEAD_BUDGET_PCT
        # Overhead comes from the publisher's accrued tick time, not a
        # wall-clock difference, so it is noise-immune enough to assert
        # even at a single repeat on a loaded CI box; bit-identity (no
        # SoakError raised) is the correctness half.
        assert verdict["tick_s"] > 0
        assert verdict["overhead_pct"] >= 0
        assert set(verdict) >= {"overhead_pct", "ok", "stream"}


@pytest.fixture(autouse=True)
def _no_registry_leak():
    from repro.obs import metrics as m

    yield
    assert m.get_metrics() is m.NULL_METRICS
