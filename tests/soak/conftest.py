"""Shared soak fixtures: a small recorded stream (fast chaos loops)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import ExperimentConfig
from repro.synth import ScenarioConfig, generate_dataset
from repro.synth.stream import record_stream


@pytest.fixture(scope="session")
def soak_dataset():
    """A short study so full chaos loops stay in CI budget."""
    return generate_dataset(
        ScenarioConfig(
            n_loyal=12, n_churners=12, seed=3, n_months=10, onset_month=6
        )
    )


@pytest.fixture(scope="session")
def soak_stream(soak_dataset, tmp_path_factory) -> Path:
    path = tmp_path_factory.mktemp("soak-stream") / "stream.jsonl"
    baskets = sorted(
        soak_dataset.log, key=lambda b: (b.day, b.customer_id)
    )
    return record_stream(baskets, path, calendar=soak_dataset.calendar)


@pytest.fixture(scope="session")
def soak_config() -> ExperimentConfig:
    return ExperimentConfig()
