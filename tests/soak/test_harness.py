"""Tests for the chaos/soak harness (repro.soak.harness).

The expensive full-site chaos loop (parallel pool, worker crash, slow
shard) runs once; the cheaper invariants — fault-free soaks, serial
chaos over the process-level sites, schedule validation, bench artifact
— use serial plans so the suite stays fast.
"""

from __future__ import annotations

import errno
import json

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry, use_metrics
from repro.obs import metrics as obs_metrics
from repro.soak import (
    ChaosSchedule,
    SoakPlan,
    render_soak,
    run_soak,
    stream_shape,
    write_bench,
)

#: Batch size chosen so the small fixture stream yields a handful of
#: batches (enough room for multi-site schedules).
BATCH = 120


@pytest.fixture(scope="module")
def shape(soak_stream):
    return stream_shape(soak_stream, BATCH)


class TestStreamShape:
    def test_matches_served_batches(self, soak_stream, shape):
        n_batches, n_baskets = shape
        assert n_batches >= 6
        assert n_baskets > 0

    def test_batch_size_validated(self, soak_stream):
        with pytest.raises(ConfigError, match="batch_size"):
            stream_shape(soak_stream, 0)


class TestFaultFreeSoak:
    def test_loops_mode_passes_with_parity(
        self, soak_stream, tmp_path, soak_config
    ):
        plan = SoakPlan(mode="loops", loops=2, batch_size=BATCH)
        report = run_soak(
            soak_stream, tmp_path / "soak", plan, None, config=soak_config
        )
        assert report.passed
        assert report.violations == ()
        assert len(report.loops) == 2
        assert all(loop.parity_ok for loop in report.loops)
        assert all(
            loop.fingerprint == report.reference_fingerprint
            for loop in report.loops
        )
        assert report.faults_injected == 0
        # One serve leg per loop, each a full pass.
        assert report.legs == 2

    def test_latency_histogram_and_throughput_populated(
        self, soak_stream, tmp_path, soak_config, shape
    ):
        n_batches, n_baskets = shape
        plan = SoakPlan(batch_size=BATCH)
        report = run_soak(
            soak_stream, tmp_path / "soak", plan, None, config=soak_config
        )
        # One serve.batch_s observation per data batch (the finish seal
        # closes windows in-process, outside the batch stage).
        assert report.latency_ms["count"] == pytest.approx(n_batches)
        assert report.latency_ms["p50"] <= report.latency_ms["p95"]
        assert report.latency_ms["p95"] <= report.latency_ms["p99"]
        assert report.baskets_played == n_baskets
        assert report.throughput_baskets_s > 0

    def test_duration_mode_runs_at_least_one_loop(
        self, soak_stream, tmp_path, soak_config
    ):
        plan = SoakPlan(
            mode="duration", duration_s=0.001, batch_size=BATCH
        )
        report = run_soak(
            soak_stream, tmp_path / "soak", plan, None, config=soak_config
        )
        assert len(report.loops) >= 1
        assert report.passed

    def test_rate_cap_slows_replay(self, soak_stream, tmp_path, soak_config):
        # Cap low enough that pacing dominates: ~BATCH baskets per batch
        # at 2*BATCH baskets/s is ~0.5s per batch after the first.
        plan = SoakPlan(batch_size=BATCH, rate=2.0 * BATCH)
        report = run_soak(
            soak_stream, tmp_path / "soak", plan, None, config=soak_config
        )
        assert report.throughput_baskets_s <= 2.5 * BATCH
        assert report.passed

    def test_slo_violation_fails_report_without_raising(
        self, soak_stream, tmp_path, soak_config
    ):
        plan = SoakPlan(batch_size=BATCH, slo_p99_ms=1e-6)
        report = run_soak(
            soak_stream, tmp_path / "soak", plan, None, config=soak_config
        )
        assert not report.passed
        assert any("SLO" in violation for violation in report.violations)
        assert report.slo["p99"]["ok"] is False

    def test_metrics_merge_into_outer_registry(
        self, soak_stream, tmp_path, soak_config
    ):
        registry = MetricsRegistry()
        plan = SoakPlan(batch_size=BATCH)
        with use_metrics(registry):
            run_soak(
                soak_stream, tmp_path / "soak", plan, None, config=soak_config
            )
        assert registry.counter_value(obs_metrics.SOAK_LOOPS) == 1
        assert registry.counter_value(obs_metrics.SERVE_INGESTED) > 0


class TestScheduleFit:
    def test_cell_beyond_stream_rejected(
        self, soak_stream, tmp_path, soak_config, shape
    ):
        n_batches, _ = shape
        plan = SoakPlan(batch_size=BATCH)
        chaos = ChaosSchedule(kills=(n_batches + 1,))
        with pytest.raises(ConfigError, match="only yields"):
            run_soak(
                soak_stream, tmp_path / "soak", plan, chaos,
                config=soak_config,
            )

    def test_worker_faults_need_parallel_pool(
        self, soak_stream, tmp_path, soak_config
    ):
        plan = SoakPlan(batch_size=BATCH)  # serial
        chaos = ChaosSchedule(crashes=(2,))
        with pytest.raises(ConfigError, match="parallel"):
            run_soak(
                soak_stream, tmp_path / "soak", plan, chaos,
                config=soak_config,
            )

    def test_io_faults_need_retry_budget(
        self, soak_stream, tmp_path, soak_config
    ):
        plan = SoakPlan(batch_size=BATCH, checkpoint_io_retries=0)
        chaos = ChaosSchedule(io_errors=((2, errno.ENOSPC),))
        with pytest.raises(ConfigError, match="checkpoint_io_retries"):
            run_soak(
                soak_stream, tmp_path / "soak", plan, chaos,
                config=soak_config,
            )


class TestSerialChaos:
    """The process-level sites (kill, tears, ckpt I/O) need no pool."""

    def test_kill_tear_and_io_faults_recover_with_parity(
        self, soak_stream, tmp_path, soak_config
    ):
        chaos = ChaosSchedule(
            torn_cursors=(1,),
            kills=(3,),
            io_errors=((4, errno.EACCES),),
            torn_state=(5,),
        )
        plan = SoakPlan(batch_size=BATCH)
        report = run_soak(
            soak_stream, tmp_path / "soak", plan, chaos, config=soak_config
        )
        assert report.passed, report.violations
        assert report.faults_injected == 4
        outcomes = {f.site: f for f in report.loops[0].faults}
        assert outcomes["tear_cursor"].rework_batches == 1
        assert outcomes["kill_resume"].rework_batches == 1
        assert outcomes["ckpt_io"].rework_batches == 0
        # The torn state dir at batch 5 replays its committed prefix.
        assert outcomes["tear_state"].rework_batches == 5
        assert report.loops[0].parity_ok

    def test_bench_artifact_round_trips(
        self, soak_stream, tmp_path, soak_config
    ):
        chaos = ChaosSchedule(kills=(2,))
        plan = SoakPlan(batch_size=BATCH, slo_p99_ms=60_000.0)
        report = run_soak(
            soak_stream, tmp_path / "soak", plan, chaos, config=soak_config
        )
        bench = tmp_path / "BENCH_serve.json"
        merged = write_bench(report, bench)
        on_disk = json.loads(bench.read_text())
        assert on_disk == merged
        soak = on_disk["soak"]
        assert soak["passed"] is True
        assert soak["faults_injected"] == 1
        assert soak["slo"]["p99"]["ok"] is True
        assert soak["chaos"]["cells"] == [
            {"batch": 2, "site": "kill_resume"}
        ]
        # Merging preserves foreign top-level scenarios.
        merged2 = write_bench(report, bench)
        assert set(merged2) == {"soak"}

    def test_render_soak_mentions_faults_and_slos(
        self, soak_stream, tmp_path, soak_config
    ):
        chaos = ChaosSchedule(kills=(2,))
        plan = SoakPlan(batch_size=BATCH, slo_p99_ms=60_000.0)
        report = run_soak(
            soak_stream, tmp_path / "soak", plan, chaos, config=soak_config
        )
        text = render_soak(report)
        assert "PASSED" in text
        assert "kill_resume" in text
        assert "SLO p99" in text
        assert "parity vs offline sweep: ok" in text

    def test_keep_checkpoints_retains_loop_dirs(
        self, soak_stream, tmp_path, soak_config
    ):
        plan = SoakPlan(batch_size=BATCH)
        report = run_soak(
            soak_stream,
            tmp_path / "soak",
            plan,
            None,
            config=soak_config,
            keep_checkpoints=True,
        )
        assert (tmp_path / "soak" / "loop-000" / "cursor.json").exists()
        assert report.passed
        # And without the flag the scratch dirs are pruned.
        report2 = run_soak(
            soak_stream, tmp_path / "soak2", plan, None, config=soak_config
        )
        assert not (tmp_path / "soak2" / "loop-000").exists()
        assert report2.passed


class TestParallelChaos:
    def test_all_sites_inject_and_parity_holds(
        self, soak_stream, tmp_path, soak_config, shape
    ):
        n_batches, _ = shape
        chaos = ChaosSchedule.smoke(n_batches, slow_seconds=0.3)
        plan = SoakPlan(
            batch_size=BATCH, n_shards=2, parallel=True,
            slo_p99_ms=120_000.0,
        )
        report = run_soak(
            soak_stream, tmp_path / "soak", plan, chaos, config=soak_config
        )
        assert report.passed, report.violations
        assert report.faults_injected == chaos.n_faults == 6
        sites = {f.site for f in report.loops[0].faults}
        assert sites == set(chaos.sites())
        crash_class = (
            "worker_crash", "slow_shard", "kill_resume", "ckpt_io"
        )
        for fault in report.loops[0].faults:
            if fault.site in crash_class:
                assert fault.rework_batches <= 1, fault
        assert report.loops[0].parity_ok
