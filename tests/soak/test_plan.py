"""Tests for the frozen soak/chaos value objects (repro.soak.plan)."""

from __future__ import annotations

import errno

import pytest

from repro.errors import ConfigError
from repro.soak.plan import (
    CHAOS_SITES,
    SITE_CKPT_IO,
    SITE_KILL_RESUME,
    SITE_SLOW_SHARD,
    SITE_TEAR_CURSOR,
    SITE_TEAR_STATE,
    SITE_WORKER_CRASH,
    ChaosSchedule,
    SoakPlan,
)


class TestSoakPlanValidation:
    def test_defaults_are_valid(self):
        plan = SoakPlan()
        assert plan.mode == "loops"
        assert plan.loops == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError, match="mode"):
            SoakPlan(mode="forever")

    def test_duration_mode_needs_positive_duration(self):
        with pytest.raises(ConfigError, match="duration_s"):
            SoakPlan(mode="duration", duration_s=0.0)
        assert SoakPlan(mode="duration", duration_s=5.0).duration_s == 5.0

    def test_loops_must_be_positive(self):
        with pytest.raises(ConfigError, match="loops"):
            SoakPlan(loops=0)

    def test_rate_must_be_positive_when_set(self):
        with pytest.raises(ConfigError, match="rate"):
            SoakPlan(rate=0.0)
        assert SoakPlan(rate=None).rate is None

    def test_slo_budgets_must_be_non_decreasing(self):
        with pytest.raises(ConfigError, match="non-decreasing"):
            SoakPlan(slo_p50_ms=100.0, slo_p99_ms=50.0)

    def test_slo_budgets_must_be_positive(self):
        with pytest.raises(ConfigError, match="slo_p99_ms"):
            SoakPlan(slo_p99_ms=-1.0)

    def test_slo_budgets_ms_collects_only_set_budgets(self):
        plan = SoakPlan(slo_p95_ms=40.0, slo_p99_ms=60.0)
        assert plan.slo_budgets_ms() == {"p95": 40.0, "p99": 60.0}

    def test_min_throughput_must_be_positive(self):
        with pytest.raises(ConfigError, match="min_throughput"):
            SoakPlan(min_throughput=0.0)


class TestSoakPlanFromMapping:
    def test_coerces_types(self):
        plan = SoakPlan.from_mapping(
            {"mode": " LOOPS ", "loops": "3", "rate": "250", "parallel": 1}
        )
        assert plan.mode == "loops"
        assert plan.loops == 3
        assert plan.rate == 250.0
        assert plan.parallel is True

    def test_unknown_key_named(self):
        with pytest.raises(ConfigError, match="p99_budget"):
            SoakPlan.from_mapping({"p99_budget": 10})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError, match="mapping"):
            SoakPlan.from_mapping([1, 2, 3])


class TestChaosScheduleValidation:
    def test_cells_sorted_by_batch(self):
        schedule = ChaosSchedule(
            kills=(5,), torn_cursors=(1,), io_errors=((3, errno.ENOSPC),)
        )
        assert [(c.batch, c.site) for c in schedule.cells()] == [
            (1, SITE_TEAR_CURSOR),
            (3, SITE_CKPT_IO),
            (5, SITE_KILL_RESUME),
        ]

    def test_duplicate_cell_named(self):
        with pytest.raises(
            ConfigError, match=r"duplicate chaos cell \(batch 2, site kill_resume\)"
        ):
            ChaosSchedule(kills=(2, 2))

    def test_conflicting_cells_named(self):
        with pytest.raises(
            ConfigError, match="conflicting chaos cells at batch 3"
        ):
            ChaosSchedule(kills=(3,), torn_cursors=(3,))

    def test_batches_are_one_based(self):
        with pytest.raises(ConfigError, match="1-based"):
            ChaosSchedule(kills=(0,))

    def test_slow_delay_must_be_positive(self):
        with pytest.raises(ConfigError, match="> 0 seconds"):
            ChaosSchedule(slow=((2, 0.0),))

    def test_io_errno_must_be_positive(self):
        with pytest.raises(ConfigError, match="errno"):
            ChaosSchedule(io_errors=((2, 0),))

    def test_requires_parallel_only_for_worker_faults(self):
        assert ChaosSchedule(crashes=(1,)).requires_parallel
        assert ChaosSchedule(slow=((1, 0.5),)).requires_parallel
        assert not ChaosSchedule(
            kills=(1,), torn_cursors=(2,), io_errors=((3, errno.EACCES),)
        ).requires_parallel

    def test_max_batch_and_n_faults(self):
        schedule = ChaosSchedule(kills=(4,), torn_state=(9,))
        assert schedule.max_batch == 9
        assert schedule.n_faults == 2
        assert ChaosSchedule().max_batch == 0


class TestSmokeSchedule:
    def test_covers_every_site_given_enough_batches(self):
        schedule = ChaosSchedule.smoke(10)
        assert schedule.sites() == CHAOS_SITES
        assert schedule.n_faults == len(CHAOS_SITES)
        # One fault per batch, batches 1..6, tear_cursor first so its
        # restart-from-head fallback reworks exactly one batch.
        assert [(c.batch, c.site) for c in schedule.cells()] == list(
            enumerate(CHAOS_SITES, start=1)
        ) == [
            (1, SITE_TEAR_CURSOR),
            (2, SITE_WORKER_CRASH),
            (3, SITE_SLOW_SHARD),
            (4, SITE_KILL_RESUME),
            (5, SITE_CKPT_IO),
            (6, SITE_TEAR_STATE),
        ]

    def test_truncates_to_available_batches(self):
        schedule = ChaosSchedule.smoke(2)
        assert schedule.sites() == (SITE_TEAR_CURSOR, SITE_WORKER_CRASH)
        assert schedule.max_batch == 2

    def test_needs_at_least_one_batch(self):
        with pytest.raises(ConfigError, match=">= 1 batch"):
            ChaosSchedule.smoke(0)
