"""Tests for repro.core.trend (stability-trend forecasting)."""

from __future__ import annotations

import pytest

from repro.core.stability import stability_trajectory
from repro.core.trend import forecast_stability, rank_by_risk
from repro.core.windowing import Window
from repro.errors import ConfigError


def _windows(item_sets) -> list[Window]:
    return [
        Window(index=k, begin_day=k * 10, end_day=(k + 1) * 10, items=frozenset(items))
        for k, items in enumerate(item_sets)
    ]


def _declining_trajectory():
    # Ten habitual items, progressively dropped one per window from k=4:
    # stability declines roughly linearly.
    full = set(range(10))
    sets = [full] * 4
    for lost in range(1, 7):
        sets.append(set(range(10 - lost)))
    return stability_trajectory(1, _windows(sets))


class TestForecast:
    def test_declining_customer_negative_slope(self):
        forecast = forecast_stability(_declining_trajectory(), beta=0.3)
        assert forecast.slope < 0
        assert forecast.n_points >= 2

    def test_crossing_horizon_predicted(self):
        forecast = forecast_stability(_declining_trajectory(), beta=0.3)
        assert forecast.windows_to_threshold is not None
        assert forecast.windows_to_threshold > 0

    def test_stable_customer_never_crosses(self):
        trajectory = stability_trajectory(2, _windows([{1, 2}] * 8))
        forecast = forecast_stability(trajectory, beta=0.5)
        assert forecast.slope == pytest.approx(0.0)
        assert forecast.windows_to_threshold is None

    def test_already_below_threshold_is_zero_horizon(self):
        trajectory = stability_trajectory(
            3, _windows([{1, 2}, {1, 2}, {1, 2}, set(), set()])
        )
        forecast = forecast_stability(trajectory, beta=0.5, lookback=2)
        assert forecast.windows_to_threshold == 0.0

    def test_predicted_stability_clipped(self):
        forecast = forecast_stability(_declining_trajectory(), beta=0.3)
        assert 0.0 <= forecast.predicted_stability(100) <= 1.0
        assert forecast.predicted_stability(0) == pytest.approx(
            forecast.level, abs=1e-12
        )

    def test_predicted_stability_negative_horizon_rejected(self):
        forecast = forecast_stability(_declining_trajectory())
        with pytest.raises(ConfigError):
            forecast.predicted_stability(-1)

    def test_upto_window_backtest(self):
        trajectory = _declining_trajectory()
        early = forecast_stability(trajectory, upto_window=5)
        assert early.last_window <= 5

    def test_lookback_validation(self):
        with pytest.raises(ConfigError):
            forecast_stability(_declining_trajectory(), lookback=1)

    def test_insufficient_history_rejected(self):
        trajectory = stability_trajectory(1, _windows([{1}]))
        with pytest.raises(ConfigError, match="at least 2"):
            forecast_stability(trajectory)

    def test_forecast_anticipates_actual_crossing(self):
        """Backtest: the forecast made mid-decline points at the later
        actual crossing window."""
        trajectory = _declining_trajectory()
        beta = 0.5
        forecast = forecast_stability(trajectory, beta=beta, upto_window=6)
        actual_cross = next(
            (
                record.window.index
                for record in trajectory.records
                if record.defined and record.stability <= beta
            ),
            None,
        )
        assert forecast.windows_to_threshold is not None
        if actual_cross is not None:
            predicted_window = forecast.last_window + forecast.windows_to_threshold
            assert abs(predicted_window - actual_cross) <= 3


class TestRankByRisk:
    def test_crossing_before_stable(self):
        declining = forecast_stability(_declining_trajectory(), beta=0.3)
        stable = forecast_stability(
            stability_trajectory(9, _windows([{1}] * 8)), beta=0.3
        )
        ranked = rank_by_risk([stable, declining])
        assert ranked[0].customer_id == declining.customer_id

    def test_max_horizon_filters(self):
        declining = forecast_stability(_declining_trajectory(), beta=0.3)
        assert declining.windows_to_threshold is not None
        ranked = rank_by_risk(
            [declining], max_horizon=declining.windows_to_threshold - 0.5
        )
        assert ranked == []

    def test_empty_input(self):
        assert rank_by_risk([]) == []
