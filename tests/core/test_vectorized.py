"""Tests for repro.core.vectorized — differential testing vs the
incremental engine."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vectorized import (
    reference_stability,
    vectorized_churn_scores,
    vectorized_stability,
)
from repro.core.windowing import Window, WindowGrid
from repro.data.basket import Basket
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, ConfigWarning


def _windows(item_sets) -> list[Window]:
    return [
        Window(index=k, begin_day=k * 10, end_day=(k + 1) * 10, items=frozenset(items))
        for k, items in enumerate(item_sets)
    ]


def _assert_same(vectorized: np.ndarray, reference_values: list[float]) -> None:
    assert len(vectorized) == len(reference_values)
    for fast, slow in zip(vectorized, reference_values):
        if math.isnan(slow):
            assert math.isnan(fast)
        else:
            assert fast == pytest.approx(slow, abs=1e-12)


class TestAgainstReference:
    def test_hand_example(self):
        windows = _windows([{1, 2}, {1}, {1}])
        _assert_same(
            vectorized_stability(windows, alpha=2.0),
            reference_stability(windows, alpha=2.0).values(),
        )

    def test_empty_windows(self):
        windows = _windows([set(), {1}, set(), {1}])
        _assert_same(
            vectorized_stability(windows),
            reference_stability(windows).values(),
        )

    def test_no_windows(self):
        assert vectorized_stability([]).shape == (0,)

    def test_all_empty_windows(self):
        values = vectorized_stability(_windows([set(), set()]))
        assert all(math.isnan(v) for v in values)

    def test_invalid_alpha(self):
        with pytest.raises(ConfigError):
            vectorized_stability(_windows([{1}]), alpha=0.0)

    def test_flat_alpha_warns(self):
        with pytest.warns(ConfigWarning):
            vectorized_stability(_windows([{1}, {1}]), alpha=1.0)

    def test_long_history_saturation_matches(self):
        windows = _windows([{1, 2}] * 1200 + [{1}])
        fast = vectorized_stability(windows, alpha=8.0)
        assert fast[-1] == pytest.approx(0.5)

    @settings(max_examples=150, deadline=None)
    @given(
        item_sets=st.lists(
            st.frozensets(st.integers(min_value=0, max_value=6), max_size=5),
            min_size=1,
            max_size=14,
        ),
        alpha=st.sampled_from([1.5, 2.0, 3.0]),
    )
    def test_differential_random_histories(self, item_sets, alpha):
        """Two independent implementations must agree everywhere."""
        windows = _windows(item_sets)
        _assert_same(
            vectorized_stability(windows, alpha=alpha),
            reference_stability(windows, alpha=alpha).values(),
        )


class TestChurnScores:
    @pytest.fixture()
    def log(self) -> TransactionLog:
        log = TransactionLog()
        for customer in (1, 2):
            for day in range(0, 50, 5):
                items = [1, 2] if customer == 1 or day < 30 else [1]
                log.add(Basket.of(customer, day, items=items))
        return log

    def test_matches_trajectory_engine(self, log):
        from repro.core.stability import stability_trajectory
        from repro.core.windowing import windowed_history

        grid = WindowGrid.daily(total_days=50, days_per_window=10)
        fast = vectorized_churn_scores(log, grid, window_index=4)
        for customer in (1, 2):
            trajectory = stability_trajectory(
                customer, windowed_history(log.history(customer), grid)
            )
            assert fast[customer] == pytest.approx(trajectory.churn_score(4))

    def test_undefined_maps_to_neutral(self, log):
        grid = WindowGrid.daily(total_days=50, days_per_window=10)
        scores = vectorized_churn_scores(log, grid, window_index=0)
        assert scores[1] == 0.5

    def test_bad_window_rejected(self, log):
        grid = WindowGrid.daily(total_days=50, days_per_window=10)
        with pytest.raises(ConfigError):
            vectorized_churn_scores(log, grid, window_index=99)

    def test_customer_subset(self, log):
        grid = WindowGrid.daily(total_days=50, days_per_window=10)
        scores = vectorized_churn_scores(log, grid, 4, customers=[2])
        assert set(scores) == {2}
