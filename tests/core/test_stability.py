"""Tests for repro.core.stability — the paper's Stability_i^k."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.significance import ExponentialSignificance
from repro.core.stability import stability_trajectory
from repro.core.windowing import Window
from repro.errors import ConfigError


def _windows(item_sets) -> list[Window]:
    return [
        Window(
            index=k,
            begin_day=k * 10,
            end_day=(k + 1) * 10,
            items=frozenset(items),
        )
        for k, items in enumerate(item_sets)
    ]


class TestPaperDefinition:
    def test_first_window_undefined(self):
        trajectory = stability_trajectory(1, _windows([{1, 2}]))
        assert math.isnan(trajectory.at(0).stability)
        assert not trajectory.at(0).defined

    def test_all_items_kept_gives_one(self):
        # "If all products are contained in window k, the stability of the
        # customer is equal to 1."
        trajectory = stability_trajectory(1, _windows([{1, 2}, {1, 2}, {1, 2}]))
        assert trajectory.at(1).stability == 1.0
        assert trajectory.at(2).stability == 1.0

    def test_hand_computed_example(self):
        # Windows: {a,b}, {a}, {a} with alpha=2.
        # At k=2: a has c=2,l=0 -> S=4; b has c=1,l=1 -> S=1.
        # u_2={a}: stability = 4 / (4+1) = 0.8.
        trajectory = stability_trajectory(
            1, _windows([{"a", "b"}, {"a"}, {"a"}]), ExponentialSignificance(2.0)
        )
        assert trajectory.at(2).stability == pytest.approx(0.8)
        assert trajectory.at(2).kept_mass == pytest.approx(4.0)
        assert trajectory.at(2).total_mass == pytest.approx(5.0)

    def test_drop_proportional_to_significance(self):
        # "The more significant a product is, the more the stability will
        # decrease if this product is not present in window k."
        history_big = _windows([{1, 2}, {1, 2}, {1, 2}, {2}])  # drop item 1 (S=8)
        history_small = _windows([{1, 2}, {2}, {2}, {2}])  # item 1 faded (S small)
        drop_big = stability_trajectory(1, history_big).at(3).stability
        drop_small = stability_trajectory(1, history_small).at(3).stability
        assert drop_big < drop_small

    def test_new_items_do_not_change_stability(self):
        # An item with c=0 has S=0: buying novelty neither helps nor hurts.
        base = stability_trajectory(1, _windows([{1}, {1}]))
        with_novelty = stability_trajectory(1, _windows([{1}, {1, 99}]))
        assert base.at(1).stability == with_novelty.at(1).stability == 1.0

    def test_empty_window_has_zero_stability(self):
        trajectory = stability_trajectory(1, _windows([{1, 2}, set()]))
        assert trajectory.at(1).stability == 0.0

    def test_no_history_stays_undefined(self):
        trajectory = stability_trajectory(1, _windows([set(), set(), {1}]))
        assert not trajectory.at(0).defined
        assert not trajectory.at(1).defined
        assert not trajectory.at(2).defined  # item 1 is new: no prior mass
        # Once item 1 has been seen, stability becomes defined.
        trajectory2 = stability_trajectory(1, _windows([set(), {1}, {1}]))
        assert trajectory2.at(2).defined


class TestWindowStabilityRecord:
    def test_missing_items(self):
        trajectory = stability_trajectory(1, _windows([{1, 2}, {1}]))
        missing = trajectory.at(1).missing_items()
        assert set(missing) == {2}
        assert missing[2] == pytest.approx(2.0)

    def test_significances_snapshot_is_prior_only(self):
        trajectory = stability_trajectory(1, _windows([{1}, {2}]))
        # At window 1, only item 1 has prior mass.
        assert set(trajectory.at(1).significances) == {1}


class TestTrajectoryApi:
    def test_len_getitem_values(self):
        trajectory = stability_trajectory(7, _windows([{1}, {1}, {1}]))
        assert len(trajectory) == 3
        assert trajectory[1].stability == 1.0
        values = trajectory.values()
        assert math.isnan(values[0]) and values[1:] == [1.0, 1.0]
        assert trajectory.customer_id == 7

    def test_at_out_of_range(self):
        trajectory = stability_trajectory(1, _windows([{1}]))
        with pytest.raises(ConfigError, match="out of range"):
            trajectory.at(5)

    def test_churn_score_complements_stability(self):
        trajectory = stability_trajectory(1, _windows([{1, 2}, {1}]))
        assert trajectory.churn_score(1) == pytest.approx(
            1.0 - trajectory.at(1).stability
        )

    def test_churn_score_neutral_when_undefined(self):
        trajectory = stability_trajectory(1, _windows([{1}]))
        assert trajectory.churn_score(0) == 0.5

    def test_drops_detects_decreases(self):
        trajectory = stability_trajectory(
            1, _windows([{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1}])
        )
        assert trajectory.drops(threshold=0.1) == [3]

    def test_drops_skips_undefined_windows(self):
        trajectory = stability_trajectory(1, _windows([{1}, {1}]))
        assert trajectory.drops() == []


class TestStabilityProperties:
    item_sets = st.lists(
        st.frozensets(st.integers(min_value=0, max_value=6), max_size=5),
        min_size=1,
        max_size=12,
    )

    @settings(max_examples=100, deadline=None)
    @given(item_sets=item_sets, alpha=st.floats(min_value=1.01, max_value=8.0))
    def test_stability_in_unit_interval(self, item_sets, alpha):
        trajectory = stability_trajectory(
            1, _windows(item_sets), ExponentialSignificance(alpha)
        )
        for record in trajectory.records:
            if record.defined:
                assert 0.0 <= record.stability <= 1.0 + 1e-12

    @settings(max_examples=100, deadline=None)
    @given(item_sets=item_sets)
    def test_kept_mass_bounded_by_total(self, item_sets):
        trajectory = stability_trajectory(1, _windows(item_sets))
        for record in trajectory.records:
            assert record.kept_mass <= record.total_mass + 1e-12

    @settings(max_examples=100, deadline=None)
    @given(item_sets=item_sets)
    def test_repeat_everything_gives_stability_one(self, item_sets):
        # Buying the union of everything ever bought keeps stability at 1.
        union: frozenset[int] = frozenset()
        windows = []
        for k, items in enumerate(item_sets):
            union = union | items
            windows.append(
                Window(index=k, begin_day=k, end_day=k + 1, items=union)
            )
        trajectory = stability_trajectory(1, _windows([w.items for w in windows]))
        for record in trajectory.records:
            if record.defined:
                assert record.stability == pytest.approx(1.0)

    @settings(max_examples=60, deadline=None)
    @given(item_sets=item_sets, counting=st.sampled_from(["paper", "since-first-seen"]))
    def test_counting_schemes_share_invariants(self, item_sets, counting):
        trajectory = stability_trajectory(1, _windows(item_sets), counting=counting)
        for record in trajectory.records:
            if record.defined:
                assert 0.0 <= record.stability <= 1.0 + 1e-12

    def test_weighted_stability_weights_the_loss(self):
        # Two equally-habitual items; losing the expensive one hurts more.
        windows = _windows([{1, 2}, {1, 2}, {1, 2}, {2}])
        plain = stability_trajectory(1, windows)
        weighted = stability_trajectory(1, windows, item_weights={1: 9.0, 2: 1.0})
        # Item 1 (weight 9) was dropped: weighted stability falls harder.
        assert weighted.at(3).stability < plain.at(3).stability
        assert weighted.at(3).stability == pytest.approx(1.0 / 10.0)

    def test_weighted_stability_still_one_when_all_kept(self):
        windows = _windows([{1, 2}, {1, 2}, {1, 2}])
        weighted = stability_trajectory(1, windows, item_weights={1: 5.0, 2: 0.5})
        assert weighted.at(2).stability == 1.0

    def test_missing_weight_defaults_to_one(self):
        windows = _windows([{1, 2}, {1, 2}, {2}])
        weighted = stability_trajectory(1, windows, item_weights={1: 1.0})
        plain = stability_trajectory(1, windows)
        assert weighted.at(2).stability == plain.at(2).stability

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            stability_trajectory(1, _windows([{1}]), item_weights={1: 0.0})

    def test_weighted_explanation_reranks(self):
        from repro.core.explanation import explain_window

        windows = _windows([{1, 2}, {1, 2}, {1, 2}, set()])
        weighted = stability_trajectory(1, windows, item_weights={1: 1.0, 2: 50.0})
        explanation = explain_window(weighted, 3)
        assert explanation.top_item is not None
        assert explanation.top_item.item == 2  # the expensive loss leads

    def test_very_long_history_stays_finite(self):
        # Regression: alpha ** (c - l) used to overflow past ~1000 windows.
        windows = _windows([{1, 2}] * 1200 + [{1}])
        trajectory = stability_trajectory(
            1, windows, ExponentialSignificance(8.0)
        )
        final = trajectory.at(1200)
        assert final.defined
        # Both items saturate at the same score, so losing one of two
        # equally-significant items halves the stability.
        assert final.stability == pytest.approx(0.5)
