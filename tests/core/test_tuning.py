"""Tests for repro.core.tuning (the paper's 5-fold CV parameter search)."""

from __future__ import annotations

import pytest

from repro.core.tuning import TuningOutcome, tune_stability_model
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def outcome(request) -> TuningOutcome:
    dataset = request.getfixturevalue("tiny_dataset")
    return tune_stability_model(
        dataset.log,
        dataset.cohorts,
        dataset.calendar,
        window_grid=(1, 2),
        alpha_grid=(1.5, 2.0),
        n_splits=3,
        seed=0,
    )


class TestTuning:
    def test_grid_is_fully_explored(self, outcome: TuningOutcome):
        assert len(outcome.search.table) == 4
        labels = {
            (p["window_months"], p["alpha"]) for p, __, __ in outcome.search.table
        }
        assert labels == {(1, 1.5), (1, 2.0), (2, 1.5), (2, 2.0)}

    def test_best_is_argmax_of_table(self, outcome: TuningOutcome):
        best = max(outcome.search.table, key=lambda entry: entry[1])
        assert outcome.best_score == best[1]
        assert outcome.best_window_months == best[0]["window_months"]
        assert outcome.best_alpha == best[0]["alpha"]

    def test_scores_are_valid_aurocs(self, outcome: TuningOutcome):
        for __, mean_score, fold_scores in outcome.search.table:
            assert 0.0 <= mean_score <= 1.0
            assert all(0.0 <= s <= 1.0 for s in fold_scores)
            assert len(fold_scores) == 3

    def test_detection_is_better_than_chance(self, outcome: TuningOutcome):
        # On synthetic data with injected defection, the best configuration
        # must comfortably separate churners from loyal customers.
        assert outcome.best_score > 0.6

    def test_deterministic(self, tiny_dataset, outcome: TuningOutcome):
        again = tune_stability_model(
            tiny_dataset.log,
            tiny_dataset.cohorts,
            tiny_dataset.calendar,
            window_grid=(1, 2),
            alpha_grid=(1.5, 2.0),
            n_splits=3,
            seed=0,
        )
        assert again.best_score == outcome.best_score
        assert again.best_window_months == outcome.best_window_months

    def test_empty_grid_rejected(self, tiny_dataset):
        with pytest.raises(ConfigError):
            tune_stability_model(
                tiny_dataset.log,
                tiny_dataset.cohorts,
                tiny_dataset.calendar,
                window_grid=(),
            )

    def test_explicit_eval_months(self, tiny_dataset):
        outcome = tune_stability_model(
            tiny_dataset.log,
            tiny_dataset.cohorts,
            tiny_dataset.calendar,
            window_grid=(2,),
            alpha_grid=(2.0,),
            eval_months=(19, 24),
            n_splits=2,
        )
        assert outcome.best_window_months == 2
        assert outcome.best_alpha == 2.0
