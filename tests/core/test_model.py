"""Tests for repro.core.model (StabilityModel facade)."""

from __future__ import annotations

import math

import pytest

from repro.config import ExperimentConfig
from repro.core.model import StabilityModel
from repro.core.significance import FrequencyRatioSignificance
from repro.data.basket import Basket
from repro.data.calendar import StudyCalendar
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, DataError, NotFittedError


@pytest.fixture()
def model(calendar, regular_log) -> StabilityModel:
    return StabilityModel(calendar, window_months=2, alpha=2).fit(regular_log)


class TestConstruction:
    def test_grid_matches_calendar(self, calendar):
        model = StabilityModel(calendar, window_months=2)
        assert model.n_windows == 14

    def test_invalid_window_rejected(self, calendar):
        with pytest.raises(ConfigError):
            StabilityModel(calendar, window_months=0)

    def test_custom_significance_overrides_alpha(self, calendar):
        model = StabilityModel(
            calendar, alpha=5.0, significance=FrequencyRatioSignificance()
        )
        assert model.significance.name == "frequency-ratio"

    def test_default_alpha_two(self, calendar):
        model = StabilityModel(calendar)
        assert model.significance.alpha == 2.0  # type: ignore[attr-defined]


class TestFit:
    def test_unfitted_access_raises(self, calendar):
        model = StabilityModel(calendar)
        assert not model.is_fitted
        with pytest.raises(NotFittedError):
            model.customers()

    def test_fit_all_customers(self, model):
        assert model.is_fitted
        assert model.customers() == [1]

    def test_fit_subset(self, calendar, regular_log):
        log = TransactionLog(regular_log)
        log.add(Basket.of(customer_id=2, day=0, items=[9]))
        model = StabilityModel(calendar).fit(log, customers=[2])
        assert model.customers() == [2]
        with pytest.raises(DataError, match="not fitted"):
            model.trajectory(1)

    def test_unknown_customer_in_fit_raises(self, calendar, regular_log):
        with pytest.raises(DataError, match="unknown customer"):
            StabilityModel(calendar).fit(regular_log, customers=[999])

    def test_refit_replaces_state(self, calendar, regular_log):
        model = StabilityModel(calendar).fit(regular_log)
        log2 = TransactionLog([Basket.of(customer_id=8, day=0, items=[1])])
        model.fit(log2)
        assert model.customers() == [8]


class TestQueries:
    def test_regular_customer_is_fully_stable(self, model):
        trajectory = model.trajectory(1)
        assert math.isnan(trajectory.at(0).stability)
        for k in range(1, model.n_windows):
            assert trajectory.at(k).stability == 1.0

    def test_stability_at(self, model):
        assert model.stability_at(1, 3) == 1.0

    def test_churn_scores_all_customers(self, model):
        scores = model.churn_scores(window_index=3)
        assert scores == {1: 0.0}

    def test_churn_scores_subset(self, model):
        assert model.churn_scores(3, customers=[1]) == {1: 0.0}

    def test_window_month(self, model):
        assert model.window_month(0) == 2
        assert model.window_month(13) == 28

    def test_explain_top_k_truncates(self, calendar):
        log = TransactionLog()
        for month in range(6):
            day = calendar.month_start_day(month)
            items = [1, 2, 3] if month < 4 else [1]
            log.add(Basket.of(customer_id=1, day=day, items=items))
        model = StabilityModel(calendar, window_months=2).fit(log)
        explanation = model.explain(1, 2, top_k=1)
        assert len(explanation.missing) == 1

    def test_detect_returns_first_alarms(self, calendar):
        log = TransactionLog()
        for month in range(28):
            day = calendar.month_start_day(month)
            items = [1, 2] if month < 18 else [1]
            log.add(Basket.of(customer_id=1, day=day, items=items))
        model = StabilityModel(calendar, window_months=2).fit(log)
        alarms = model.detect(beta=0.7)
        assert len(alarms) == 1
        assert model.window_month(alarms[0].window_index) == 20

    def test_detect_no_alarms_for_stable(self, model):
        assert model.detect(beta=0.5) == []


def _churn_log(calendar) -> TransactionLog:
    log = TransactionLog()
    for month in range(28):
        day = calendar.month_start_day(month)
        items = [1, 2] if month < 18 else [1]
        log.add(Basket.of(customer_id=1, day=day, items=items))
        log.add(Basket.of(customer_id=2, day=day, items=[3, 4]))
    return log


class TestBackends:
    def test_unknown_backend_rejected(self, calendar):
        with pytest.raises(ConfigError, match="backend"):
            StabilityModel(calendar, config=ExperimentConfig(backend="gpu"))

    def test_custom_significance_requires_incremental(self, calendar):
        with pytest.raises(ConfigError):
            StabilityModel(
                calendar,
                significance=FrequencyRatioSignificance(),
                config=ExperimentConfig(backend="batch"),
            )

    def test_custom_counting_requires_incremental(self, calendar):
        with pytest.raises(ConfigError):
            StabilityModel(
                calendar,
                config=ExperimentConfig(counting="since-first-seen", backend="batch"),
            )

    def test_item_weights_require_incremental(self, calendar):
        with pytest.raises(ConfigError):
            StabilityModel(
                calendar,
                item_weights={1: 2.0},
                config=ExperimentConfig(backend="vectorized"),
            )

    def test_n_jobs_requires_batch(self, calendar):
        with pytest.raises(ConfigError):
            StabilityModel(
                calendar, config=ExperimentConfig(backend="vectorized", n_jobs=2)
            )

    @pytest.mark.parametrize("backend", ["vectorized", "batch"])
    def test_trajectories_match_incremental(self, calendar, backend):
        log = _churn_log(calendar)
        reference = StabilityModel(calendar, window_months=2).fit(log)
        fast = StabilityModel(
            calendar, config=ExperimentConfig(window_months=2, backend=backend)
        ).fit(log)
        assert fast.customers() == reference.customers()
        for customer in reference.customers():
            slow_t = reference.trajectory(customer)
            fast_t = fast.trajectory(customer)
            for k in range(reference.n_windows):
                slow = slow_t.at(k).stability
                if math.isnan(slow):
                    assert math.isnan(fast_t.at(k).stability)
                else:
                    assert fast_t.at(k).stability == pytest.approx(
                        slow, abs=1e-12
                    )

    @pytest.mark.parametrize("backend", ["vectorized", "batch"])
    def test_churn_scores_and_detect_match(self, calendar, backend):
        log = _churn_log(calendar)
        reference = StabilityModel(calendar, window_months=2).fit(log)
        fast = StabilityModel(
            calendar, config=ExperimentConfig(window_months=2, backend=backend)
        ).fit(log)
        for k in range(reference.n_windows):
            slow = reference.churn_scores(k)
            quick = fast.churn_scores(k)
            assert set(quick) == set(slow)
            for customer, score in slow.items():
                assert quick[customer] == pytest.approx(score, abs=1e-12)
        slow_alarms = reference.detect(beta=0.7)
        fast_alarms = fast.detect(beta=0.7)
        assert [(a.customer_id, a.window_index) for a in fast_alarms] == [
            (a.customer_id, a.window_index) for a in slow_alarms
        ]
        for fast_alarm, slow_alarm in zip(fast_alarms, slow_alarms):
            assert fast_alarm.stability == pytest.approx(
                slow_alarm.stability, abs=1e-12
            )

    def test_batch_explain_matches_incremental(self, calendar):
        log = _churn_log(calendar)
        reference = StabilityModel(calendar, window_months=2).fit(log)
        fast = StabilityModel(
            calendar, config=ExperimentConfig(window_months=2, backend="batch")
        ).fit(log)
        k = next(
            k
            for k in range(reference.n_windows)
            if reference.stability_at(1, k) < 1.0
        )
        slow = reference.explain(1, k)
        quick = fast.explain(1, k)
        assert quick.stability == pytest.approx(slow.stability, abs=1e-12)
        assert [m.item for m in quick.missing] == [m.item for m in slow.missing]

    def test_batch_trajectory_is_cached(self, calendar):
        model = StabilityModel(
            calendar, config=ExperimentConfig(backend="batch")
        ).fit(_churn_log(calendar))
        assert model.trajectory(1) is model.trajectory(1)

    def test_batch_unknown_customer(self, calendar):
        model = StabilityModel(
            calendar, config=ExperimentConfig(backend="batch")
        ).fit(_churn_log(calendar))
        with pytest.raises(DataError, match="not fitted"):
            model.trajectory(999)

    def test_batch_unfitted_raises(self, calendar):
        model = StabilityModel(calendar, config=ExperimentConfig(backend="batch"))
        with pytest.raises(NotFittedError):
            model.customers()

    def test_parallel_fit_matches_serial(self, calendar):
        log = _churn_log(calendar)
        serial = StabilityModel(calendar, config=ExperimentConfig(backend="batch")).fit(log)
        parallel = StabilityModel(
            calendar, config=ExperimentConfig(backend="batch", n_jobs=2)
        ).fit(log)
        for customer in serial.customers():
            for k in range(serial.n_windows):
                a = serial.stability_at(customer, k)
                b = parallel.stability_at(customer, k)
                assert (math.isnan(a) and math.isnan(b)) or a == b


class TestEndToEndDrop:
    def test_dropping_an_item_lowers_stability_and_names_it(self, calendar):
        log = TransactionLog()
        for month in range(28):
            day = calendar.month_start_day(month) + 1
            items = [1, 2, 3] if month < 20 else [2, 3]
            log.add(Basket.of(customer_id=4, day=day, items=items))
        model = StabilityModel(calendar, window_months=2).fit(log)
        # Item 1 vanishes from calendar month 20 => window [20,22) ends at 22.
        k = next(
            k for k in range(model.n_windows) if model.window_month(k) == 22
        )
        assert model.stability_at(4, k) < 1.0
        assert model.stability_at(4, k - 1) == 1.0
        explanation = model.explain(4, k)
        assert explanation.top_item is not None
        assert explanation.top_item.item == 1
