"""Tests for repro.core.significance — the paper's S(p, k)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.significance import (
    COUNTING_SCHEMES,
    ExponentialSignificance,
    FrequencyRatioSignificance,
    ItemCounts,
    LinearSignificance,
    SignificanceTracker,
)
from repro.errors import ConfigError, ConfigWarning


class TestExponentialSignificance:
    def test_paper_formula(self):
        sig = ExponentialSignificance(alpha=2.0)
        assert sig(c=3, l=1) == 4.0  # 2 ** (3 - 1)
        assert sig(c=1, l=3) == 0.25  # 2 ** (1 - 3)

    def test_zero_when_never_seen(self):
        sig = ExponentialSignificance(alpha=2.0)
        assert sig(c=0, l=5) == 0.0

    def test_alpha_one_is_flat(self):
        with pytest.warns(ConfigWarning):
            sig = ExponentialSignificance(alpha=1.0)
        assert sig(c=5, l=0) == 1.0
        assert sig(c=1, l=4) == 1.0

    def test_nonpositive_alpha_rejected(self):
        with pytest.raises(ConfigError):
            ExponentialSignificance(alpha=0.0)

    def test_alpha_below_one_warns(self):
        with pytest.warns(ConfigWarning, match="alpha"):
            ExponentialSignificance(alpha=0.5)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigError):
            ExponentialSignificance()(c=-1, l=0)

    @given(
        c=st.integers(min_value=1, max_value=20),
        l=st.integers(min_value=0, max_value=20),
    )
    def test_monotone_in_c(self, c: int, l: int):
        sig = ExponentialSignificance(alpha=2.0)
        assert sig(c + 1, l) > sig(c, l)

    @given(
        c=st.integers(min_value=1, max_value=20),
        l=st.integers(min_value=0, max_value=20),
    )
    def test_antitone_in_l(self, c: int, l: int):
        sig = ExponentialSignificance(alpha=2.0)
        assert sig(c, l + 1) < sig(c, l)

    def test_name(self):
        assert ExponentialSignificance().name == "exponential"

    def test_long_history_saturates_instead_of_overflowing(self):
        # 8 ** 400 overflows a double; the score must saturate, not crash.
        sig = ExponentialSignificance(alpha=8.0)
        import math

        value = sig(c=400, l=0)
        assert math.isfinite(value)
        assert value > 1e300

    def test_deep_negative_margin_underflows_to_zero(self):
        sig = ExponentialSignificance(alpha=8.0)
        assert sig(c=1, l=500) == 0.0

    def test_saturation_preserves_small_margins_exactly(self):
        sig = ExponentialSignificance(alpha=2.0)
        assert sig(c=10, l=3) == pytest.approx(2.0**7)


class TestAlternativeFunctions:
    def test_frequency_ratio(self):
        sig = FrequencyRatioSignificance()
        assert sig(c=3, l=1) == 0.75
        assert sig(c=0, l=5) == 0.0

    def test_frequency_ratio_bounded(self):
        sig = FrequencyRatioSignificance()
        assert 0.0 < sig(c=1, l=100) <= 1.0

    def test_linear(self):
        sig = LinearSignificance()
        assert sig(c=5, l=2) == 3.0
        assert sig(c=1, l=4) == 0.0  # clipped at zero

    def test_all_share_zero_when_unseen(self):
        for sig in (
            ExponentialSignificance(),
            FrequencyRatioSignificance(),
            LinearSignificance(),
        ):
            assert sig(c=0, l=3) == 0.0


class TestTrackerPaperScheme:
    def test_counts_sum_to_window_index(self):
        # Paper semantics: c(k) + l(k) = k for every item ever seen.
        tracker = SignificanceTracker()
        tracker.observe_window({1})
        tracker.observe_window(set())
        tracker.observe_window({1, 2})
        counts_1 = tracker.counts_of(1)
        counts_2 = tracker.counts_of(2)
        assert (counts_1.c, counts_1.l) == (2, 1)
        # Item 2 first appears at window 2 but prior windows count as misses.
        assert (counts_2.c, counts_2.l) == (1, 2)

    def test_significance_before_first_observation_is_zero(self):
        tracker = SignificanceTracker()
        assert tracker.significance_of(1) == 0.0
        assert tracker.significance_snapshot() == {}

    def test_docstring_example(self):
        tracker = SignificanceTracker(ExponentialSignificance(alpha=2))
        tracker.observe_window({1, 2})
        assert tracker.significance_of(1) == 2.0
        tracker.observe_window({1})
        assert tracker.significance_of(2) == 1.0  # c=1, l=1
        assert tracker.significance_of(1) == 4.0  # c=2, l=0

    def test_known_items(self):
        tracker = SignificanceTracker()
        tracker.observe_window({1, 2})
        tracker.observe_window({3})
        assert tracker.known_items() == frozenset({1, 2, 3})

    def test_unseen_item_counts(self):
        tracker = SignificanceTracker()
        tracker.observe_window({1})
        counts = tracker.counts_of(99)
        assert counts.c == 0
        assert counts.l == 1  # paper scheme: all prior windows are misses

    def test_n_windows_observed(self):
        tracker = SignificanceTracker()
        assert tracker.n_windows_observed == 0
        tracker.observe_window(set())
        assert tracker.n_windows_observed == 1

    def test_duplicate_items_in_window_count_once(self):
        tracker = SignificanceTracker()
        tracker.observe_window([1, 1, 1])
        assert tracker.counts_of(1).c == 1


class TestTrackerSinceFirstSeenScheme:
    def test_prior_absences_not_counted(self):
        tracker = SignificanceTracker(counting="since-first-seen")
        tracker.observe_window(set())
        tracker.observe_window(set())
        tracker.observe_window({1})
        counts = tracker.counts_of(1)
        assert (counts.c, counts.l) == (1, 0)

    def test_absences_after_first_seen_counted(self):
        tracker = SignificanceTracker(counting="since-first-seen")
        tracker.observe_window({1})
        tracker.observe_window(set())
        tracker.observe_window(set())
        counts = tracker.counts_of(1)
        assert (counts.c, counts.l) == (1, 2)

    def test_unseen_item_has_zero_l(self):
        tracker = SignificanceTracker(counting="since-first-seen")
        tracker.observe_window({1})
        assert tracker.counts_of(99) == ItemCounts(c=0, l=0)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError, match="counting scheme"):
            SignificanceTracker(counting="bogus")

    def test_schemes_constant(self):
        assert COUNTING_SCHEMES == ("paper", "since-first-seen")


class TestTrackerProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        windows=st.lists(
            st.frozensets(st.integers(min_value=0, max_value=5), max_size=4),
            max_size=10,
        )
    )
    def test_paper_scheme_counts_invariant(self, windows):
        tracker = SignificanceTracker()
        for window in windows:
            tracker.observe_window(window)
        for item in tracker.known_items():
            counts = tracker.counts_of(item)
            assert counts.c + counts.l == len(windows)
            assert counts.c == sum(1 for w in windows if item in w)

    @settings(max_examples=50, deadline=None)
    @given(
        windows=st.lists(
            st.frozensets(st.integers(min_value=0, max_value=5), max_size=4),
            max_size=10,
        )
    )
    def test_snapshot_matches_significance_of(self, windows):
        tracker = SignificanceTracker()
        for window in windows:
            tracker.observe_window(window)
        snapshot = tracker.significance_snapshot()
        for item, sig in snapshot.items():
            assert sig == tracker.significance_of(item)
        # Snapshot covers exactly the items seen at least once.
        assert set(snapshot) == set(tracker.known_items())
