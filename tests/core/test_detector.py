"""Tests for repro.core.detector — the paper's beta-threshold rule."""

from __future__ import annotations

import pytest

from repro.core.detector import ThresholdDetector
from repro.core.stability import stability_trajectory
from repro.core.windowing import Window
from repro.errors import ConfigError


def _windows(item_sets) -> list[Window]:
    return [
        Window(index=k, begin_day=k * 10, end_day=(k + 1) * 10, items=frozenset(items))
        for k, items in enumerate(item_sets)
    ]


@pytest.fixture()
def defecting():
    # Stability: nan, 1.0, 1.0, then a drop to 0.5 at window 3.
    return stability_trajectory(1, _windows([{1, 2}, {1, 2}, {1, 2}, {1}]))


class TestThresholdRule:
    def test_paper_rule_strictly_above_is_loyal(self, defecting):
        detector = ThresholdDetector(beta=0.5)
        # stability == beta means defecting ("otherwise" branch).
        assert detector.is_defecting(defecting, 3)
        assert not detector.is_defecting(defecting, 1)

    def test_beta_one_flags_every_defined_window(self, defecting):
        detector = ThresholdDetector(beta=1.0)
        assert detector.is_defecting(defecting, 1)

    def test_beta_zero_never_fires_on_positive_stability(self, defecting):
        detector = ThresholdDetector(beta=0.0)
        assert not detector.is_defecting(defecting, 3)

    def test_undefined_stability_is_loyal(self, defecting):
        detector = ThresholdDetector(beta=0.9)
        assert not detector.is_defecting(defecting, 0)

    def test_invalid_beta_rejected(self):
        with pytest.raises(ConfigError):
            ThresholdDetector(beta=1.5)
        with pytest.raises(ConfigError):
            ThresholdDetector(beta=-0.1)


class TestAlarms:
    def test_alarms_list(self, defecting):
        alarms = ThresholdDetector(beta=0.6).alarms(defecting)
        assert [a.window_index for a in alarms] == [3]
        assert alarms[0].customer_id == 1
        # At window 3, items 1 and 2 each carry S=8; dropping item 2
        # halves the kept mass.
        assert alarms[0].stability == pytest.approx(0.5)

    def test_first_alarm(self, defecting):
        alarm = ThresholdDetector(beta=0.9).first_alarm(defecting)
        assert alarm is not None
        assert alarm.window_index == 3

    def test_no_alarm_for_loyal(self):
        loyal = stability_trajectory(1, _windows([{1}, {1}, {1}]))
        assert ThresholdDetector(beta=0.5).first_alarm(loyal) is None

    def test_default_beta(self):
        assert ThresholdDetector().beta == 0.5

    def test_burn_in_suppresses_early_alarms(self, defecting):
        detector = ThresholdDetector(beta=0.6)
        assert detector.alarms(defecting, first_window=4) == []
        assert detector.first_alarm(defecting, first_window=4) is None

    def test_burn_in_keeps_later_alarms(self, defecting):
        detector = ThresholdDetector(beta=0.6)
        alarms = detector.alarms(defecting, first_window=3)
        assert [a.window_index for a in alarms] == [3]

    def test_negative_burn_in_rejected(self, defecting):
        with pytest.raises(ConfigError, match="first_window"):
            ThresholdDetector().alarms(defecting, first_window=-1)
