"""Tests for repro.core.windowing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.windowing import Window, WindowGrid, windowed_history
from repro.data.basket import Basket
from repro.data.calendar import StudyCalendar
from repro.errors import ConfigError


class TestMonthlyGrid:
    def test_paper_grid_has_14_windows(self):
        grid = WindowGrid.monthly(StudyCalendar.paper(), 2)
        assert grid.n_windows == 14
        assert grid.months_per_window == 2

    def test_boundaries_cover_study(self):
        cal = StudyCalendar.paper()
        grid = WindowGrid.monthly(cal, 2)
        assert grid.boundaries[0] == 0
        assert grid.boundaries[-1] == cal.n_days

    def test_trailing_partial_window_dropped(self):
        cal = StudyCalendar(n_months=7)
        grid = WindowGrid.monthly(cal, 3)
        assert grid.n_windows == 2
        assert grid.boundaries[-1] == cal.month_start_day(6)

    def test_end_months_are_multiples_of_span(self):
        cal = StudyCalendar.paper()
        grid = WindowGrid.monthly(cal, 2)
        assert [grid.end_month(k, cal) for k in range(grid.n_windows)] == list(
            range(2, 29, 2)
        )

    def test_window_too_large_rejected(self):
        with pytest.raises(ConfigError, match="does not fit"):
            WindowGrid.monthly(StudyCalendar(n_months=2), 3)

    def test_nonpositive_span_rejected(self):
        with pytest.raises(ConfigError):
            WindowGrid.monthly(StudyCalendar.paper(), 0)


class TestDailyGrid:
    def test_fixed_spans(self):
        grid = WindowGrid.daily(total_days=100, days_per_window=30)
        assert grid.n_windows == 3
        assert grid.bounds(1) == (30, 60)

    def test_does_not_fit_rejected(self):
        with pytest.raises(ConfigError):
            WindowGrid.daily(total_days=5, days_per_window=10)


class TestGridQueries:
    def test_bounds_out_of_range(self):
        grid = WindowGrid.daily(100, 50)
        with pytest.raises(ConfigError, match="out of range"):
            grid.bounds(2)

    def test_window_of_day(self):
        grid = WindowGrid.daily(100, 25)
        assert grid.window_of_day(0) == 0
        assert grid.window_of_day(24) == 0
        assert grid.window_of_day(25) == 1
        assert grid.window_of_day(99) == 3

    def test_window_of_day_outside(self):
        grid = WindowGrid.daily(100, 25)
        assert grid.window_of_day(-1) is None
        assert grid.window_of_day(100) is None

    def test_single_window_minimum(self):
        with pytest.raises(ConfigError):
            WindowGrid(boundaries=(0,))

    def test_non_increasing_boundaries_rejected(self):
        with pytest.raises(ConfigError, match="strictly increasing"):
            WindowGrid(boundaries=(0, 10, 10))


class TestWindowedHistory:
    @pytest.fixture()
    def grid(self) -> WindowGrid:
        return WindowGrid.daily(total_days=30, days_per_window=10)

    def test_union_of_basket_items(self, grid: WindowGrid):
        baskets = [
            Basket.of(customer_id=1, day=0, items=[1, 2], monetary=2.0),
            Basket.of(customer_id=1, day=5, items=[2, 3], monetary=3.0),
        ]
        windows = windowed_history(baskets, grid)
        assert windows[0].items == frozenset({1, 2, 3})
        assert windows[0].n_baskets == 2
        assert windows[0].monetary == pytest.approx(5.0)

    def test_empty_windows_materialised(self, grid: WindowGrid):
        baskets = [Basket.of(customer_id=1, day=25, items=[1])]
        windows = windowed_history(baskets, grid)
        assert len(windows) == 3
        assert windows[0].items == frozenset()
        assert windows[1].items == frozenset()
        assert windows[2].items == frozenset({1})

    def test_baskets_outside_grid_ignored(self, grid: WindowGrid):
        baskets = [Basket.of(customer_id=1, day=99, items=[1])]
        windows = windowed_history(baskets, grid)
        assert all(w.items == frozenset() for w in windows)

    def test_no_baskets(self, grid: WindowGrid):
        windows = windowed_history([], grid)
        assert len(windows) == 3
        assert all(w.n_baskets == 0 for w in windows)

    def test_window_metadata(self, grid: WindowGrid):
        windows = windowed_history([], grid)
        assert [w.index for w in windows] == [0, 1, 2]
        assert windows[1].begin_day == 10
        assert windows[1].end_day == 20
        assert windows[1].span_days == 10

    def test_boundary_day_goes_to_later_window(self, grid: WindowGrid):
        baskets = [Basket.of(customer_id=1, day=10, items=[7])]
        windows = windowed_history(baskets, grid)
        assert 7 not in windows[0].items
        assert 7 in windows[1].items

    @settings(max_examples=30, deadline=None)
    @given(
        days=st.lists(st.integers(min_value=0, max_value=29), max_size=20),
    )
    def test_total_baskets_preserved(self, days: list[int]):
        grid = WindowGrid.daily(total_days=30, days_per_window=10)
        baskets = [Basket.of(customer_id=1, day=d, items=[1]) for d in days]
        windows = windowed_history(baskets, grid)
        assert sum(w.n_baskets for w in windows) == len(days)


class TestWindowDataclass:
    def test_frozen(self):
        window = Window(index=0, begin_day=0, end_day=10, items=frozenset())
        with pytest.raises(AttributeError):
            window.index = 1  # type: ignore[misc]
