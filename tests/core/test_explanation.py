"""Tests for repro.core.explanation — the paper's argmax explanation."""

from __future__ import annotations

import pytest

from repro.core.explanation import explain_drop, explain_trajectory, explain_window
from repro.core.stability import stability_trajectory
from repro.core.windowing import Window
from repro.errors import ConfigError


def _windows(item_sets) -> list[Window]:
    return [
        Window(index=k, begin_day=k * 10, end_day=(k + 1) * 10, items=frozenset(items))
        for k, items in enumerate(item_sets)
    ]


@pytest.fixture()
def trajectory():
    # Items: 1 bought every window (most significant), 2 bought in the
    # first two, 3 only in the first.  Window 3 drops everything but 1.
    return stability_trajectory(
        5, _windows([{1, 2, 3}, {1, 2}, {1, 2}, {1}])
    )


class TestExplainWindow:
    def test_argmax_is_most_significant_missing(self, trajectory):
        explanation = explain_window(trajectory, 3)
        # At k=3: item 2 has c=3,l=0 -> S=8; item 3 has c=1,l=2 -> S=0.5.
        assert explanation.top_item is not None
        assert explanation.top_item.item == 2
        assert explanation.top_item.significance == pytest.approx(8.0)

    def test_ranking_order(self, trajectory):
        explanation = explain_window(trajectory, 3)
        assert [m.item for m in explanation.missing] == [2, 3]

    def test_shares_sum_to_lost_stability(self, trajectory):
        explanation = explain_window(trajectory, 3)
        record = trajectory.at(3)
        lost = 1.0 - record.stability
        assert sum(m.share for m in explanation.missing) == pytest.approx(lost)

    def test_newly_missing_restricted_to_previous_window(self, trajectory):
        explanation = explain_window(trajectory, 3)
        # Item 3 was already missing in window 2, so only 2 is *newly* missing.
        assert [m.item for m in explanation.newly_missing] == [2]

    def test_no_missing_items(self):
        trajectory = stability_trajectory(1, _windows([{1}, {1}]))
        explanation = explain_window(trajectory, 1)
        assert explanation.missing == ()
        assert explanation.top_item is None

    def test_window_zero_has_no_previous(self):
        trajectory = stability_trajectory(1, _windows([{1}, {1}]))
        explanation = explain_window(trajectory, 0)
        assert explanation.newly_missing == ()

    def test_explicit_previous_items(self, trajectory):
        explanation = explain_window(trajectory, 3, previous_items=frozenset({3}))
        assert [m.item for m in explanation.newly_missing] == [3]

    def test_metadata(self, trajectory):
        explanation = explain_window(trajectory, 3)
        assert explanation.customer_id == 5
        assert explanation.window_index == 3
        assert explanation.stability == trajectory.at(3).stability

    def test_top_items_k(self, trajectory):
        explanation = explain_window(trajectory, 3)
        assert len(explanation.top_items(1)) == 1
        assert len(explanation.top_items(10)) == 2

    def test_top_items_negative_rejected(self, trajectory):
        explanation = explain_window(trajectory, 3)
        with pytest.raises(ConfigError):
            explanation.top_items(-1)

    def test_deterministic_tie_break_by_item_id(self):
        # Two items with identical significance rank by ascending id.
        trajectory = stability_trajectory(1, _windows([{1, 2}, {1, 2}, set()]))
        explanation = explain_window(trajectory, 2)
        assert [m.item for m in explanation.missing] == [1, 2]


class TestExplainDropAndTrajectory:
    def test_explain_drop_alias(self, trajectory):
        assert explain_drop(trajectory, 3) == explain_window(trajectory, 3)

    def test_explain_trajectory_covers_all_drops(self, trajectory):
        explanations = explain_trajectory(trajectory, drop_threshold=0.05)
        explained_windows = {e.window_index for e in explanations}
        assert explained_windows == set(trajectory.drops(0.05))

    def test_explain_trajectory_empty_when_stable(self):
        trajectory = stability_trajectory(1, _windows([{1}, {1}, {1}]))
        assert explain_trajectory(trajectory) == []
