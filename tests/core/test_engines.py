"""The engine registry that replaced the model's if/elif backend chain."""

from __future__ import annotations

import pytest

from repro.core.engines import (
    EngineFit,
    FitSpec,
    StabilityEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.core.significance import ExponentialSignificance, LinearSignificance
from repro.errors import ConfigError


def spec(**overrides) -> FitSpec:
    defaults = dict(significance=ExponentialSignificance(2.0))
    defaults.update(overrides)
    return FitSpec(**defaults)


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert available_engines() == ("incremental", "vectorized", "batch")

    def test_get_engine_round_trips_names(self):
        for name in available_engines():
            engine = get_engine(name)
            assert engine.name == name
            assert isinstance(engine, StabilityEngine)

    def test_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown backend 'gpu'"):
            get_engine("gpu")

    def test_register_custom_engine(self):
        class DummyEngine:
            name = "dummy"

            def validate(self, spec):
                pass

            def fit(self, frame, spec):
                return EngineFit(trajectories={})

        from repro.core import engines

        register_engine(DummyEngine())
        try:
            assert "dummy" in available_engines()
            assert get_engine("dummy").fit(None, None).trajectories == {}
        finally:
            engines._REGISTRY.pop("dummy")
        assert "dummy" not in available_engines()

    def test_nameless_engine_rejected(self):
        class Nameless:
            name = ""

        with pytest.raises(ConfigError, match="non-empty name"):
            register_engine(Nameless())


class TestValidation:
    def test_incremental_accepts_any_rule(self):
        get_engine("incremental").validate(
            spec(significance=LinearSignificance(), counting="since-first-seen")
        )

    @pytest.mark.parametrize("name", ["vectorized", "batch"])
    def test_numpy_engines_require_exponential(self, name):
        with pytest.raises(ConfigError, match="ExponentialSignificance"):
            get_engine(name).validate(spec(significance=LinearSignificance()))

    @pytest.mark.parametrize("name", ["vectorized", "batch"])
    def test_numpy_engines_require_paper_counting(self, name):
        with pytest.raises(ConfigError, match="counting"):
            get_engine(name).validate(spec(counting="since-first-seen"))

    @pytest.mark.parametrize("name", ["vectorized", "batch"])
    def test_numpy_engines_reject_item_weights(self, name):
        with pytest.raises(ConfigError, match="item_weights"):
            get_engine(name).validate(spec(item_weights={1: 2.0}))

    @pytest.mark.parametrize("name", ["incremental", "vectorized"])
    def test_serial_engines_reject_parallel_fit(self, name):
        with pytest.raises(ConfigError, match="n_jobs"):
            get_engine(name).validate(spec(n_jobs=4))

    def test_batch_accepts_parallel_fit(self):
        get_engine("batch").validate(spec(n_jobs=4))
