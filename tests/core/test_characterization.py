"""Tests for repro.core.characterization (the paper's future work)."""

from __future__ import annotations

import pytest

from repro.core.characterization import (
    classify_loss,
    loss_events,
    profile_population,
)
from repro.core.stability import stability_trajectory
from repro.core.windowing import Window
from repro.errors import ConfigError
from repro.synth.catalog import build_catalog


def _windows(item_sets) -> list[Window]:
    return [
        Window(index=k, begin_day=k * 10, end_day=(k + 1) * 10, items=frozenset(items))
        for k, items in enumerate(item_sets)
    ]


class TestClassifyLoss:
    def test_abrupt_when_streak_unbroken(self):
        assert classify_loss([True, True, True], 3) == "abrupt"

    def test_fading_when_recent_misses(self):
        assert classify_loss([True, False, True], 3) == "fading"

    def test_short_history_uses_what_exists(self):
        assert classify_loss([True], 1) == "abrupt"
        assert classify_loss([False], 1) == "fading"

    def test_only_last_three_windows_considered(self):
        # Early misses do not matter if the recent streak is clean.
        assert classify_loss([False, True, True, True], 4) == "abrupt"

    def test_invalid_position_rejected(self):
        with pytest.raises(ConfigError):
            classify_loss([True], 0)


class TestLossEvents:
    def test_single_abrupt_loss(self):
        trajectory = stability_trajectory(
            1, _windows([{1, 2}, {1, 2}, {1, 2}, {1}])
        )
        events = loss_events(trajectory)
        assert len(events) == 1
        event = events[0]
        assert event.item == 2
        assert event.window_index == 3
        assert event.kind == "abrupt"
        assert event.recovered_window is None
        assert event.share == pytest.approx(0.5)

    def test_recovery_detected(self):
        trajectory = stability_trajectory(
            1, _windows([{1, 2}, {1, 2}, {1}, {1, 2}])
        )
        events = loss_events(trajectory)
        assert len(events) == 1
        assert events[0].recovered_window == 3

    def test_fading_loss(self):
        # Item 2 misses window 1, returns in 2, gone from 3: the final
        # loss is classified as fading (broken streak in the lookback).
        trajectory = stability_trajectory(
            1, _windows([{1, 2}, {1}, {1, 2}, {1}, {1}])
        )
        events = loss_events(trajectory)
        kinds = {(e.window_index, e.kind) for e in events}
        assert (3, "fading") in kinds

    def test_min_share_filters_insignificant_items(self):
        trajectory = stability_trajectory(
            1, _windows([{1, 2}, {1}, {1}, {1}, {1}, {1, 3}, {1}])
        )
        # Item 3 appears once then vanishes with tiny significance.
        events = loss_events(trajectory, min_share=0.2)
        assert all(e.item != 3 for e in events)
        events_loose = loss_events(trajectory, min_share=0.0)
        assert any(e.item == 3 for e in events_loose)

    def test_invalid_min_share(self):
        trajectory = stability_trajectory(1, _windows([{1}]))
        with pytest.raises(ConfigError):
            loss_events(trajectory, min_share=2.0)

    def test_events_ordered(self):
        trajectory = stability_trajectory(
            1, _windows([{1, 2, 3}, {1, 2, 3}, {1, 3}, {1}])
        )
        events = loss_events(trajectory)
        positions = [e.window_index for e in events]
        assert positions == sorted(positions)

    def test_no_events_for_stable_customer(self):
        trajectory = stability_trajectory(1, _windows([{1}, {1}, {1}]))
        assert loss_events(trajectory) == []


class TestPopulationProfile:
    @pytest.fixture()
    def profile(self):
        trajectories = [
            stability_trajectory(1, _windows([{1, 2}, {1, 2}, {1, 2}, {1}])),
            stability_trajectory(2, _windows([{1, 2}, {1, 2}, {2}, {2}])),
            stability_trajectory(3, _windows([{2}, {2}, {2}, {2}])),
        ]
        return profile_population(trajectories)

    def test_counts(self, profile):
        assert profile.n_customers == 3
        assert profile.n_events == 2
        assert profile.segments[2].n_losses == 1  # customer 1 lost item 2
        assert profile.segments[1].n_losses == 1  # customer 2 lost item 1

    def test_top_lost_ordering(self, profile):
        top = profile.top_lost(k=5)
        assert len(top) == 2
        assert all(s.n_losses >= 1 for s in top)

    def test_rates(self, profile):
        summary = profile.segments[2]
        assert summary.abrupt_rate == 1.0
        assert summary.recovery_rate == 0.0

    def test_department_rollup(self):
        catalog = build_catalog(n_segments=60, products_per_segment=2)
        coffee = catalog.segment_by_name("Coffee").segment_id
        milk = catalog.segment_by_name("Milk").segment_id
        trajectories = [
            stability_trajectory(
                1, _windows([{coffee, milk}, {coffee, milk}, {coffee, milk}, {milk}])
            )
        ]
        profile = profile_population(trajectories)
        rollup = profile.department_rollup(catalog)
        assert rollup == {"Beverages": 1}

    def test_synthetic_churners_lose_more_than_loyal(self, small_dataset):
        from repro.core.model import StabilityModel

        model = StabilityModel(small_dataset.calendar).fit(small_dataset.log)
        loyal = [model.trajectory(c) for c in sorted(small_dataset.cohorts.loyal)]
        churn = [model.trajectory(c) for c in sorted(small_dataset.cohorts.churners)]
        loyal_profile = profile_population(loyal, min_share=0.03)
        churn_profile = profile_population(churn, min_share=0.03)
        assert churn_profile.n_events > loyal_profile.n_events
