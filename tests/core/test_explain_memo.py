"""explain() memoization: snapshot recomputation happens once per customer.

The numpy backends drop per-window significance snapshots; ``explain()``
transparently rebuilds them through the incremental kernel.  That rebuild
is memoised per ``(customer, config)`` — a second ``explain()`` on the
same customer must do no kernel work.
"""

from __future__ import annotations

import pytest

import repro.core.model as model_module
from repro.config import ExperimentConfig
from repro.core.model import StabilityModel


@pytest.fixture()
def kernel_calls(monkeypatch):
    """Count calls into the incremental snapshot kernel."""
    calls = []
    real = model_module.stability_trajectory

    def counting(*args, **kwargs):
        calls.append(args[0])  # customer id
        return real(*args, **kwargs)

    monkeypatch.setattr(model_module, "stability_trajectory", counting)
    return calls


def test_second_explain_does_no_kernel_work(small_dataset, kernel_calls):
    churners = sorted(small_dataset.cohorts.churners)[:2]
    model = StabilityModel(
        small_dataset.calendar, config=ExperimentConfig(backend="batch")
    ).fit(
        small_dataset.log, churners
    )
    customer = churners[0]
    assert kernel_calls == []  # the batch fit itself never touches it

    first = model.explain(customer, 9)
    assert kernel_calls == [customer]

    second = model.explain(customer, 10, top_k=2)
    assert kernel_calls == [customer]  # memoised: no second kernel call
    assert first.customer_id == second.customer_id == customer


def test_each_customer_recomputed_once(small_dataset, kernel_calls):
    churners = sorted(small_dataset.cohorts.churners)[:2]
    model = StabilityModel(
        small_dataset.calendar, config=ExperimentConfig(backend="batch")
    ).fit(
        small_dataset.log, churners
    )
    for customer in churners:
        model.explain(customer, 9)
        model.explain(customer, 9)
    assert kernel_calls == churners


def test_refit_invalidates_memo(small_dataset, kernel_calls):
    churners = sorted(small_dataset.cohorts.churners)[:1]
    model = StabilityModel(
        small_dataset.calendar, config=ExperimentConfig(backend="batch")
    ).fit(
        small_dataset.log, churners
    )
    model.explain(churners[0], 9)
    model.fit(small_dataset.log, churners)
    model.explain(churners[0], 9)
    assert kernel_calls == [churners[0], churners[0]]


def test_incremental_backend_bypasses_memo(small_dataset):
    churners = sorted(small_dataset.cohorts.churners)[:1]
    model = StabilityModel(small_dataset.calendar).fit(
        small_dataset.log, churners
    )
    model.explain(churners[0], 9)
    assert model._snapshot_cache == {}  # full snapshots already on hand
