"""Tests for repro.core.streaming (online StabilityMonitor)."""

from __future__ import annotations

import math

import pytest

from repro.core.model import StabilityModel
from repro.core.streaming import StabilityMonitor
from repro.core.windowing import WindowGrid
from repro.data.basket import Basket
from repro.errors import ConfigError, DataError


@pytest.fixture()
def grid() -> WindowGrid:
    return WindowGrid.daily(total_days=60, days_per_window=10)


def _basket(customer: int, day: int, items) -> Basket:
    return Basket.of(customer_id=customer, day=day, items=items)


class TestValidation:
    def test_bad_beta_rejected(self, grid):
        with pytest.raises(ConfigError):
            StabilityMonitor(grid, beta=1.5)

    def test_negative_burn_in_rejected(self, grid):
        with pytest.raises(ConfigError):
            StabilityMonitor(grid, first_alarm_window=-1)

    def test_out_of_order_rejected(self, grid):
        monitor = StabilityMonitor(grid)
        monitor.ingest(_basket(1, 30, [1]))
        with pytest.raises(DataError, match="day order"):
            monitor.ingest(_basket(1, 10, [1]))

    def test_cross_window_out_of_order_names_closed_window(self, grid):
        # Day 30 opens window 3 and closes 0-2; a basket for day 10
        # belongs to the already-scored window 1, which must refuse with
        # customer/day/window context rather than fold in silently.
        monitor = StabilityMonitor(grid)
        monitor.ingest(_basket(1, 30, [1]))
        with pytest.raises(
            DataError,
            match=r"customer 7: basket at day 10 predates the open window 3",
        ):
            monitor.ingest(_basket(7, 10, [1]))

    def test_same_window_out_of_order_names_customer_and_days(self, grid):
        # Days 15 and 12 share window 1: assignment would be unharmed,
        # but day order is still the stream contract.
        monitor = StabilityMonitor(grid)
        monitor.ingest(_basket(1, 15, [1]))
        with pytest.raises(
            DataError, match=r"customer 2: .*day 12 after day 15"
        ):
            monitor.ingest(_basket(2, 12, [1]))

    def test_outside_grid_rejected(self, grid):
        monitor = StabilityMonitor(grid)
        with pytest.raises(DataError, match="outside"):
            monitor.ingest(_basket(1, 99, [1]))

    def test_ingest_after_finish_rejected(self, grid):
        monitor = StabilityMonitor(grid)
        monitor.finish()
        with pytest.raises(DataError, match="finished"):
            monitor.ingest(_basket(1, 0, [1]))

    def test_unknown_customer_state_rejected(self, grid):
        with pytest.raises(DataError, match="not in the stream"):
            StabilityMonitor(grid).state_of(9)


class TestWindowClosing:
    def test_reports_emitted_when_time_advances(self, grid):
        monitor = StabilityMonitor(grid)
        assert monitor.ingest(_basket(1, 0, [1])) == []
        reports = monitor.ingest(_basket(1, 25, [1]))
        assert [r.window_index for r in reports] == [0, 1]
        assert monitor.current_window == 2

    def test_finish_closes_remaining_windows(self, grid):
        monitor = StabilityMonitor(grid)
        monitor.ingest(_basket(1, 0, [1]))
        reports = monitor.finish()
        assert [r.window_index for r in reports] == list(range(6))
        assert monitor.finish() == []  # idempotent

    def test_first_window_stability_undefined(self, grid):
        monitor = StabilityMonitor(grid)
        monitor.ingest(_basket(1, 0, [1]))
        report = monitor.ingest(_basket(1, 10, [1]))[0]
        assert math.isnan(report.stabilities[1])

    def test_stable_customer_scores_one(self, grid):
        monitor = StabilityMonitor(grid)
        reports = []
        for day in range(0, 60, 10):
            reports.extend(monitor.ingest(_basket(1, day, [1, 2])))
        reports.extend(monitor.finish())
        assert len(reports) == 6
        for report in reports[1:]:
            assert report.stabilities[1] == 1.0


class TestAlarms:
    def test_alarm_on_drop(self, grid):
        monitor = StabilityMonitor(grid, beta=0.6)
        reports = []
        for day in range(0, 40, 10):
            reports.extend(monitor.ingest(_basket(1, day, [1, 2])))
        for day in range(40, 60, 10):
            reports.extend(monitor.ingest(_basket(1, day, [1])))
        reports.extend(monitor.finish())
        alarm_windows = [
            r.window_index for r in reports if any(a.customer_id == 1 for a in r.alarms)
        ]
        # Window 4 drops item 2 (stability 0.5); by window 5 the lost
        # item's significance has decayed, so stability recovers to 0.8.
        assert alarm_windows == [4]
        by_window = {r.window_index: r.stabilities[1] for r in reports}
        assert by_window[4] == pytest.approx(0.5)
        assert by_window[5] == pytest.approx(0.8)

    def test_burn_in_suppresses_alarms(self, grid):
        monitor = StabilityMonitor(grid, beta=1.0, first_alarm_window=5)
        for day in range(0, 60, 10):
            monitor.ingest(_basket(1, day, [1]))
        reports = monitor.finish()
        alarmed = [r.window_index for r in reports if r.alarms]
        assert alarmed == [5]

    def test_explain_alarm_names_missing_item(self, grid):
        monitor = StabilityMonitor(grid, beta=0.8)
        for day in range(0, 40, 10):
            monitor.ingest(_basket(1, day, [1, 2]))
        for day in range(40, 60, 10):
            monitor.ingest(_basket(1, day, [1]))
        monitor.finish()
        ranked = monitor.explain_alarm(1, top_k=3)
        assert ranked
        assert ranked[0][0] == 2


class TestRegistration:
    def test_silent_registered_customer_is_scored(self, grid):
        monitor = StabilityMonitor(grid)
        monitor.register(7)
        monitor.ingest(_basket(1, 0, [1]))
        report = monitor.ingest(_basket(1, 15, [1]))[0]
        assert 7 in report.stabilities
        assert math.isnan(report.stabilities[7])

    def test_customers_listed(self, grid):
        monitor = StabilityMonitor(grid)
        monitor.register(5)
        monitor.ingest(_basket(2, 0, [1]))
        assert monitor.customers() == [2, 5]


class TestBatchEquivalence:
    def test_python_fallback_matches_incremental_model(self, calendar, small_dataset):
        """Non-exponential significance routes through the pure-Python
        close path and must still match the incremental model."""
        from repro.core.significance import FrequencyRatioSignificance

        customers = small_dataset.log.customers()[:6]
        log = small_dataset.log.filter_customers(customers)
        significance = FrequencyRatioSignificance()
        model = StabilityModel(
            calendar, window_months=2, significance=significance
        ).fit(log)

        monitor = StabilityMonitor(model.grid, significance=significance)
        for customer in customers:
            monitor.register(customer)
        reports = monitor.ingest_many(sorted(log, key=lambda b: b.day))
        reports += monitor.finish()

        by_window = {r.window_index: r for r in reports}
        for customer in customers:
            trajectory = model.trajectory(customer)
            for k in range(model.n_windows):
                expected = trajectory.at(k).stability
                streamed = by_window[k].stabilities[customer]
                if math.isnan(expected):
                    assert math.isnan(streamed)
                else:
                    assert streamed == pytest.approx(expected)

    def test_matches_stability_model(self, calendar, small_dataset):
        """The streaming monitor must reproduce the batch model exactly."""
        customers = small_dataset.log.customers()[:12]
        log = small_dataset.log.filter_customers(customers)
        model = StabilityModel(calendar, window_months=2, alpha=2.0).fit(log)

        monitor = StabilityMonitor(model.grid)
        for customer in customers:
            monitor.register(customer)
        baskets = sorted(log, key=lambda b: b.day)
        reports = monitor.ingest_many(baskets) + monitor.finish()

        by_window = {r.window_index: r for r in reports}
        for customer in customers:
            trajectory = model.trajectory(customer)
            for k in range(model.n_windows):
                batch = trajectory.at(k).stability
                streamed = by_window[k].stabilities[customer]
                if math.isnan(batch):
                    assert math.isnan(streamed)
                else:
                    assert streamed == pytest.approx(batch)
