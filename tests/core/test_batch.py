"""Tests for repro.core.batch — the population-scale stability engine.

The repo's invariant is *two independent implementations cross-check each
other*; with the batch engine there are three.  The differential tests
here assert that incremental, per-customer vectorized and population
batch agree on every (customer, window) cell — including all-NaN
prefixes, single-item customers, empty windows and histories long enough
to hit the ``_MAX_LOG`` saturation cap.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core.batch import (
    _segment_sum,
    batch_churn_scores,
    significance_from_counts,
    stability_matrix,
)
from repro.core.significance import ExponentialSignificance
from repro.core.stability import stability_trajectory
from repro.core.vectorized import vectorized_stability
from repro.core.windowing import WindowGrid, windowed_history
from repro.data.basket import Basket
from repro.data.population import PopulationFrame
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, ConfigWarning, DataError


def _random_log(
    rng: random.Random,
    n_customers: int,
    n_days: int,
    item_pool: int,
    max_baskets: int = 30,
) -> TransactionLog:
    log = TransactionLog()
    for customer in range(n_customers):
        for _ in range(rng.randint(1, max_baskets)):
            log.add(
                Basket.of(
                    customer_id=customer,
                    day=rng.randrange(n_days),
                    items=rng.sample(
                        range(item_pool), rng.randint(0, min(4, item_pool))
                    ),
                )
            )
    return log


def _assert_cell_equal(fast: float, reference: float) -> None:
    if math.isnan(reference):
        assert math.isnan(fast)
    else:
        assert fast == pytest.approx(reference, abs=1e-12)


def _assert_all_backends_agree(log: TransactionLog, grid: WindowGrid, alpha: float):
    result = stability_matrix(PopulationFrame.from_log(log, grid), alpha=alpha)
    assert list(result.customer_ids) == log.customers()
    for row, customer_id in enumerate(result.customer_ids):
        windows = windowed_history(log.history(int(customer_id)), grid)
        reference = stability_trajectory(
            int(customer_id), windows, significance=ExponentialSignificance(alpha)
        )
        per_customer = vectorized_stability(windows, alpha=alpha)
        for k, slow in enumerate(reference.values()):
            _assert_cell_equal(result.stability[row, k], slow)
            _assert_cell_equal(per_customer[k], slow)


class TestDifferential:
    def test_randomized_histories_agree_across_backends(self):
        """Seeded fuzz loop: three implementations, one definition."""
        rng = random.Random(20160315)
        grid = WindowGrid.daily(total_days=120, days_per_window=10)
        for _ in range(25):
            log = _random_log(
                rng,
                n_customers=rng.randint(1, 8),
                n_days=120,
                item_pool=rng.randint(1, 7),
            )
            alpha = rng.choice([1.5, 2.0, 3.0])
            _assert_all_backends_agree(log, grid, alpha)

    def test_all_nan_prefix_and_empty_windows(self):
        """A customer silent until late: NaN until first purchase lands."""
        log = TransactionLog()
        log.add(Basket.of(customer_id=1, day=45, items=[7]))
        log.add(Basket.of(customer_id=1, day=55, items=[7]))
        grid = WindowGrid.daily(total_days=80, days_per_window=10)
        result = stability_matrix(PopulationFrame.from_log(log, grid))
        # Windows 0..4 have no prior mass (prior purchases start in w4).
        assert all(math.isnan(v) for v in result.stability[0, :5])
        assert result.stability[0, 5] == 1.0
        _assert_all_backends_agree(log, grid, 2.0)

    def test_single_item_customers(self):
        log = TransactionLog()
        for day in range(0, 60, 10):
            log.add(Basket.of(customer_id=3, day=day, items=[42]))
        grid = WindowGrid.daily(total_days=60, days_per_window=10)
        _assert_all_backends_agree(log, grid, 2.0)

    def test_long_history_hits_saturation_cap(self):
        """alpha ** margin overflows double range; the cap must agree."""
        log = TransactionLog()
        for day in range(1500):
            log.add(Basket.of(customer_id=1, day=day, items=[1, 2]))
        log.add(Basket.of(customer_id=1, day=1500, items=[1]))
        grid = WindowGrid.daily(total_days=1502, days_per_window=1)
        result = stability_matrix(PopulationFrame.from_log(log, grid), alpha=8.0)
        assert result.stability[0, 1500] == pytest.approx(0.5)
        reference = stability_trajectory(
            1,
            windowed_history(log.history(1), grid),
            significance=ExponentialSignificance(8.0),
        )
        for k, slow in enumerate(reference.values()):
            _assert_cell_equal(result.stability[0, k], slow)

    def test_lexsort_fallback_for_huge_item_ids(self):
        """Item ids too large for the packed-key fast path."""
        rng = random.Random(7)
        log = TransactionLog()
        big_items = [2**40 + 1, 2**41 + 3, 2**45 + 5]
        for customer in range(4):
            for _ in range(12):
                log.add(
                    Basket.of(
                        customer_id=customer,
                        day=rng.randrange(60),
                        items=rng.sample(big_items, rng.randint(1, 2)),
                    )
                )
        grid = WindowGrid.daily(total_days=60, days_per_window=10)
        _assert_all_backends_agree(log, grid, 2.0)


class TestEncoding:
    @pytest.fixture()
    def log(self) -> TransactionLog:
        log = TransactionLog()
        log.add(Basket.of(customer_id=1, day=0, items=[5, 6]))
        log.add(Basket.of(customer_id=1, day=3, items=[5]))
        log.add(Basket.of(customer_id=2, day=25, items=[6]))
        log.add(Basket.of(customer_id=9, day=999, items=[8]))  # off-grid
        return log

    def test_structure(self, log):
        grid = WindowGrid.daily(total_days=30, days_per_window=10)
        population = PopulationFrame.from_log(log, grid)
        assert list(population.customer_ids) == [1, 2, 9]
        assert population.n_windows == 3
        # Customer 1 owns pairs for items 5 and 6; customer 9 none in-grid.
        assert list(population.pair_offsets) == [0, 2, 3, 3]
        assert list(population.pair_items) == [5, 6, 6]
        # Item 5 present in window 0 only (days 0 and 3 dedupe to one window).
        assert list(population.triple_window[0:1]) == [0]
        assert list(population.item_vocab) == [5, 6]

    def test_window_items_reconstruction(self, log):
        grid = WindowGrid.daily(total_days=30, days_per_window=10)
        population = PopulationFrame.from_log(log, grid)
        assert population.window_items(0) == [
            frozenset({5, 6}),
            frozenset(),
            frozenset(),
        ]
        assert population.window_items(2) == [frozenset()] * 3

    def test_customer_subset_and_unknown(self, log):
        grid = WindowGrid.daily(total_days=30, days_per_window=10)
        population = PopulationFrame.from_log(log, grid, customers=[2])
        assert list(population.customer_ids) == [2]
        with pytest.raises(DataError):
            PopulationFrame.from_log(log, grid, customers=[777])

    def test_shard_roundtrip(self, log):
        grid = WindowGrid.daily(total_days=30, days_per_window=10)
        population = PopulationFrame.from_log(log, grid)
        full = stability_matrix(population).stability
        parts = [
            stability_matrix(population.shard(i, i + 1)).stability
            for i in range(population.n_customers)
        ]
        np.testing.assert_array_equal(np.vstack(parts), full)


class TestSegmentSum:
    def test_middle_empty_segment_does_not_corrupt_neighbours(self):
        """Regression: naive reduceat clamping broke the segment *before*
        an empty one."""
        values = np.array([1.0, 2.0])
        offsets = np.array([0, 0, 2, 2])
        np.testing.assert_array_equal(
            _segment_sum(values, offsets), np.array([0.0, 3.0, 0.0])
        )

    def test_all_empty(self):
        out = _segment_sum(np.empty((0, 4)), np.array([0, 0, 0]))
        assert out.shape == (2, 4)
        assert (out == 0).all()

    def test_two_dimensional(self):
        values = np.arange(8, dtype=float).reshape(4, 2)
        offsets = np.array([0, 1, 4])
        np.testing.assert_array_equal(
            _segment_sum(values, offsets), np.array([[0.0, 1.0], [12.0, 15.0]])
        )


class TestSignificanceKernel:
    def test_matches_scalar_rule(self):
        rule = ExponentialSignificance(alpha=3.0)
        counts = np.array([0, 1, 2, 5, 6])
        k = 6
        got = significance_from_counts(counts, k, alpha=3.0)
        expected = [rule(int(c), k - int(c)) for c in counts]
        np.testing.assert_allclose(got, expected, rtol=0, atol=0)

    def test_per_element_prior_windows(self):
        got = significance_from_counts(
            np.array([1.0, 1.0]), np.array([2.0, 4.0]), alpha=2.0
        )
        np.testing.assert_array_equal(got, [1.0, 0.25])

    def test_saturation_cap(self):
        huge = significance_from_counts(np.array([2000.0]), 0, alpha=2.0)
        assert np.isfinite(huge[0])
        assert huge[0] == math.exp(700.0)


class TestBatchChurnScores:
    @pytest.fixture()
    def log(self) -> TransactionLog:
        rng = random.Random(11)
        return _random_log(rng, n_customers=6, n_days=50, item_pool=5)

    def test_matches_trajectory_engine(self, log):
        grid = WindowGrid.daily(total_days=50, days_per_window=10)
        scores = batch_churn_scores(log, grid, window_index=4)
        for customer_id in log.customers():
            trajectory = stability_trajectory(
                customer_id, windowed_history(log.history(customer_id), grid)
            )
            assert scores[customer_id] == pytest.approx(
                trajectory.churn_score(4), abs=1e-12
            )

    def test_bad_window_rejected(self, log):
        grid = WindowGrid.daily(total_days=50, days_per_window=10)
        with pytest.raises(ConfigError):
            batch_churn_scores(log, grid, window_index=99)

    def test_unknown_customer_rejected(self, log):
        grid = WindowGrid.daily(total_days=50, days_per_window=10)
        with pytest.raises(DataError):
            batch_churn_scores(log, grid, 4, customers=[424242])

    def test_subset(self, log):
        grid = WindowGrid.daily(total_days=50, days_per_window=10)
        scores = batch_churn_scores(log, grid, 4, customers=[2, 4])
        assert set(scores) == {2, 4}


class TestParallelFit:
    def test_n_jobs_identical_to_serial(self):
        rng = random.Random(5)
        log = _random_log(rng, n_customers=9, n_days=60, item_pool=6)
        grid = WindowGrid.daily(total_days=60, days_per_window=10)
        population = PopulationFrame.from_log(log, grid)
        serial = stability_matrix(population, n_jobs=1)
        parallel = stability_matrix(population, n_jobs=3)
        np.testing.assert_array_equal(serial.stability, parallel.stability)
        np.testing.assert_array_equal(serial.kept_mass, parallel.kept_mass)
        np.testing.assert_array_equal(serial.total_mass, parallel.total_mass)

    def test_bad_n_jobs_rejected(self):
        log = TransactionLog()
        log.add(Basket.of(customer_id=1, day=0, items=[1]))
        grid = WindowGrid.daily(total_days=10, days_per_window=10)
        population = PopulationFrame.from_log(log, grid)
        with pytest.raises(ConfigError):
            stability_matrix(population, n_jobs=0)

    def test_more_jobs_than_customers(self):
        log = TransactionLog()
        log.add(Basket.of(customer_id=1, day=0, items=[1]))
        log.add(Basket.of(customer_id=1, day=12, items=[1]))
        grid = WindowGrid.daily(total_days=20, days_per_window=10)
        population = PopulationFrame.from_log(log, grid)
        result = stability_matrix(population, n_jobs=8)  # falls back to serial
        assert result.stability.shape == (1, 2)


class TestAlphaValidation:
    def test_nonpositive_alpha_rejected(self):
        log = TransactionLog()
        log.add(Basket.of(customer_id=1, day=0, items=[1]))
        grid = WindowGrid.daily(total_days=10, days_per_window=10)
        with pytest.raises(ConfigError):
            stability_matrix(PopulationFrame.from_log(log, grid), alpha=0.0)

    def test_alpha_at_most_one_warns(self):
        log = TransactionLog()
        log.add(Basket.of(customer_id=1, day=0, items=[1]))
        grid = WindowGrid.daily(total_days=10, days_per_window=10)
        population = PopulationFrame.from_log(log, grid)
        with pytest.warns(ConfigWarning):
            stability_matrix(population, alpha=1.0)
        with pytest.warns(ConfigWarning):
            batch_churn_scores(log, grid, 0, alpha=0.5)
