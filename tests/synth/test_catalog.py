"""Tests for repro.synth.catalog."""

from __future__ import annotations

import pytest

from repro.data.taxonomy import Taxonomy
from repro.errors import ConfigError
from repro.synth.catalog import NAMED_SEGMENTS, build_catalog


class TestBuildCatalog:
    def test_default_sizes(self):
        catalog = build_catalog()
        assert catalog.n_segments == 120
        assert catalog.n_products == 120 * 8

    def test_named_segments_present(self):
        catalog = build_catalog()
        for name in ("Coffee", "Milk", "Cheese", "Sponges"):
            segment = catalog.segment_by_name(name)
            assert segment.name == name

    def test_departments_from_roster(self):
        catalog = build_catalog()
        assert catalog.segment_by_name("Coffee").department == "Beverages"
        assert catalog.segment_by_name("Sponges").department == "Household"

    def test_every_segment_has_products(self):
        catalog = build_catalog(n_segments=60, products_per_segment=3)
        for segment in catalog.segments():
            assert len(catalog.products_in_segment(segment.segment_id)) == 3

    def test_prices_positive(self):
        catalog = build_catalog(n_segments=60, products_per_segment=2)
        assert all(p.unit_price > 0 for p in catalog.products())

    def test_deterministic_given_seed(self):
        a = build_catalog(seed=1)
        b = build_catalog(seed=1)
        assert [p.unit_price for p in a.products()] == [
            p.unit_price for p in b.products()
        ]

    def test_seed_changes_prices(self):
        a = build_catalog(seed=1)
        b = build_catalog(seed=2)
        assert [p.unit_price for p in a.products()] != [
            p.unit_price for p in b.products()
        ]

    def test_too_few_segments_rejected(self):
        with pytest.raises(ConfigError, match="named roster"):
            build_catalog(n_segments=10)

    def test_zero_products_rejected(self):
        with pytest.raises(ConfigError, match="products_per_segment"):
            build_catalog(products_per_segment=0)

    def test_taxonomy_buildable(self):
        catalog = build_catalog(n_segments=60, products_per_segment=2)
        taxonomy = Taxonomy.from_catalog(catalog)
        assert taxonomy.n_segments == 60
        assert taxonomy.n_products == 120

    def test_roster_has_figure2_segments(self):
        names = {name for name, __, __ in NAMED_SEGMENTS}
        assert {"Coffee", "Milk", "Cheese", "Sponges"} <= names
