"""Tests for repro.synth.scenarios."""

from __future__ import annotations

from repro.synth.scenarios import (
    FIGURE2_FIRST_LOSS,
    FIGURE2_SECOND_LOSS,
    figure2_case_study,
    paper_scenario,
)


class TestPaperScenario:
    def test_shapes(self, small_dataset):
        # small_dataset is paper_scenario-compatible; check a fresh tiny one.
        dataset = paper_scenario(n_loyal=4, n_churners=4, seed=1)
        assert dataset.calendar.n_months == 28
        assert dataset.cohorts.onset_month == 18
        assert dataset.log.n_customers == 8

    def test_overrides_forwarded(self):
        dataset = paper_scenario(
            n_loyal=3, n_churners=3, seed=1, n_months=12, onset_month=6
        )
        assert dataset.calendar.n_months == 12
        assert dataset.cohorts.onset_month == 6


class TestFigure2CaseStudy:
    def test_loss_constants(self):
        assert FIGURE2_FIRST_LOSS == ("Coffee",)
        assert set(FIGURE2_SECOND_LOSS) == {"Milk", "Sponges", "Cheese"}

    def test_pinned_losses(self, case_study):
        drop = case_study.schedule.drop_month
        first = {case_study.catalog.segment(s).name for s in case_study.first_loss_segments}
        second = {case_study.catalog.segment(s).name for s in case_study.second_loss_segments}
        assert first == {"Coffee"}
        assert second == {"Milk", "Sponges", "Cheese"}
        # Coffee stops at calendar month 18 (visible at plotted month 20).
        assert all(drop[s] == 18 for s in case_study.first_loss_segments)
        assert all(drop[s] == 20 for s in case_study.second_loss_segments)

    def test_habitual_includes_all_lost_segments(self, case_study):
        lost = set(case_study.first_loss_segments) | set(
            case_study.second_loss_segments
        )
        bought = {
            item
            for basket in case_study.log.history(case_study.customer_id)
            for item in basket.items
        }
        assert lost <= bought

    def test_single_customer_log(self, case_study):
        assert case_study.log.customers() == [case_study.customer_id]

    def test_no_trip_decay(self, case_study):
        assert case_study.schedule.trip_decay_per_month == 1.0

    def test_deterministic(self):
        a = figure2_case_study(seed=11)
        b = figure2_case_study(seed=11)
        assert [(x.day, x.items) for x in a.log.history(0)] == [
            (x.day, x.items) for x in b.log.history(0)
        ]
