"""Tests for repro.synth.generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.synth.generator import ScenarioConfig, generate_dataset


class TestScenarioConfig:
    def test_defaults_match_paper_setting(self):
        config = ScenarioConfig()
        assert config.n_months == 28
        assert config.onset_month == 18

    def test_needs_both_cohorts(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(n_loyal=0)
        with pytest.raises(ConfigError):
            ScenarioConfig(n_churners=0)

    def test_onset_inside_study(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(onset_month=28)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(onset_jitter_months=-1)


class TestGenerateDataset:
    def test_cohort_sizes(self, small_dataset):
        assert small_dataset.cohorts.n_loyal == 40
        assert small_dataset.cohorts.n_churners == 40

    def test_customer_ids_dense(self, small_dataset):
        assert small_dataset.log.customers() == list(range(80))
        assert sorted(small_dataset.cohorts.loyal) == list(range(40))
        assert sorted(small_dataset.cohorts.churners) == list(range(40, 80))

    def test_every_churner_has_schedule_and_onset(self, small_dataset):
        for customer in sorted(small_dataset.cohorts.churners):
            schedule = small_dataset.schedules[customer]
            assert schedule.customer_id == customer
            assert (
                small_dataset.cohorts.onset_of(customer) == schedule.onset_month
            )

    def test_loyal_customers_have_no_schedule(self, small_dataset):
        assert not set(small_dataset.schedules) & small_dataset.cohorts.loyal

    def test_onset_jitter_bounded(self, small_dataset):
        onset = small_dataset.config.onset_month
        jitter = small_dataset.config.onset_jitter_months
        for customer in sorted(small_dataset.cohorts.churners):
            actual = small_dataset.cohorts.onset_of(customer)
            assert onset - jitter <= actual <= onset + jitter

    def test_bundle_is_validated(self, small_dataset):
        # DatasetBundle.checked already ran; spot-check an invariant.
        lo, hi = small_dataset.log.day_range()
        assert lo >= 0
        assert hi < small_dataset.calendar.n_days

    def test_reproducible(self):
        config = ScenarioConfig(n_loyal=5, n_churners=5, seed=99)
        a = generate_dataset(config)
        b = generate_dataset(config)
        assert a.log.n_baskets == b.log.n_baskets
        for customer in a.log.customers():
            assert [(x.day, x.items) for x in a.log.history(customer)] == [
                (x.day, x.items) for x in b.log.history(customer)
            ]

    def test_seed_changes_data(self):
        a = generate_dataset(ScenarioConfig(n_loyal=5, n_churners=5, seed=1))
        b = generate_dataset(ScenarioConfig(n_loyal=5, n_churners=5, seed=2))
        assert a.log.n_baskets != b.log.n_baskets or [
            (x.day, x.items) for x in a.log.history(0)
        ] != [(x.day, x.items) for x in b.log.history(0)]

    def test_adding_customers_preserves_existing(self):
        # SeedSequence spawning: customer i's stream is independent of n.
        small = generate_dataset(ScenarioConfig(n_loyal=3, n_churners=3, seed=4))
        # Same seed, one more churner: loyal customers 0..2 are unchanged.
        big = generate_dataset(ScenarioConfig(n_loyal=3, n_churners=4, seed=4))
        for customer in range(3):
            assert [(x.day, x.items) for x in small.log.history(customer)] == [
                (x.day, x.items) for x in big.log.history(customer)
            ]

    def test_product_level_config(self):
        dataset = generate_dataset(
            ScenarioConfig(n_loyal=3, n_churners=3, seed=6, product_level=True)
        )
        # The bundle's log must be segment-level after abstraction.
        n_segments = dataset.catalog.n_segments
        assert all(
            0 <= item < n_segments for item in dataset.log.item_universe()
        )

    def test_vacation_config_validated(self):
        with pytest.raises(ConfigError, match="vacation_prob"):
            ScenarioConfig(vacation_prob=1.5)
        with pytest.raises(ConfigError, match="vacation_duration"):
            ScenarioConfig(vacation_duration_days=(0, 10))
        with pytest.raises(ConfigError, match="vacation_duration"):
            ScenarioConfig(vacation_duration_days=(20, 10))

    def test_vacations_create_long_gaps(self):
        no_vacation = generate_dataset(
            ScenarioConfig(n_loyal=10, n_churners=10, seed=44, vacation_prob=0.0)
        )
        vacation = generate_dataset(
            ScenarioConfig(
                n_loyal=10,
                n_churners=10,
                seed=44,
                vacation_prob=1.0,
                vacation_duration_days=(60, 60),
            )
        )

        def max_gap(dataset) -> int:
            widest = 0
            for customer in dataset.log.customers():
                days = [b.day for b in dataset.log.history(customer)]
                if len(days) > 1:
                    widest = max(widest, max(b - a for a, b in zip(days, days[1:])))
            return widest

        assert max_gap(vacation) >= 60
        assert max_gap(vacation) > max_gap(no_vacation)

    def test_zero_vacation_prob_preserves_streams(self):
        # vacation_prob=0 must not consume RNG draws: identical to default.
        a = generate_dataset(ScenarioConfig(n_loyal=4, n_churners=4, seed=9))
        b = generate_dataset(
            ScenarioConfig(n_loyal=4, n_churners=4, seed=9, vacation_prob=0.0)
        )
        for customer in a.log.customers():
            assert [(x.day, x.items) for x in a.log.history(customer)] == [
                (x.day, x.items) for x in b.log.history(customer)
            ]

    def test_churners_lose_habits_after_onset(self, small_dataset):
        calendar = small_dataset.calendar
        for customer in sorted(small_dataset.cohorts.churners)[:5]:
            schedule = small_dataset.schedules[customer]
            dropped = schedule.dropped_by(calendar.n_months - 1)
            if not dropped:
                continue
            last_drop_month = max(schedule.drop_month.values())
            start_day = calendar.month_start_day(
                min(last_drop_month + 1, calendar.n_months - 1)
            )
            bought_after = {
                item
                for basket in small_dataset.log.history(customer)
                if basket.day >= start_day
                for item in basket.items
            }
            assert not (dropped & bought_after)
