"""Tests for repro.synth.customers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.synth.catalog import build_catalog
from repro.synth.customers import ARCHETYPES, CustomerProfile, sample_profile


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(n_segments=60, products_per_segment=2)


class TestProfileValidation:
    def test_needs_habitual_segments(self):
        with pytest.raises(ConfigError, match="habitual"):
            CustomerProfile(customer_id=1, archetype="x", habitual_segments=[])

    def test_needs_inclusion_prob_for_every_segment(self):
        with pytest.raises(ConfigError, match="inclusion_prob"):
            CustomerProfile(
                customer_id=1,
                archetype="x",
                habitual_segments=[1, 2],
                inclusion_prob={1: 0.5},
            )

    def test_positive_trip_interval(self):
        with pytest.raises(ConfigError, match="trip_interval"):
            CustomerProfile(
                customer_id=1,
                archetype="x",
                habitual_segments=[1],
                inclusion_prob={1: 0.5},
                trip_interval_days=0.0,
            )


class TestSampling:
    def test_deterministic_given_rng_seed(self, catalog):
        a = sample_profile(3, catalog, np.random.default_rng(42))
        b = sample_profile(3, catalog, np.random.default_rng(42))
        assert a.habitual_segments == b.habitual_segments
        assert a.trip_interval_days == b.trip_interval_days

    def test_habitual_sizes_within_archetype_bounds(self, catalog):
        rng = np.random.default_rng(0)
        bounds = {a.name: a.habitual_range for a in ARCHETYPES}
        for customer_id in range(50):
            profile = sample_profile(customer_id, catalog, rng)
            lo, hi = bounds[profile.archetype]
            assert lo <= len(profile.habitual_segments) <= hi

    def test_inclusion_probs_within_archetype_bounds(self, catalog):
        rng = np.random.default_rng(1)
        ranges = {a.name: a.inclusion_range for a in ARCHETYPES}
        for customer_id in range(30):
            profile = sample_profile(customer_id, catalog, rng)
            lo, hi = ranges[profile.archetype]
            assert all(lo <= p <= hi for p in profile.inclusion_prob.values())

    def test_segments_are_valid_catalog_segments(self, catalog):
        rng = np.random.default_rng(2)
        profile = sample_profile(0, catalog, rng)
        assert all(0 <= s < catalog.n_segments for s in profile.habitual_segments)

    def test_segments_are_unique_and_sorted(self, catalog):
        rng = np.random.default_rng(3)
        profile = sample_profile(0, catalog, rng)
        assert profile.habitual_segments == sorted(set(profile.habitual_segments))

    def test_pinned_segments_always_included(self, catalog):
        rng = np.random.default_rng(4)
        pinned = (0, 5, 10)
        for customer_id in range(10):
            profile = sample_profile(
                customer_id, catalog, rng, pinned_segments=pinned
            )
            assert set(pinned) <= set(profile.habitual_segments)

    def test_archetype_mix_respects_weights(self, catalog):
        rng = np.random.default_rng(5)
        names = [
            sample_profile(i, catalog, rng).archetype for i in range(400)
        ]
        # "family" (weight 0.35) must dominate "minimal" (weight 0.10).
        assert names.count("family") > names.count("minimal")

    def test_empty_archetypes_rejected(self, catalog):
        with pytest.raises(ConfigError):
            sample_profile(0, catalog, np.random.default_rng(0), archetypes=())

    def test_basket_multiplier_positive(self, catalog):
        rng = np.random.default_rng(6)
        for customer_id in range(20):
            assert sample_profile(customer_id, catalog, rng).basket_multiplier > 0
