"""Tests for repro.synth.attrition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.synth.attrition import AttritionSchedule, sample_schedule
from repro.synth.customers import CustomerProfile


@pytest.fixture()
def profile() -> CustomerProfile:
    segments = list(range(10))
    return CustomerProfile(
        customer_id=1,
        archetype="test",
        habitual_segments=segments,
        inclusion_prob={s: 0.5 for s in segments},
        trip_interval_days=7.0,
    )


class TestScheduleValidation:
    def test_negative_onset_rejected(self):
        with pytest.raises(ConfigError, match="onset_month"):
            AttritionSchedule(customer_id=1, onset_month=-1)

    def test_bad_decay_rejected(self):
        with pytest.raises(ConfigError, match="trip_decay"):
            AttritionSchedule(customer_id=1, onset_month=0, trip_decay_per_month=0.0)
        with pytest.raises(ConfigError, match="trip_decay"):
            AttritionSchedule(customer_id=1, onset_month=0, trip_decay_per_month=1.5)

    def test_drop_before_onset_rejected(self):
        with pytest.raises(ConfigError, match="before onset"):
            AttritionSchedule(customer_id=1, onset_month=10, drop_month={3: 5})


class TestScheduleSemantics:
    def test_active_segments_shrink_over_time(self, profile):
        schedule = AttritionSchedule(
            customer_id=1, onset_month=5, drop_month={0: 5, 1: 7}
        )
        assert set(schedule.active_segments(profile, 4)) == set(range(10))
        assert 0 not in schedule.active_segments(profile, 5)
        assert 1 in schedule.active_segments(profile, 5)
        assert 1 not in schedule.active_segments(profile, 7)

    def test_dropped_by(self):
        schedule = AttritionSchedule(
            customer_id=1, onset_month=5, drop_month={0: 5, 1: 7}
        )
        assert schedule.dropped_by(4) == frozenset()
        assert schedule.dropped_by(5) == frozenset({0})
        assert schedule.dropped_by(7) == frozenset({0, 1})

    def test_trip_interval_grows_after_onset(self, profile):
        schedule = AttritionSchedule(
            customer_id=1, onset_month=5, trip_decay_per_month=0.9
        )
        assert schedule.trip_interval_at(profile, 4) == 7.0
        assert schedule.trip_interval_at(profile, 5) == pytest.approx(7.0)
        assert schedule.trip_interval_at(profile, 7) == pytest.approx(7.0 / 0.81)

    def test_no_decay_keeps_interval(self, profile):
        schedule = AttritionSchedule(
            customer_id=1, onset_month=5, trip_decay_per_month=1.0
        )
        assert schedule.trip_interval_at(profile, 20) == 7.0


class TestSampleSchedule:
    def test_onset_month_always_drops_something(self, profile):
        for seed in range(10):
            schedule = sample_schedule(
                profile, onset_month=5, n_months=28, rng=np.random.default_rng(seed)
            )
            assert schedule.dropped_by(5)

    def test_drops_only_habitual_segments(self, profile):
        schedule = sample_schedule(
            profile, onset_month=5, n_months=28, rng=np.random.default_rng(1)
        )
        assert set(schedule.drop_month) <= set(profile.habitual_segments)

    def test_drop_months_within_study(self, profile):
        schedule = sample_schedule(
            profile, onset_month=5, n_months=28, rng=np.random.default_rng(2)
        )
        assert all(5 <= m < 28 for m in schedule.drop_month.values())

    def test_progressive_not_instant(self, profile):
        # With the default rate, not everything vanishes in the onset month.
        instant = [
            set(
                sample_schedule(
                    profile,
                    onset_month=5,
                    n_months=28,
                    rng=np.random.default_rng(seed),
                ).drop_month.values()
            )
            == {5}
            for seed in range(20)
        ]
        assert not all(instant)

    def test_onset_outside_study_rejected(self, profile):
        with pytest.raises(ConfigError, match="outside study"):
            sample_schedule(
                profile, onset_month=30, n_months=28, rng=np.random.default_rng(0)
            )

    def test_deterministic_given_seed(self, profile):
        a = sample_schedule(
            profile, onset_month=5, n_months=28, rng=np.random.default_rng(9)
        )
        b = sample_schedule(
            profile, onset_month=5, n_months=28, rng=np.random.default_rng(9)
        )
        assert a.drop_month == b.drop_month
