"""Tests for repro.synth.shopping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.calendar import StudyCalendar
from repro.synth.attrition import AttritionSchedule
from repro.synth.catalog import build_catalog
from repro.synth.customers import CustomerProfile
from repro.synth.shopping import segment_prices, simulate_customer


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(n_segments=60, products_per_segment=3)


@pytest.fixture()
def profile() -> CustomerProfile:
    segments = [0, 1, 2, 3, 4]
    return CustomerProfile(
        customer_id=7,
        archetype="test",
        habitual_segments=segments,
        inclusion_prob={s: 0.8 for s in segments},
        trip_interval_days=5.0,
        noise_rate=0.5,
    )


@pytest.fixture(scope="module")
def calendar():
    return StudyCalendar.paper()


class TestSegmentPrices:
    def test_every_segment_priced(self, catalog):
        prices = segment_prices(catalog)
        assert set(prices) == {s.segment_id for s in catalog.segments()}
        assert all(p > 0 for p in prices.values())

    def test_mean_of_product_prices(self, catalog):
        prices = segment_prices(catalog)
        products = catalog.products_in_segment(0)
        expected = sum(p.unit_price for p in products) / len(products)
        assert prices[0] == pytest.approx(expected)


class TestSimulation:
    def test_days_within_study(self, profile, calendar, catalog):
        baskets = simulate_customer(
            profile, calendar, catalog, np.random.default_rng(0)
        )
        assert baskets
        assert all(0 <= b.day < calendar.n_days for b in baskets)

    def test_chronological(self, profile, calendar, catalog):
        baskets = simulate_customer(
            profile, calendar, catalog, np.random.default_rng(1)
        )
        days = [b.day for b in baskets]
        assert days == sorted(days)

    def test_customer_id_stamped(self, profile, calendar, catalog):
        baskets = simulate_customer(
            profile, calendar, catalog, np.random.default_rng(2)
        )
        assert all(b.customer_id == 7 for b in baskets)

    def test_trip_count_tracks_interval(self, profile, calendar, catalog):
        baskets = simulate_customer(
            profile, calendar, catalog, np.random.default_rng(3)
        )
        expected = calendar.n_days / profile.trip_interval_days
        assert 0.6 * expected <= len(baskets) <= 1.4 * expected

    def test_baskets_non_empty_with_positive_monetary(self, profile, calendar, catalog):
        baskets = simulate_customer(
            profile, calendar, catalog, np.random.default_rng(4)
        )
        assert all(b.size > 0 for b in baskets)
        assert all(b.monetary > 0 for b in baskets)

    def test_habitual_segments_dominate(self, profile, calendar, catalog):
        baskets = simulate_customer(
            profile, calendar, catalog, np.random.default_rng(5)
        )
        habitual = set(profile.habitual_segments)
        habitual_count = sum(len(b.items & habitual) for b in baskets)
        total = sum(b.size for b in baskets)
        assert habitual_count / total > 0.7

    def test_deterministic_given_seed(self, profile, calendar, catalog):
        a = simulate_customer(profile, calendar, catalog, np.random.default_rng(6))
        b = simulate_customer(profile, calendar, catalog, np.random.default_rng(6))
        assert [(x.day, x.items, x.monetary) for x in a] == [
            (x.day, x.items, x.monetary) for x in b
        ]

    def test_schedule_removes_dropped_segments(self, profile, calendar, catalog):
        schedule = AttritionSchedule(
            customer_id=7,
            onset_month=10,
            drop_month={s: 10 for s in profile.habitual_segments},
            trip_decay_per_month=1.0,
        )
        baskets = simulate_customer(
            profile, calendar, catalog, np.random.default_rng(7), schedule=schedule
        )
        onset_day = calendar.month_start_day(10)
        habitual = set(profile.habitual_segments)
        after = [b for b in baskets if b.day >= onset_day]
        assert all(not (b.items & habitual) for b in after)

    def test_trip_decay_reduces_late_trips(self, profile, calendar, catalog):
        schedule = AttritionSchedule(
            customer_id=7, onset_month=14, trip_decay_per_month=0.75
        )
        baskets = simulate_customer(
            profile, calendar, catalog, np.random.default_rng(8), schedule=schedule
        )
        half_day = calendar.month_start_day(14)
        first_half = sum(1 for b in baskets if b.day < half_day)
        second_half = sum(1 for b in baskets if b.day >= half_day)
        assert second_half < first_half

    def test_product_level_emits_skus(self, profile, calendar, catalog):
        baskets = simulate_customer(
            profile,
            calendar,
            catalog,
            np.random.default_rng(9),
            product_level=True,
        )
        product_ids = {p.product_id for p in catalog.products()}
        assert all(b.items <= product_ids for b in baskets)

    def test_absences_block_trips(self, profile, calendar, catalog):
        absence = (100, 200)
        baskets = simulate_customer(
            profile,
            calendar,
            catalog,
            np.random.default_rng(11),
            absences=(absence,),
        )
        assert baskets
        assert all(not (absence[0] <= b.day < absence[1]) for b in baskets)

    def test_shopping_resumes_after_absence(self, profile, calendar, catalog):
        absence = (100, 160)
        baskets = simulate_customer(
            profile,
            calendar,
            catalog,
            np.random.default_rng(12),
            absences=(absence,),
        )
        assert any(b.day >= absence[1] for b in baskets)

    def test_invalid_absence_rejected(self, profile, calendar, catalog):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="absence"):
            simulate_customer(
                profile,
                calendar,
                catalog,
                np.random.default_rng(0),
                absences=((50, 10),),
            )

    def test_product_level_abstraction_recovers_segments(
        self, profile, calendar, catalog
    ):
        baskets = simulate_customer(
            profile,
            calendar,
            catalog,
            np.random.default_rng(10),
            product_level=True,
        )
        habitual = set(profile.habitual_segments)
        segments_bought = {
            catalog.product(p).segment_id for b in baskets for p in b.items
        }
        assert habitual <= segments_bought
