"""ExperimentConfig: the validated, frozen spine of every experiment."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_BETA_GRID, ExperimentConfig
from repro.core.significance import ExponentialSignificance
from repro.core.windowing import WindowGrid
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_are_valid(self):
        config = ExperimentConfig()
        assert config.window_months == 2
        assert config.alpha == 2.0
        assert config.backend == "incremental"
        assert config.beta_grid == DEFAULT_BETA_GRID

    def test_window_months_must_be_positive(self):
        with pytest.raises(ConfigError, match="window_months must be positive"):
            ExperimentConfig(window_months=0)

    def test_alpha_validated(self):
        with pytest.raises(ConfigError, match="alpha must be positive"):
            ExperimentConfig(alpha=-1.0)

    def test_sub_one_alpha_warns(self):
        with pytest.warns(Warning, match="alpha=0.5"):
            ExperimentConfig(alpha=0.5)

    def test_beta_grid_must_be_non_empty(self):
        with pytest.raises(ConfigError, match="beta_grid"):
            ExperimentConfig(beta_grid=())

    def test_beta_grid_must_be_in_unit_interval(self):
        with pytest.raises(ConfigError, match="beta_grid"):
            ExperimentConfig(beta_grid=(0.5, 1.5))

    def test_beta_grid_must_be_strictly_increasing(self):
        with pytest.raises(ConfigError, match="beta_grid"):
            ExperimentConfig(beta_grid=(0.5, 0.5))

    def test_beta_grid_coerced_to_floats(self):
        config = ExperimentConfig(beta_grid=[0, 1])
        assert config.beta_grid == (0.0, 1.0)
        assert all(isinstance(b, float) for b in config.beta_grid)

    def test_month_range_ordering(self):
        with pytest.raises(ConfigError, match="first_month 20 > last_month 12"):
            ExperimentConfig(first_month=20, last_month=12)

    def test_unknown_counting_scheme(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(counting="nope")

    def test_unknown_backend_names_the_registry(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            ExperimentConfig(backend="gpu")

    def test_n_jobs_zero_rejected(self):
        with pytest.raises(ConfigError, match="n_jobs"):
            ExperimentConfig(n_jobs=0)

    def test_n_jobs_all_cores_sentinel_allowed(self):
        assert ExperimentConfig(backend="batch", n_jobs=-1).n_jobs == -1

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError, match="retries must be >= 0"):
            ExperimentConfig(retries=-1)

    def test_retries_default_and_zero_allowed(self):
        assert ExperimentConfig().retries == 2
        assert ExperimentConfig(retries=0).retries == 0


class TestBehaviour:
    def test_frozen(self):
        config = ExperimentConfig()
        with pytest.raises(Exception):
            config.alpha = 3.0

    def test_hashable_and_usable_as_cache_key(self):
        a = ExperimentConfig(alpha=2.0)
        b = ExperimentConfig(alpha=2.0)
        c = ExperimentConfig(alpha=3.0)
        assert a == b and hash(a) == hash(b)
        assert {a: 1}[b] == 1
        assert a != c

    def test_evolve_returns_validated_copy(self):
        config = ExperimentConfig().evolve(alpha=4.0, backend="batch")
        assert config.alpha == 4.0
        assert config.backend == "batch"
        assert ExperimentConfig().alpha == 2.0  # original untouched
        with pytest.raises(ConfigError):
            ExperimentConfig().evolve(window_months=-1)

    def test_grid_matches_monthly_construction(self, calendar):
        config = ExperimentConfig(window_months=3)
        assert config.grid(calendar) == WindowGrid.monthly(calendar, 3)

    def test_significance_carries_alpha(self):
        rule = ExperimentConfig(alpha=3.0).significance()
        assert isinstance(rule, ExponentialSignificance)
        assert rule.alpha == 3.0
