"""Doctest runner: every ``>>>`` example in the library must execute.

Docstring examples are the first code users copy; this keeps them honest
without requiring ``--doctest-modules`` on every invocation.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro


def _modules_with_doctests() -> list[str]:
    names = []
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(module_info.name)
        if doctest.DocTestFinder().find(module):
            finder = doctest.DocTestFinder()
            if any(test.examples for test in finder.find(module)):
                names.append(module_info.name)
    return sorted(set(names))


@pytest.mark.parametrize("module_name", _modules_with_doctests())
def test_module_doctests(module_name: str):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
    assert results.attempted > 0
