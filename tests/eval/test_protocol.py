"""Tests for repro.eval.protocol."""

from __future__ import annotations

import pytest

from repro.baselines.rfm import RFMModel
from repro.baselines.rules import RandomBaseline, RecencyRule
from repro.core.model import StabilityModel
from repro.core.windowing import WindowGrid
from repro.errors import ConfigError, EvaluationError
from repro.eval.protocol import EvaluationProtocol


@pytest.fixture(scope="module")
def protocol(request) -> EvaluationProtocol:
    dataset = request.getfixturevalue("tiny_dataset")
    return EvaluationProtocol(dataset.bundle)


class TestConstruction:
    def test_invalid_month_range(self, tiny_dataset):
        with pytest.raises(ConfigError):
            EvaluationProtocol(tiny_dataset.bundle, first_month=20, last_month=10)


class TestEvaluationWindows:
    def test_paper_range(self, tiny_dataset, protocol):
        model = StabilityModel(tiny_dataset.calendar, window_months=2)
        pairs = protocol.evaluation_windows(model)
        assert [month for __, month in pairs] == [12, 14, 16, 18, 20, 22, 24]

    def test_out_of_range_raises(self, tiny_dataset):
        protocol = EvaluationProtocol(
            tiny_dataset.bundle, first_month=3, last_month=3
        )
        model = StabilityModel(tiny_dataset.calendar, window_months=2)
        with pytest.raises(EvaluationError):
            protocol.evaluation_windows(model)


class TestStabilityEvaluation:
    def test_series_shape(self, tiny_dataset, protocol):
        model = StabilityModel(tiny_dataset.calendar).fit(tiny_dataset.log)
        series = protocol.evaluate_stability_model(model)
        assert series.name == "stability"
        assert series.months() == [12, 14, 16, 18, 20, 22, 24]
        assert all(0.0 <= v <= 1.0 for v in series.values())

    def test_detection_rises_after_onset(self, tiny_dataset, protocol):
        model = StabilityModel(tiny_dataset.calendar).fit(tiny_dataset.log)
        series = protocol.evaluate_stability_model(model)
        pre = series.at_month(14)
        post = series.at_month(22)
        assert post > pre
        assert post > 0.7

    def test_at_month_missing_raises(self, tiny_dataset, protocol):
        model = StabilityModel(tiny_dataset.calendar).fit(tiny_dataset.log)
        series = protocol.evaluate_stability_model(model)
        with pytest.raises(EvaluationError):
            series.at_month(13)


class TestWindowScorerEvaluation:
    def test_rfm_series(self, tiny_dataset, protocol):
        train, test = protocol.train_test_split(seed=1)
        rfm = RFMModel(tiny_dataset.calendar)
        series = protocol.evaluate_window_scorer(rfm, "rfm", train, test)
        assert series.name == "rfm"
        assert len(series.points) == 7
        assert all(0.0 <= v <= 1.0 for v in series.values())


class TestRuleEvaluation:
    def test_recency_rule_series(self, tiny_dataset, protocol):
        grid = WindowGrid.monthly(tiny_dataset.calendar, 2)
        series = protocol.evaluate_rule(RecencyRule(grid), "recency")
        assert len(series.points) == 7

    def test_random_rule_near_chance(self, tiny_dataset, protocol):
        series = protocol.evaluate_rule(RandomBaseline(seed=0), "random")
        assert all(0.1 < v < 0.9 for v in series.values())

    def test_rule_with_empty_month_range_raises(self, tiny_dataset):
        narrow = EvaluationProtocol(
            tiny_dataset.bundle, first_month=13, last_month=13
        )
        with pytest.raises(EvaluationError):
            narrow.evaluate_rule(RandomBaseline(seed=0), "random")


class TestTrainTestSplit:
    def test_disjoint_and_covering(self, tiny_dataset, protocol):
        train, test = protocol.train_test_split(seed=0)
        assert not set(train) & set(test)
        assert sorted(train + test) == tiny_dataset.cohorts.all_customers()

    def test_stratified(self, tiny_dataset, protocol):
        train, test = protocol.train_test_split(test_fraction=0.5, seed=0)
        churners = tiny_dataset.cohorts.churners
        assert sum(1 for c in train if c in churners) == 6
        assert sum(1 for c in test if c in churners) == 6

    def test_both_sides_nonempty_even_for_extreme_fraction(self, protocol):
        train, test = protocol.train_test_split(test_fraction=0.01, seed=0)
        assert train and test

    def test_invalid_fraction(self, protocol):
        with pytest.raises(ConfigError):
            protocol.train_test_split(test_fraction=1.0)

    def test_deterministic(self, protocol):
        assert protocol.train_test_split(seed=5) == protocol.train_test_split(seed=5)
