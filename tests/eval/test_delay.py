"""Tests for repro.eval.delay (detection-delay analysis)."""

from __future__ import annotations

import pytest

from repro.core.model import StabilityModel
from repro.errors import ConfigError, EvaluationError
from repro.eval.delay import calibrate_beta, detection_delay


class TestCalibrateBeta:
    @pytest.fixture(scope="class")
    def model(self, request):
        dataset = request.getfixturevalue("tiny_dataset")
        return StabilityModel(dataset.calendar).fit(dataset.log)

    def test_zero_budget_only_zero_stability_customers_alarm(self, tiny_dataset, model):
        # The paper's rule alarms at stability <= beta, so beta = 0 cannot
        # silence a loyal customer who had an entirely empty window; every
        # other loyal customer must stay quiet.
        loyal = sorted(tiny_dataset.cohorts.loyal)
        beta = calibrate_beta(model, loyal, target_false_alarm_rate=0.0)
        from repro.core.detector import ThresholdDetector

        detector = ThresholdDetector(beta)
        first_window = next(
            k for k in range(model.n_windows) if model.window_month(k) >= 12
        )
        for customer in loyal:
            alarm = detector.first_alarm(model.trajectory(customer), first_window)
            if alarm is not None:
                assert alarm.stability == 0.0

    def test_budget_respected(self, tiny_dataset, model):
        loyal = sorted(tiny_dataset.cohorts.loyal)
        beta = calibrate_beta(model, loyal, target_false_alarm_rate=0.25)
        from repro.core.detector import ThresholdDetector

        detector = ThresholdDetector(beta)
        first_window = next(
            k for k in range(model.n_windows) if model.window_month(k) >= 12
        )
        alarmed = sum(
            1
            for c in loyal
            if detector.first_alarm(model.trajectory(c), first_window) is not None
        )
        assert alarmed <= 0.25 * len(loyal) + 1e-9

    def test_higher_budget_higher_beta(self, tiny_dataset, model):
        loyal = sorted(tiny_dataset.cohorts.loyal)
        low = calibrate_beta(model, loyal, target_false_alarm_rate=0.0)
        high = calibrate_beta(model, loyal, target_false_alarm_rate=0.5)
        assert high >= low

    def test_invalid_rate(self, tiny_dataset, model):
        with pytest.raises(ConfigError):
            calibrate_beta(model, [0], target_false_alarm_rate=1.0)

    def test_empty_loyal_rejected(self, model):
        with pytest.raises(EvaluationError):
            calibrate_beta(model, [], target_false_alarm_rate=0.1)


class TestDetectionDelay:
    @pytest.fixture(scope="class")
    def analysis(self, request):
        dataset = request.getfixturevalue("small_dataset")
        return detection_delay(dataset.bundle, target_false_alarm_rate=0.05)

    def test_false_alarm_rate_at_or_below_target(self, analysis):
        assert analysis.realised_false_alarm_rate <= 0.05 + 1e-9

    def test_recall_meaningful(self, analysis):
        # Most injected churners are eventually detected.
        assert analysis.recall > 0.6

    def test_delays_mostly_positive_and_bounded(self, analysis):
        # Alarms overwhelmingly come after the onset (a churner can alarm
        # early by chance — a noisy pre-onset window — but rarely) and
        # always within the study horizon.
        # Latest possible alarm: study end (month 28) minus the earliest
        # jittered onset (month 17) = 11 months.
        delays = list(analysis.delays_months.values())
        assert all(d <= 11 for d in delays)
        non_negative = sum(1 for d in delays if d >= 0)
        assert non_negative / len(delays) > 0.8

    def test_detection_in_first_months_of_defection(self, analysis):
        # Paper: "This identification takes place in the first months of
        # the customer defection."
        assert analysis.median_delay_months <= 6.0

    def test_summary_consistency(self, analysis):
        assert analysis.n_detected == len(analysis.delays_months)
        assert 0.0 <= analysis.beta <= 1.0
