"""Tests for repro.eval.figure2 — experiment E2."""

from __future__ import annotations

import math

import pytest

from repro.eval.figure2 import Figure2Result, run_figure2


@pytest.fixture(scope="module")
def result(request) -> Figure2Result:
    return run_figure2(case=request.getfixturevalue("case_study"))


class TestFigure2:
    def test_axis_matches_paper(self, result: Figure2Result):
        assert result.months == [12, 14, 16, 18, 20, 22, 24]

    def test_loyal_before_defection(self, result: Figure2Result):
        # "the stability value indicates that the customer is loyal in the
        # first months"
        for month, value in zip(result.months, result.stability):
            if month <= 18:
                assert value > 0.9

    def test_first_drop_at_month_20(self, result: Figure2Result):
        by_month = dict(zip(result.months, result.stability))
        assert by_month[20] < by_month[18] - 0.05

    def test_second_drop_sharper(self, result: Figure2Result):
        # "In month 22, the decrease is sharper because the customer lost
        # several significant products"
        by_month = dict(zip(result.months, result.stability))
        first_drop = by_month[18] - by_month[20]
        second_drop = by_month[20] - by_month[22]
        assert second_drop > first_drop

    def test_month20_explained_by_coffee(self, result: Figure2Result):
        names = result.explained_names(20, top_k=1)
        assert names == ["Coffee"]

    def test_month22_explained_by_milk_sponge_cheese(self, result: Figure2Result):
        names = set(result.explained_names(22, top_k=3))
        assert names == {"Milk", "Sponges", "Cheese"}

    def test_explanations_carry_stability(self, result: Figure2Result):
        by_month = dict(zip(result.months, result.stability))
        for month, explanation in result.explanations.items():
            assert explanation.stability == pytest.approx(by_month[month])

    def test_ground_truth_names(self, result: Figure2Result):
        assert result.first_loss_names == ("Coffee",)
        assert set(result.second_loss_names) == {"Milk", "Sponges", "Cheese"}

    def test_no_nan_in_plotted_range(self, result: Figure2Result):
        assert not any(math.isnan(v) for v in result.stability)

    def test_default_case_generated_when_omitted(self):
        result = run_figure2(seed=11)
        assert result.months[0] == 12

    def test_custom_month_range(self, case_study):
        result = run_figure2(case=case_study, first_month=16, last_month=22)
        assert result.months == [16, 18, 20, 22]
