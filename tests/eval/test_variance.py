"""Tests for repro.eval.variance (seed-variance study)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.eval.variance import figure1_variance


@pytest.fixture(scope="module")
def summary():
    return figure1_variance(seeds=(1, 2, 3), n_loyal=20, n_churners=20)


class TestFigure1Variance:
    def test_months_match_paper_axis(self, summary):
        assert summary.months == (12, 14, 16, 18, 20, 22, 24)

    def test_seeds_recorded(self, summary):
        assert summary.seeds == (1, 2, 3)

    def test_means_valid(self, summary):
        for month in summary.months:
            assert 0.0 <= summary.stability_mean[month] <= 1.0
            assert 0.0 <= summary.rfm_mean[month] <= 1.0
            assert summary.stability_std[month] >= 0.0

    def test_shape_holds_in_expectation(self, summary):
        # Pre-onset near chance, post-onset strong — across seeds.
        assert abs(summary.stability_mean[14] - 0.5) < 0.2
        assert summary.stability_mean[22] > 0.8

    def test_variance_is_nonzero(self, summary):
        # Different seeds genuinely produce different datasets.
        assert any(summary.stability_std[m] > 0.0 for m in summary.months)

    def test_rows_formatting(self, summary):
        rows = summary.rows()
        assert len(rows) == 7
        month, stab, rfm = rows[0]
        assert month == 12
        assert "±" in stab and "±" in rfm

    def test_needs_two_seeds(self):
        with pytest.raises(ConfigError):
            figure1_variance(seeds=(1,))
