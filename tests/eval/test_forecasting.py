"""Tests for repro.eval.forecasting (future-defection backtest)."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.eval.forecasting import evaluate_forecasts


class TestEvaluateForecasts:
    @pytest.fixture(scope="class")
    def results(self, request):
        dataset = request.getfixturevalue("small_dataset")
        return {
            month: evaluate_forecasts(dataset.bundle, forecast_month=month)
            for month in (18, 22)
        }

    def test_metadata(self, results, small_dataset):
        evaluation = results[22]
        assert evaluation.forecast_month == 22
        assert evaluation.n_customers == 80
        assert 0 < evaluation.n_future_crossers < 80

    def test_aurocs_valid(self, results):
        for evaluation in results.values():
            assert 0.0 <= evaluation.auroc_vs_labels <= 1.0
            assert 0.0 <= evaluation.auroc_vs_future_crossing <= 1.0

    def test_prediction_strengthens_as_decline_develops(self, results):
        assert (
            results[22].auroc_vs_future_crossing
            > results[18].auroc_vs_future_crossing
        )

    def test_identifies_future_defectors_mid_decline(self, results):
        # The abstract's claim: customers likely to defect in future
        # months are identified (well above chance) once the decline has
        # started but before they cross the threshold.
        assert results[22].auroc_vs_future_crossing > 0.75
        assert results[22].auroc_vs_labels > 0.75

    def test_unaligned_month_rejected(self, small_dataset):
        with pytest.raises(EvaluationError, match="ends at month"):
            evaluate_forecasts(small_dataset.bundle, forecast_month=21)
