"""Tests for repro.eval.power."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.eval.power import power_analysis


@pytest.fixture(scope="module")
def analysis():
    return power_analysis(
        cohort_sizes=(8, 24), seeds=(1, 2, 3), eval_month=22, target_std=0.2
    )


class TestPowerAnalysis:
    def test_points_sorted_by_size(self, analysis):
        sizes = [p.n_per_cohort for p in analysis.points]
        assert sizes == sorted(sizes) == [8, 24]

    def test_aurocs_valid(self, analysis):
        for point in analysis.points:
            assert 0.0 <= point.mean_auroc <= 1.0
            assert point.std_auroc >= 0.0

    def test_detection_holds_at_small_scale(self, analysis):
        # Month 22 is well past onset: even tiny cohorts detect on average.
        assert all(p.mean_auroc > 0.7 for p in analysis.points)

    def test_recommendation_respects_target(self, analysis):
        if analysis.recommended_n is not None:
            point = next(
                p for p in analysis.points if p.n_per_cohort == analysis.recommended_n
            )
            assert point.std_auroc <= analysis.target_std

    def test_rows_format(self, analysis):
        rows = analysis.rows()
        assert len(rows) == 2
        assert rows[0][0] == 8

    def test_validation(self):
        with pytest.raises(ConfigError):
            power_analysis(cohort_sizes=(), seeds=(1, 2))
        with pytest.raises(ConfigError):
            power_analysis(cohort_sizes=(10,), seeds=(1,))
