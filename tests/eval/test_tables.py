"""Tests for repro.eval.tables — experiment E3."""

from __future__ import annotations

import pytest

from repro.eval.tables import PAPER_STATS, DatasetStats, dataset_stats


@pytest.fixture(scope="module")
def stats(request) -> DatasetStats:
    return dataset_stats(request.getfixturevalue("small_dataset").bundle)


class TestDatasetStats:
    def test_customer_counts(self, small_dataset, stats: DatasetStats):
        assert stats.n_customers == 80
        assert stats.n_loyal == 40
        assert stats.n_churners == 40

    def test_receipts_match_log(self, small_dataset, stats: DatasetStats):
        assert stats.n_receipts == small_dataset.log.n_baskets

    def test_catalog_counts(self, small_dataset, stats: DatasetStats):
        assert stats.n_products == small_dataset.catalog.n_products
        assert stats.n_segments == small_dataset.catalog.n_segments
        assert stats.n_segments_bought <= stats.n_segments

    def test_study_shape(self, stats: DatasetStats):
        assert stats.n_months == 28
        assert stats.onset_month == 18

    def test_means_positive(self, stats: DatasetStats):
        assert stats.receipts_per_customer_mean > 0
        assert stats.basket_size_mean > 0
        assert stats.monetary_per_receipt_mean > 0

    def test_rows_include_paper_reference(self, stats: DatasetStats):
        rows = stats.rows()
        by_name = {name.strip(): (paper, ours) for name, paper, ours in rows}
        assert by_name["customers"][0] == f"{PAPER_STATS['n_customers']:,}"
        assert by_name["segments"][0] == "3,388"
        assert by_name["customers"][1] == "80"

    def test_paper_stats_constants(self):
        assert PAPER_STATS["n_segments"] == 3_388
        assert PAPER_STATS["n_months"] == 28
