"""Tests for repro.eval.figure1 — experiment E1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.figure1 import Figure1Result, run_figure1


@pytest.fixture(scope="module")
def result(request) -> Figure1Result:
    dataset = request.getfixturevalue("small_dataset")
    return run_figure1(dataset.bundle, seed=0)


class TestFigure1:
    def test_month_axis_matches_paper(self, result: Figure1Result):
        assert result.months() == [12, 14, 16, 18, 20, 22, 24]

    def test_metadata(self, result: Figure1Result):
        assert result.onset_month == 18
        assert result.window_months == 2
        assert result.alpha == 2.0

    def test_rows_align_both_series(self, result: Figure1Result):
        rows = result.rows()
        assert [month for month, __, __ in rows] == result.months()
        for __, stab, rfm in rows:
            assert 0.0 <= stab <= 1.0
            assert 0.0 <= rfm <= 1.0

    def test_pre_onset_near_chance(self, result: Figure1Result):
        # Before defection there is no signal: both models hover near 0.5.
        for month in (12, 14, 16):
            assert abs(result.stability.at_month(month) - 0.5) < 0.25
            assert abs(result.rfm.at_month(month) - 0.5) < 0.25

    def test_stability_detects_soon_after_onset(self, result: Figure1Result):
        # Paper: AUROC ~0.79 two months after the onset.
        assert result.stability.at_month(20) > 0.7

    def test_detection_improves_over_defection_period(self, result: Figure1Result):
        assert result.stability.at_month(24) > result.stability.at_month(18)
        assert result.rfm.at_month(24) > result.rfm.at_month(18)

    def test_rfm_also_detects_eventually(self, result: Figure1Result):
        # Paper: "our model and the RFM model have similar performances".
        assert result.rfm.at_month(24) > 0.65

    def test_post_onset_mean_gap_is_moderate(self, result: Figure1Result):
        post = [20, 22, 24]
        stab = np.mean([result.stability.at_month(m) for m in post])
        rfm = np.mean([result.rfm.at_month(m) for m in post])
        assert abs(stab - rfm) < 0.35

    def test_deterministic(self, small_dataset, result: Figure1Result):
        again = run_figure1(small_dataset.bundle, seed=0)
        assert again.stability.values() == result.stability.values()
        assert again.rfm.values() == result.rfm.values()

    def test_custom_month_range(self, small_dataset):
        narrow = run_figure1(
            small_dataset.bundle, first_month=18, last_month=22, seed=0
        )
        assert narrow.months() == [18, 20, 22]
