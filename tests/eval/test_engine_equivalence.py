"""End-to-end engine equivalence: one protocol, three engines, one ROC.

Satellite guarantee of the PopulationFrame refactor: running the full
evaluation protocol (ROC sweep over every evaluation window) through the
incremental, vectorized and batch engines yields **bit-identical** ROC
months and AUROC values on a randomized synthetic cohort (exact ``==``,
the rank statistic tolerates no drift), with raw churn scores agreeing
to the codebase's established 1e-12 engine tolerance.
"""

from __future__ import annotations

import pytest

from repro.config import ExperimentConfig
from repro.core.engines import available_engines
from repro.core.model import StabilityModel
from repro.eval.protocol import EvaluationProtocol
from repro.synth import ScenarioConfig, generate_dataset


@pytest.fixture(scope="module")
def randomized_bundle():
    """A fresh randomized cohort, distinct from the shared fixtures."""
    return generate_dataset(
        ScenarioConfig(n_loyal=15, n_churners=15, seed=20260805)
    ).bundle


@pytest.fixture(scope="module")
def series_by_engine(randomized_bundle):
    config = ExperimentConfig(first_month=12, last_month=24)
    protocol = EvaluationProtocol(randomized_bundle, config=config)
    customers = randomized_bundle.cohorts.all_customers()
    series = {}
    for backend in available_engines():
        model = StabilityModel.from_config(
            randomized_bundle.calendar, config.evolve(backend=backend)
        ).fit(protocol.frame())
        series[backend] = protocol.evaluate_stability_model(model, customers)
    return series


def test_all_engines_registered(series_by_engine):
    assert set(series_by_engine) == {"incremental", "vectorized", "batch"}


def test_roc_months_identical(series_by_engine):
    reference = series_by_engine["incremental"]
    for backend, series in series_by_engine.items():
        assert series.months() == reference.months(), backend


def test_auroc_bit_identical_across_engines(series_by_engine):
    reference = {
        p.month: p.auroc for p in series_by_engine["incremental"].points
    }
    for backend, series in series_by_engine.items():
        for point in series.points:
            assert point.auroc == reference[point.month], (
                backend,
                point.month,
            )


def test_churn_scores_agree_across_engines(randomized_bundle):
    config = ExperimentConfig()
    protocol = EvaluationProtocol(randomized_bundle, config=config)
    customers = randomized_bundle.cohorts.all_customers()
    models = {
        backend: StabilityModel.from_config(
            randomized_bundle.calendar, config.evolve(backend=backend)
        ).fit(protocol.frame())
        for backend in available_engines()
    }
    for window_index in (6, 9, 12):
        reference = models["incremental"].churn_scores(window_index, customers)
        for backend, model in models.items():
            scores = model.churn_scores(window_index, customers)
            assert scores.keys() == reference.keys()
            for customer_id, score in reference.items():
                assert scores[customer_id] == pytest.approx(score, abs=1e-12), (
                    backend,
                    customer_id,
                )
