"""Tests for repro.eval.campaign (budgeted-targeting comparison)."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.eval.campaign import compare_models


@pytest.fixture(scope="module")
def comparison(request):
    dataset = request.getfixturevalue("small_dataset")
    return compare_models(dataset.bundle, months=(20, 24), budgets=(0.1, 0.2), seed=0)


class TestCompareModels:
    def test_all_models_present(self, comparison):
        assert set(comparison.models()) == {
            "stability",
            "rfm",
            "behavioral",
            "sequence",
            "stability+rfm",
            "recency",
            "frequency-drop",
            "random",
        }

    def test_ensemble_competitive_with_members(self, comparison):
        ensemble = comparison.at("stability+rfm", 24).auroc
        rfm = comparison.at("rfm", 24).auroc
        assert ensemble > rfm - 0.05

    def test_all_months_covered(self, comparison):
        for model in comparison.models():
            for month in (20, 24):
                point = comparison.at(model, month)
                assert 0.0 <= point.auroc <= 1.0

    def test_missing_point_raises(self, comparison):
        with pytest.raises(EvaluationError):
            comparison.at("stability", 99)

    def test_budgets_recorded(self, comparison):
        assert comparison.budgets == (0.1, 0.2)
        point = comparison.at("stability", 24)
        assert set(point.lift) == {0.1, 0.2}
        assert set(point.precision) == {0.1, 0.2}

    def test_stability_beats_random_at_month_24(self, comparison):
        stability = comparison.at("stability", 24)
        random = comparison.at("random", 24)
        assert stability.auroc > random.auroc + 0.2

    def test_stability_lift_above_one_post_onset(self, comparison):
        point = comparison.at("stability", 24)
        assert all(lift > 1.2 for lift in point.lift.values())

    def test_precision_in_unit_interval(self, comparison):
        for model in comparison.models():
            point = comparison.at(model, 24)
            assert all(0.0 <= p <= 1.0 for p in point.precision.values())

    def test_auroc_table_puts_stability_first(self, comparison):
        rows = comparison.auroc_table()
        assert rows[0][0] == "stability"
        assert set(rows[0][1]) == {20, 24}

    def test_unaligned_month_rejected(self, small_dataset):
        with pytest.raises(EvaluationError, match="ends at month"):
            compare_models(small_dataset.bundle, months=(21,))
