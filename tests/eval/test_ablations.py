"""Tests for repro.eval.ablations — experiments A1-A3."""

from __future__ import annotations

import pytest

from repro.eval.ablations import (
    alpha_sweep,
    explanation_quality,
    significance_function_sweep,
    window_sweep,
)


class TestAlphaSweep:
    def test_labels_and_range(self, tiny_dataset):
        points = alpha_sweep(tiny_dataset.bundle, alphas=(1.5, 2.0))
        assert [p.label for p in points] == ["alpha=1.5", "alpha=2"]
        assert all(0.0 <= p.auroc <= 1.0 for p in points)

    def test_detection_beats_chance_at_alpha_two(self, tiny_dataset):
        points = alpha_sweep(tiny_dataset.bundle, alphas=(2.0,))
        assert points[0].auroc > 0.6


class TestWindowSweep:
    def test_labels(self, tiny_dataset):
        points = window_sweep(tiny_dataset.bundle, window_months_list=(1, 2, 3))
        assert [p.label for p in points] == ["w=1mo", "w=2mo", "w=3mo"]

    def test_all_spans_evaluated(self, tiny_dataset):
        points = window_sweep(tiny_dataset.bundle, window_months_list=(1, 2, 3, 4))
        assert all(0.0 <= p.auroc <= 1.0 for p in points)


class TestSignificanceSweep:
    def test_all_functions_present(self, tiny_dataset):
        points = significance_function_sweep(tiny_dataset.bundle)
        assert {p.label for p in points} == {
            "exponential",
            "frequency-ratio",
            "linear",
        }

    def test_all_beat_chance_after_onset(self, tiny_dataset):
        points = significance_function_sweep(tiny_dataset.bundle)
        assert all(p.auroc > 0.55 for p in points)


class TestExplanationQuality:
    @pytest.fixture(scope="class")
    def quality(self, request):
        return explanation_quality(
            request.getfixturevalue("tiny_dataset"), top_k=3
        )

    def test_bounds(self, quality):
        assert 0.0 <= quality.precision <= 1.0
        assert 0.0 <= quality.recall <= 1.0
        assert quality.top_k == 3

    def test_evaluates_drop_windows(self, quality):
        assert quality.n_evaluated > 0

    def test_explanations_recover_ground_truth(self, quality):
        # Top-3 explanations should hit the injected losses far more often
        # than chance (random guessing over ~120 segments would give <5%).
        assert quality.recall > 0.3
        assert quality.precision > 0.2
