"""Tests for repro.eval.reporting."""

from __future__ import annotations

import pytest

from repro.eval.ablations import AblationPoint, ExplanationQuality
from repro.eval.figure1 import run_figure1
from repro.eval.figure2 import run_figure2
from repro.eval.reporting import (
    format_table,
    render_ablation,
    render_dataset_stats,
    render_explanation_quality,
    render_figure1,
    render_figure2,
)
from repro.eval.tables import dataset_stats


class TestFormatTable:
    def test_alignment(self):
        out = format_table(("a", "bbb"), [("x", 1), ("yyyy", 22)])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "----" in lines[1]
        assert len(lines) == 4

    def test_empty_rows(self):
        out = format_table(("col",), [])
        assert "col" in out

    def test_indent(self):
        out = format_table(("a",), [("x",)], indent="  ")
        assert all(line.startswith("  ") for line in out.splitlines())


class TestRenderers:
    @pytest.fixture(scope="class")
    def figure1(self, request):
        dataset = request.getfixturevalue("tiny_dataset")
        return run_figure1(dataset.bundle, seed=0)

    def test_render_figure1(self, figure1):
        text = render_figure1(figure1)
        assert "Figure 1" in text
        assert "stability AUROC" in text
        assert "month" in text
        # All evaluated months appear in the table.
        for month in figure1.months():
            assert f"\n{month} " in text or f"\n{month}" in text

    def test_render_figure2(self, case_study):
        text = render_figure2(run_figure2(case=case_study))
        assert "Figure 2" in text
        assert "Coffee" in text
        assert "month 20" in text
        assert "month 22" in text
        assert "ground truth" in text

    def test_render_dataset_stats(self, tiny_dataset):
        text = render_dataset_stats(dataset_stats(tiny_dataset.bundle))
        assert "6,000,000" in text  # the paper column
        assert "statistic" in text

    def test_render_ablation(self):
        text = render_ablation(
            "alpha sweep", [AblationPoint(label="alpha=2", auroc=0.789)]
        )
        assert "alpha sweep" in text
        assert "0.789" in text

    def test_render_explanation_quality(self):
        text = render_explanation_quality(
            ExplanationQuality(top_k=3, precision=0.5, recall=0.25, n_evaluated=10)
        )
        assert "top-3" in text
        assert "precision=0.500" in text
        assert "recall=0.250" in text


class TestExtensionRenderers:
    def test_render_delay(self):
        from repro.eval.delay import DelayAnalysis
        from repro.eval.reporting import render_delay

        analysis = DelayAnalysis(
            beta=0.4,
            target_false_alarm_rate=0.1,
            realised_false_alarm_rate=0.08,
            recall=0.7,
            delays_months={1: 3.0, 2: 5.0},
            median_delay_months=4.0,
            mean_delay_months=4.0,
        )
        text = render_delay(analysis)
        assert "0.400" in text
        assert "8.0%" in text
        assert "median delay" in text

    def test_render_campaign(self, tiny_dataset):
        from repro.eval.campaign import compare_models
        from repro.eval.reporting import render_campaign

        comparison = compare_models(
            tiny_dataset.bundle, months=(22,), budgets=(0.1,), seed=0
        )
        text = render_campaign(comparison, (22,))
        assert "stability" in text
        assert "lift@10%" in text

    def test_render_mechanisms(self):
        from repro.eval.reporting import render_mechanisms
        from repro.eval.robustness import MechanismResult

        results = [
            MechanismResult(
                mechanism="item-loss",
                stability_auroc={20: 0.9},
                rfm_auroc={20: 0.6},
            )
        ]
        text = render_mechanisms(results, (20,))
        assert "item-loss" in text
        assert "0.900" in text
        assert "0.600" in text

    def test_render_variance(self):
        from repro.eval.reporting import render_variance
        from repro.eval.variance import VarianceSummary

        summary = VarianceSummary(
            months=(20,),
            seeds=(1, 2),
            stability_mean={20: 0.8},
            stability_std={20: 0.02},
            rfm_mean={20: 0.6},
            rfm_std={20: 0.05},
        )
        text = render_variance(summary)
        assert "0.800 ± 0.020" in text
        assert "0.600 ± 0.050" in text
