"""Tests for repro.eval.customer_report."""

from __future__ import annotations

import pytest

from repro.core.model import StabilityModel
from repro.errors import ConfigError, DataError
from repro.eval.customer_report import build_customer_report, render_customer_report


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("small_dataset")
    model = StabilityModel(dataset.calendar, window_months=2).fit(dataset.log)
    return dataset, model


class TestBuildCustomerReport:
    def test_churner_report_has_drops_and_forecast(self, fitted):
        dataset, model = fitted
        churner = sorted(dataset.cohorts.churners)[0]
        report = build_customer_report(model, dataset.log, churner)
        assert report.customer_id == churner
        assert len(report.months) == model.n_windows
        assert report.drops  # an injected churner must show drops
        assert report.forecast is not None
        assert report.n_receipts == len(dataset.log.history(churner))
        assert report.total_spend > 0

    def test_loyal_report_mostly_clean(self, fitted):
        dataset, model = fitted
        loyal = sorted(dataset.cohorts.loyal)[0]
        report = build_customer_report(model, dataset.log, loyal, drop_threshold=0.3)
        # A loyal customer should show at most incidental drops at a high
        # threshold.
        assert len(report.drops) <= 2

    def test_unfitted_customer_rejected(self, fitted):
        dataset, model = fitted
        with pytest.raises(DataError):
            build_customer_report(model, dataset.log, 10_000)

    def test_invalid_threshold(self, fitted):
        dataset, model = fitted
        with pytest.raises(ConfigError):
            build_customer_report(model, dataset.log, 0, drop_threshold=0.0)

    def test_drop_months_align_with_trajectory(self, fitted):
        dataset, model = fitted
        churner = sorted(dataset.cohorts.churners)[1]
        report = build_customer_report(model, dataset.log, churner)
        trajectory = model.trajectory(churner)
        expected = {model.window_month(k) for k in trajectory.drops(0.1)}
        assert set(report.drops) == expected


class TestRenderCustomerReport:
    def test_renders_all_sections(self, fitted):
        dataset, model = fitted
        churner = sorted(dataset.cohorts.churners)[0]
        report = build_customer_report(model, dataset.log, churner)
        text = render_customer_report(report, dataset.catalog)
        assert f"customer {churner}" in text
        assert "stability trajectory" in text
        assert "detected drops:" in text
        assert "trend:" in text
        assert "RFM at latest window:" in text

    def test_loyal_render_says_no_drops(self, fitted):
        dataset, model = fitted
        # Find a loyal customer with zero drops at the default threshold.
        for loyal in sorted(dataset.cohorts.loyal):
            report = build_customer_report(model, dataset.log, loyal)
            if not report.drops:
                text = render_customer_report(report, dataset.catalog)
                assert "no stability drops detected" in text
                return
        pytest.skip("every loyal customer had an incidental drop")

    def test_segment_names_resolved(self, fitted):
        dataset, model = fitted
        churner = sorted(dataset.cohorts.churners)[0]
        report = build_customer_report(model, dataset.log, churner)
        text = render_customer_report(report, dataset.catalog, top_k=2)
        # At least one drop line should name a real catalog segment.
        names = [s.name for s in dataset.catalog.segments()]
        assert any(name in text for name in names)
