"""Tests for repro.eval.robustness (mechanism crossover, vacations)."""

from __future__ import annotations

import pytest

from repro.eval.robustness import mechanism_crossover, vacation_sensitivity
from repro.synth.scenarios import ATTRITION_MECHANISMS, mechanism_scenario


class TestMechanismScenario:
    def test_unknown_mechanism_rejected(self):
        with pytest.raises(KeyError, match="unknown mechanism"):
            mechanism_scenario("meteor-strike", n_loyal=2, n_churners=2)

    def test_item_loss_has_no_trip_decay(self):
        dataset = mechanism_scenario("item-loss", n_loyal=3, n_churners=3, seed=1)
        for schedule in dataset.schedules.values():
            assert schedule.trip_decay_per_month == 1.0
            assert schedule.drop_month  # segments are actually dropped

    def test_trip_decay_has_no_item_loss(self):
        dataset = mechanism_scenario("trip-decay", n_loyal=3, n_churners=3, seed=1)
        for schedule in dataset.schedules.values():
            assert schedule.drop_month == {}
            assert schedule.trip_decay_per_month < 1.0

    def test_presets_cover_both_axes(self):
        assert set(ATTRITION_MECHANISMS) == {"item-loss", "trip-decay", "mixed"}


class TestMechanismCrossover:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            r.mechanism: r
            for r in mechanism_crossover(
                n_loyal=40, n_churners=40, months=(22, 24), seed=7
            )
        }

    def test_all_mechanisms_evaluated(self, results):
        assert set(results) == {"item-loss", "trip-decay", "mixed"}

    def test_stability_dominates_item_loss(self, results):
        result = results["item-loss"]
        assert result.stability_wins_at(22)
        assert result.stability_auroc[22] > 0.85

    def test_rfm_wins_trip_decay(self, results):
        # The crossover: with no content signal, the volume-based model
        # overtakes the stability model.
        result = results["trip-decay"]
        assert result.rfm_auroc[24] > result.stability_auroc[24] - 0.02

    def test_stability_degrades_without_item_loss(self, results):
        assert (
            results["trip-decay"].stability_auroc[22]
            < results["item-loss"].stability_auroc[22] - 0.1
        )

    def test_aurocs_valid(self, results):
        for result in results.values():
            for series in (result.stability_auroc, result.rfm_auroc):
                assert all(0.0 <= v <= 1.0 for v in series.values())


class TestVacationSensitivity:
    @pytest.fixture(scope="class")
    def points(self):
        return vacation_sensitivity(
            vacation_probs=(0.0, 0.5), n_loyal=30, n_churners=30, seed=7
        )

    def test_sweep_shape(self, points):
        assert [p.vacation_prob for p in points] == [0.0, 0.5]

    def test_metrics_valid(self, points):
        for point in points:
            assert 0.0 <= point.auroc <= 1.0
            assert 0.0 <= point.loyal_false_alarm_rate <= 1.0

    def test_detection_survives_vacations(self, points):
        # Vacations add noise but must not destroy post-onset detection.
        assert all(p.auroc > 0.75 for p in points)
