"""Tests for repro.data.calendar."""

from __future__ import annotations

import datetime as dt

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.calendar import (
    PAPER_STUDY_MONTHS,
    PAPER_STUDY_START,
    StudyCalendar,
    month_span_days,
)
from repro.errors import ConfigError


class TestStudyCalendar:
    def test_paper_calendar_spans_may_2012_to_aug_2014(self):
        cal = StudyCalendar.paper()
        assert cal.start == dt.date(2012, 5, 1)
        assert cal.n_months == 28
        assert cal.end == dt.date(2014, 9, 1)

    def test_paper_constants(self):
        assert PAPER_STUDY_START == dt.date(2012, 5, 1)
        assert PAPER_STUDY_MONTHS == 28

    def test_n_days_matches_date_difference(self):
        cal = StudyCalendar.paper()
        assert cal.n_days == (dt.date(2014, 9, 1) - dt.date(2012, 5, 1)).days

    def test_day_zero_is_start(self):
        cal = StudyCalendar.paper()
        assert cal.date_of_day(0) == cal.start
        assert cal.day_of_date(cal.start) == 0

    def test_day_date_round_trip(self):
        cal = StudyCalendar.paper()
        for day in (0, 1, 30, 365, cal.n_days - 1):
            assert cal.day_of_date(cal.date_of_day(day)) == day

    def test_month_start_days_are_increasing(self):
        cal = StudyCalendar.paper()
        starts = [cal.month_start_day(m) for m in range(cal.n_months + 1)]
        assert starts[0] == 0
        assert all(b < a for b, a in zip(starts, starts[1:]))

    def test_month_of_day_at_boundaries(self):
        cal = StudyCalendar.paper()
        for month in range(cal.n_months):
            begin, end = cal.month_bounds_days(month)
            assert cal.month_of_day(begin) == month
            assert cal.month_of_day(end - 1) == month

    def test_month_of_day_rejects_negative(self):
        with pytest.raises(ConfigError):
            StudyCalendar.paper().month_of_day(-1)

    def test_month_start_day_rejects_negative(self):
        with pytest.raises(ConfigError):
            StudyCalendar.paper().month_start_day(-1)

    def test_invalid_n_months(self):
        with pytest.raises(ConfigError):
            StudyCalendar(n_months=0)

    def test_contains_day(self):
        cal = StudyCalendar(n_months=2)
        assert cal.contains_day(0)
        assert cal.contains_day(cal.n_days - 1)
        assert not cal.contains_day(cal.n_days)
        assert not cal.contains_day(-1)

    def test_month_label(self):
        cal = StudyCalendar.paper()
        assert cal.month_label(0) == "2012-05"
        assert cal.month_label(8) == "2013-01"
        assert cal.month_label(27) == "2014-08"

    def test_non_first_day_start(self):
        cal = StudyCalendar(start=dt.date(2020, 1, 15), n_months=3)
        # Feb 10 is still in study month 0 (Jan 15 .. Feb 14).
        assert cal.month_of_day(cal.day_of_date(dt.date(2020, 2, 10))) == 0
        assert cal.month_of_day(cal.day_of_date(dt.date(2020, 2, 15))) == 1

    def test_month_end_clamping_january_31_start(self):
        # Jan 31 + 1 month must clamp to Feb 29 (2020 is a leap year).
        assert month_span_days(dt.date(2020, 1, 31), 1) == 29


class TestMonthSpanDays:
    def test_zero_months(self):
        assert month_span_days(dt.date(2012, 5, 1), 0) == 0

    def test_one_month_may(self):
        assert month_span_days(dt.date(2012, 5, 1), 1) == 31

    def test_full_year(self):
        assert month_span_days(dt.date(2013, 1, 1), 12) == 365

    def test_leap_year(self):
        assert month_span_days(dt.date(2012, 1, 1), 12) == 366

    @given(months=st.integers(min_value=0, max_value=60))
    def test_additivity(self, months: int):
        start = dt.date(2012, 5, 1)
        total = month_span_days(start, months)
        split = month_span_days(start, months // 2)
        mid = start + dt.timedelta(days=split)
        assert split + month_span_days(mid, months - months // 2) == total

    @given(months=st.integers(min_value=1, max_value=120))
    def test_span_bounds(self, months: int):
        days = month_span_days(dt.date(2012, 5, 1), months)
        assert 28 * months <= days <= 31 * months


class TestMonthOfDayProperties:
    @given(day=st.integers(min_value=0, max_value=852))
    def test_month_consistent_with_bounds(self, day: int):
        cal = StudyCalendar.paper()
        month = cal.month_of_day(day)
        begin, end = cal.month_bounds_days(month)
        assert begin <= day < end

    @given(month=st.integers(min_value=0, max_value=27))
    def test_bounds_are_contiguous(self, month: int):
        cal = StudyCalendar.paper()
        __, end = cal.month_bounds_days(month)
        begin_next, __ = cal.month_bounds_days(month + 1)
        assert end == begin_next
