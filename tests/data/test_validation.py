"""Tests for repro.data.validation."""

from __future__ import annotations

import pytest

from repro.data.basket import Basket
from repro.data.calendar import StudyCalendar
from repro.data.cohorts import CohortLabels
from repro.data.items import Catalog
from repro.data.transactions import TransactionLog
from repro.data.validation import (
    DatasetBundle,
    validate_bundle,
    validate_cohort_coverage,
    validate_log_calendar,
    validate_log_items,
)
from repro.errors import DataError


@pytest.fixture()
def catalog() -> Catalog:
    cat = Catalog()
    seg = cat.add_segment("Coffee")
    cat.add_product("Arabica", seg.segment_id)
    return cat


@pytest.fixture()
def calendar() -> StudyCalendar:
    return StudyCalendar(n_months=2)


@pytest.fixture()
def log() -> TransactionLog:
    return TransactionLog([Basket.of(customer_id=1, day=0, items=[0])])


@pytest.fixture()
def cohorts() -> CohortLabels:
    return CohortLabels(loyal=frozenset({1}), churners=frozenset(), onset_month=1)


class TestItemValidation:
    def test_segment_level_ok(self, log, catalog):
        validate_log_items(log, catalog, level="segment")

    def test_unknown_item_detected(self, catalog):
        log = TransactionLog([Basket.of(customer_id=1, day=0, items=[42])])
        with pytest.raises(DataError, match="unknown to the catalog"):
            validate_log_items(log, catalog, level="segment")

    def test_product_level(self, log, catalog):
        validate_log_items(log, catalog, level="product")

    def test_unknown_level_rejected(self, log, catalog):
        with pytest.raises(DataError, match="abstraction level"):
            validate_log_items(log, catalog, level="aisle")


class TestCalendarValidation:
    def test_in_range_ok(self, log, calendar):
        validate_log_calendar(log, calendar)

    def test_out_of_range_detected(self, calendar):
        log = TransactionLog(
            [Basket.of(customer_id=1, day=calendar.n_days, items=[0])]
        )
        with pytest.raises(DataError, match="exceeds study period"):
            validate_log_calendar(log, calendar)

    def test_empty_log_ok(self, calendar):
        validate_log_calendar(TransactionLog(), calendar)


class TestCohortCoverage:
    def test_covered_ok(self, log, cohorts):
        validate_cohort_coverage(log, cohorts)

    def test_missing_customer_detected(self, log):
        labels = CohortLabels(
            loyal=frozenset({1, 2}), churners=frozenset(), onset_month=0
        )
        with pytest.raises(DataError, match="no baskets"):
            validate_cohort_coverage(log, labels)


class TestBundle:
    def test_checked_constructor_runs_all_checks(self, log, catalog, calendar, cohorts):
        bundle = DatasetBundle.checked(
            log=log, catalog=catalog, calendar=calendar, cohorts=cohorts
        )
        validate_bundle(bundle)

    def test_onset_outside_study_detected(self, log, catalog, calendar):
        cohorts = CohortLabels(
            loyal=frozenset({1}), churners=frozenset(), onset_month=5
        )
        with pytest.raises(DataError, match="onset month"):
            DatasetBundle.checked(
                log=log, catalog=catalog, calendar=calendar, cohorts=cohorts
            )

    def test_generated_dataset_is_valid(self, small_dataset):
        validate_bundle(small_dataset.bundle)


class TestFingerprint:
    def test_deterministic_and_cached(self, tiny_dataset):
        bundle = tiny_dataset.bundle
        assert bundle.fingerprint() == bundle.fingerprint()

    def test_identical_generation_matches(self, tiny_dataset):
        from repro.synth import ScenarioConfig, generate_dataset

        twin = generate_dataset(ScenarioConfig(n_loyal=12, n_churners=12, seed=5))
        assert twin.bundle.fingerprint() == tiny_dataset.bundle.fingerprint()

    def test_seed_size_and_cohorts_all_discriminate(self, tiny_dataset):
        from repro.synth import ScenarioConfig, generate_dataset

        reference = tiny_dataset.bundle.fingerprint()
        other_seed = generate_dataset(
            ScenarioConfig(n_loyal=12, n_churners=12, seed=6)
        )
        other_size = generate_dataset(
            ScenarioConfig(n_loyal=13, n_churners=12, seed=5)
        )
        assert other_seed.bundle.fingerprint() != reference
        assert other_size.bundle.fingerprint() != reference

    def test_cohort_relabel_discriminates(self, tiny_dataset):
        bundle = tiny_dataset.bundle
        moved = sorted(bundle.cohorts.loyal)[0]
        relabeled = DatasetBundle(
            log=bundle.log,
            catalog=bundle.catalog,
            calendar=bundle.calendar,
            cohorts=CohortLabels(
                loyal=bundle.cohorts.loyal - {moved},
                churners=bundle.cohorts.churners | {moved},
                onset_month=bundle.cohorts.onset_month,
            ),
        )
        assert relabeled.fingerprint() != bundle.fingerprint()
