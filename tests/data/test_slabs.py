"""Tests for repro.data.slabs — the out-of-core slab data plane.

Two contracts are pinned here:

* **bit-identity** — a slab store built from a basket stream holds
  byte-for-byte the columns :meth:`PopulationFrame.from_log` builds in
  RAM, and every registered engine produces bit-identical scores on
  the mmap-backed frame (including sharded slab-reference workers and
  checkpoint-resumed evaluation sweeps);
* **durability** — a torn, stale or version-incompatible store raises a
  typed :class:`~repro.errors.SlabStoreError` instead of being mapped.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.config import ExperimentConfig
from repro.core.batch import stability_matrix
from repro.core.engines import available_engines
from repro.core.model import StabilityModel
from repro.data.population import PopulationFrame
from repro.data.slabs import (
    SLAB_STORE_VERSION,
    build_slab_store,
    chunks_from_baskets,
    ensure_slab_store,
    open_slab_store,
)
from repro.errors import SlabStoreError
from repro.eval.protocol import EvaluationProtocol
from repro.obs import MetricsRegistry, use_metrics
from repro.obs.metrics import SLAB_STORE_HITS, SLAB_STORE_MISSES

_COLUMNS = (
    "customer_ids",
    "basket_offsets",
    "basket_days",
    "basket_monetary",
    "pair_offsets",
    "pair_items",
    "triple_offsets",
    "triple_window",
    "item_vocab",
)


def _grid(dataset):
    return ExperimentConfig(window_months=2).grid(dataset.calendar)


def _build(dataset, directory, **kwargs):
    kwargs.setdefault("customers_per_shard", 5)
    kwargs.setdefault("n_buckets", 3)
    return build_slab_store(
        chunks_from_baskets(dataset.log, chunk_baskets=64),
        _grid(dataset),
        directory,
        fingerprint=dataset.bundle.fingerprint(),
        **kwargs,
    )


@pytest.fixture()
def store(tiny_dataset, tmp_path):
    return _build(tiny_dataset, tmp_path / "store")


class TestBuildAndOpen:
    def test_columns_bit_identical_to_from_log(self, tiny_dataset, store):
        reference = PopulationFrame.from_log(
            tiny_dataset.log, _grid(tiny_dataset)
        )
        frame = PopulationFrame.from_slabs(store)
        for name in _COLUMNS:
            ours, theirs = getattr(frame, name), getattr(reference, name)
            assert ours.dtype == theirs.dtype, name
            assert np.array_equal(ours, theirs), name

    def test_frame_remembers_store_path(self, store):
        frame = store.frame()
        assert frame.store_path == str(store.directory)
        assert frame.log is None

    def test_grid_roundtrips_through_manifest(self, tiny_dataset, store):
        assert store.grid() == _grid(tiny_dataset)

    def test_shard_bounds_cover_population(self, store):
        bounds = store.shard_bounds()
        assert bounds[0][0] == 0
        assert bounds[-1][1] == store.n_customers
        assert all(lo < hi for lo, hi in bounds)
        assert all(
            prev_hi == lo
            for (__, prev_hi), (lo, __) in zip(bounds, bounds[1:])
        )

    def test_single_shard_build_matches_many_shard_build(
        self, tiny_dataset, tmp_path
    ):
        one = _build(tiny_dataset, tmp_path / "one", customers_per_shard=10_000)
        many = _build(tiny_dataset, tmp_path / "many", customers_per_shard=2)
        for name in _COLUMNS:
            assert np.array_equal(one.column(name), many.column(name)), name

    def test_empty_stream_builds_empty_store(self, tiny_dataset, tmp_path):
        store = build_slab_store(
            iter(()), _grid(tiny_dataset), tmp_path / "empty", fingerprint="e"
        )
        assert store.n_customers == 0
        assert store.shard_bounds() == []
        frame = store.frame()
        assert frame.n_customers == 0
        assert len(frame.basket_offsets) == 1  # CSR leading zero survives

    def test_chunking_is_invisible(self, tiny_dataset, tmp_path):
        coarse = build_slab_store(
            chunks_from_baskets(tiny_dataset.log, chunk_baskets=10_000),
            _grid(tiny_dataset),
            tmp_path / "coarse",
            fingerprint="c",
        )
        fine = build_slab_store(
            chunks_from_baskets(tiny_dataset.log, chunk_baskets=1),
            _grid(tiny_dataset),
            tmp_path / "fine",
            fingerprint="c",
        )
        for name in _COLUMNS:
            assert np.array_equal(coarse.column(name), fine.column(name)), name


class TestEnsure:
    def test_miss_builds_then_hit_reuses(self, tiny_dataset, tmp_path):
        fingerprint = tiny_dataset.bundle.fingerprint()
        grid = _grid(tiny_dataset)
        registry = MetricsRegistry()
        with use_metrics(registry):
            first = ensure_slab_store(
                tmp_path, tiny_dataset.log, grid, fingerprint
            )
            second = ensure_slab_store(
                tmp_path, tiny_dataset.log, grid, fingerprint
            )
        assert first.directory == second.directory
        assert registry.counter(SLAB_STORE_MISSES).value == 1
        assert registry.counter(SLAB_STORE_HITS).value == 1

    def test_torn_store_is_rebuilt(self, tiny_dataset, tmp_path):
        fingerprint = tiny_dataset.bundle.fingerprint()
        grid = _grid(tiny_dataset)
        store = ensure_slab_store(tmp_path, tiny_dataset.log, grid, fingerprint)
        (store.directory / "pair_items.bin").unlink()
        registry = MetricsRegistry()
        with use_metrics(registry):
            rebuilt = ensure_slab_store(
                tmp_path, tiny_dataset.log, grid, fingerprint
            )
        assert registry.counter(SLAB_STORE_MISSES).value == 1
        assert (rebuilt.directory / "pair_items.bin").exists()


class TestTypedErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SlabStoreError, match="cannot read manifest"):
            open_slab_store(tmp_path / "nowhere")

    def test_corrupt_manifest_json(self, store):
        (store.directory / "manifest.json").write_text("{not json")
        with pytest.raises(SlabStoreError, match="not valid JSON"):
            open_slab_store(store.directory)

    def test_foreign_schema(self, store):
        (store.directory / "manifest.json").write_text(
            json.dumps({"schema": "something-else"})
        )
        with pytest.raises(SlabStoreError, match="not a slab-store manifest"):
            open_slab_store(store.directory)

    def test_version_bump_refuses_to_open(self, store):
        manifest = json.loads((store.directory / "manifest.json").read_text())
        manifest["version"] = SLAB_STORE_VERSION + 1
        (store.directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SlabStoreError, match="rebuild the store"):
            open_slab_store(store.directory)

    def test_missing_column_set(self, store):
        manifest = json.loads((store.directory / "manifest.json").read_text())
        del manifest["columns"]["pair_items"]
        (store.directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SlabStoreError, match="manifests columns"):
            open_slab_store(store.directory)

    def test_truncated_column_file(self, store):
        path = store.directory / "basket_days.bin"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SlabStoreError, match="torn"):
            open_slab_store(store.directory)

    def test_missing_column_file(self, store):
        (store.directory / "triple_window.bin").unlink()
        with pytest.raises(SlabStoreError, match="missing"):
            open_slab_store(store.directory)


def _assert_trajectories_bit_identical(reference, other):
    assert other.customers() == reference.customers()
    for customer in reference.customers():
        ref_t = reference.trajectory(customer)
        other_t = other.trajectory(customer)
        for k in range(reference.n_windows):
            a, b = ref_t.at(k), other_t.at(k)
            for field in ("stability", "kept_mass", "total_mass"):
                x, y = getattr(a, field), getattr(b, field)
                assert (math.isnan(x) and math.isnan(y)) or x == y, (
                    customer,
                    k,
                    field,
                )


class TestEngineBitIdentity:
    @pytest.fixture()
    def frames(self, tiny_dataset, store):
        reference = PopulationFrame.from_log(
            tiny_dataset.log, _grid(tiny_dataset)
        )
        return reference, store.frame()

    def test_every_engine_matches_in_ram(self, tiny_dataset, frames):
        in_ram, slab = frames
        for backend in available_engines():
            config = ExperimentConfig(window_months=2, backend=backend)
            reference = StabilityModel.from_config(
                tiny_dataset.calendar, config
            ).fit(in_ram)
            mmapped = StabilityModel.from_config(
                tiny_dataset.calendar, config
            ).fit(slab)
            _assert_trajectories_bit_identical(reference, mmapped)

    def test_sharded_slab_reference_workers_match_serial(self, frames):
        in_ram, slab = frames
        serial = stability_matrix(in_ram, alpha=2.0, n_jobs=1)
        sharded = stability_matrix(slab, alpha=2.0, n_jobs=2)
        assert np.array_equal(serial.customer_ids, sharded.customer_ids)
        for field in ("stability", "kept_mass", "total_mass"):
            ours = np.asarray(getattr(sharded, field))
            theirs = np.asarray(getattr(serial, field))
            assert ours.tobytes() == theirs.tobytes(), field

    def test_out_of_core_kernel_chunks_per_store_shard(self, frames):
        # customers_per_shard=5 on 24 customers -> the serial slab fit
        # must walk multiple chunks and still match bit-for-bit.
        in_ram, slab = frames
        serial = stability_matrix(in_ram, alpha=2.0)
        chunked = stability_matrix(slab, alpha=2.0)
        assert (
            np.asarray(chunked.stability).tobytes()
            == np.asarray(serial.stability).tobytes()
        )


class _InterruptingModel:
    """Delegates to a fitted model, dying after ``fail_after`` score calls."""

    def __init__(self, model, fail_after):
        self._model = model
        self._remaining = fail_after
        self.window_months = model.window_months

    def __getattr__(self, name):
        return getattr(self._model, name)

    def churn_scores(self, window_index, customers=None):
        if self._remaining <= 0:
            raise KeyboardInterrupt
        self._remaining -= 1
        return self._model.churn_scores(window_index, customers)


class TestCheckpointResumedSweep:
    def test_resumed_slab_sweep_matches_in_ram_reference(
        self, tiny_dataset, store, tmp_path
    ):
        bundle = tiny_dataset.bundle
        config = ExperimentConfig(window_months=2, backend="batch")
        grid = config.grid(bundle.calendar)
        ids = bundle.cohorts.all_customers()

        reference_model = StabilityModel.from_config(
            bundle.calendar, config
        ).fit(PopulationFrame.from_log(bundle.log, grid))
        reference = EvaluationProtocol(
            bundle, config=config
        ).evaluate_stability_model(reference_model, ids)

        slab_frame = store.frame()
        slab_model = StabilityModel.from_config(bundle.calendar, config).fit(
            slab_frame
        )
        n_cells = len(
            EvaluationProtocol(bundle, config=config).evaluation_windows(
                slab_model
            )
        )
        assert n_cells >= 4
        checkpoint_dir = tmp_path / "journal"

        interrupted = EvaluationProtocol(
            bundle,
            config=config,
            checkpoint_dir=checkpoint_dir,
            frame=slab_frame,
        )
        with pytest.raises(KeyboardInterrupt):
            interrupted.evaluate_stability_model(
                _InterruptingModel(slab_model, n_cells // 2), ids
            )

        resumed = EvaluationProtocol(
            bundle,
            config=config,
            checkpoint_dir=checkpoint_dir,
            frame=slab_frame,
        ).evaluate_stability_model(slab_model, ids)
        assert resumed == reference

    def test_injected_frame_grid_must_match(self, tiny_dataset, store):
        from repro.errors import ConfigError

        bundle = tiny_dataset.bundle
        mismatched = ExperimentConfig(window_months=4, backend="batch")
        with pytest.raises(ConfigError, match="grid"):
            EvaluationProtocol(
                bundle, config=mismatched, frame=store.frame()
            )

    def test_injected_frame_is_served_to_scorers(self, tiny_dataset, store):
        bundle = tiny_dataset.bundle
        config = ExperimentConfig(window_months=2, backend="batch")
        protocol = EvaluationProtocol(
            bundle, config=config, frame=store.frame()
        )
        assert protocol.frame().store_path == str(store.directory)
