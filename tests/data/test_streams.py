"""Tests for repro.data.streams (out-of-core streaming I/O)."""

from __future__ import annotations

import pytest

from repro.core.streaming import StabilityMonitor
from repro.core.windowing import WindowGrid
from repro.data.basket import Basket
from repro.data.io import write_log_csv
from repro.data.streams import (
    PartitionedLogWriter,
    iter_log_csv,
    iter_partitioned_log,
    stream_to_monitor,
)
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, SchemaError


@pytest.fixture()
def log() -> TransactionLog:
    log = TransactionLog()
    for customer in range(5):
        for day in range(customer, 50, 7):
            log.add(Basket.of(customer, day, items=[1, customer + 2], monetary=3.0))
    return log


class TestIterLogCsv:
    def test_streams_same_content_as_batch_reader(self, log, tmp_path):
        path = tmp_path / "log.csv"
        write_log_csv(log, path)
        streamed = list(iter_log_csv(path))
        assert len(streamed) == log.n_baskets
        assert TransactionLog(streamed).item_universe() == log.item_universe()

    def test_is_lazy(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(
            "customer_id,day,items,monetary\n1,0,1,1.0\nBROKEN\n"
        )
        stream = iter_log_csv(path)
        first = next(stream)
        assert first.customer_id == 1
        with pytest.raises(SchemaError):
            next(stream)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n")
        with pytest.raises(SchemaError, match="header"):
            next(iter_log_csv(path))


class TestStreamToMonitor:
    def test_pumps_full_file(self, log, tmp_path):
        path = tmp_path / "log.csv"
        # The monitor requires day order, and write_log_csv groups rows by
        # customer, so write a truly day-ordered CSV by hand.
        import csv

        baskets = sorted(log, key=lambda b: b.day)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["customer_id", "day", "items", "monetary"])
            for basket in baskets:
                writer.writerow(
                    [
                        basket.customer_id,
                        basket.day,
                        " ".join(str(i) for i in sorted(basket.items)),
                        f"{basket.monetary:.2f}",
                    ]
                )
        grid = WindowGrid.daily(total_days=50, days_per_window=10)
        monitor = StabilityMonitor(grid)
        reports = stream_to_monitor(path, monitor)
        assert [r.window_index for r in reports] == list(range(5))
        assert monitor.customers() == [0, 1, 2, 3, 4]


class TestPartitionedLog:
    def test_round_trip(self, log, tmp_path):
        directory = tmp_path / "shards"
        with PartitionedLogWriter(directory, n_shards=3) as writer:
            count = writer.write_all(log)
        assert count == log.n_baskets
        restored = TransactionLog(iter_partitioned_log(directory))
        assert restored.n_baskets == log.n_baskets
        for customer in log.customers():
            assert [(b.day, b.items) for b in restored.history(customer)] == [
                (b.day, b.items) for b in log.history(customer)
            ]

    def test_customers_stay_in_one_shard(self, log, tmp_path):
        directory = tmp_path / "shards"
        with PartitionedLogWriter(directory, n_shards=3) as writer:
            writer.write_all(log)
        for shard in range(3):
            customers = {
                basket.customer_id
                for basket in iter_log_csv(directory / f"shard-{shard:04d}.csv")
            }
            assert all(c % 3 == shard for c in customers)

    def test_selective_shard_read(self, log, tmp_path):
        directory = tmp_path / "shards"
        with PartitionedLogWriter(directory, n_shards=3) as writer:
            writer.write_all(log)
        only_zero = list(iter_partitioned_log(directory, shards=[0]))
        assert {b.customer_id for b in only_zero} == {0, 3}

    def test_merge_by_day_is_day_ordered(self, log, tmp_path):
        directory = tmp_path / "shards"
        baskets = sorted(log, key=lambda b: b.day)
        with PartitionedLogWriter(directory, n_shards=4) as writer:
            writer.write_all(baskets)
        merged = list(iter_partitioned_log(directory, merge_by_day=True))
        days = [b.day for b in merged]
        assert days == sorted(days)
        assert len(merged) == log.n_baskets

    def test_merge_ordering_differential_with_duplicate_days(
        self, tmp_path
    ):
        """The k-way merge is *stable across shards*: equal day keys
        resolve by shard index, so the merged stream is byte-identical
        to a stable day-sort of the shards' own concatenation — however
        interleaved or duplicated the day keys are."""
        log = TransactionLog()
        # Heavy day-key collisions: every customer visits every 5th day,
        # so each merge step must break a tie between shards.
        for customer in range(7):
            for day in range(0, 40, 5):
                log.add(
                    Basket.of(
                        customer,
                        day,
                        items=[customer + 1, 50 + day],
                        monetary=float(customer) + day / 100.0,
                    )
                )
        n_shards = 3
        directory = tmp_path / "shards"
        with PartitionedLogWriter(directory, n_shards=n_shards) as writer:
            writer.write_all(sorted(log, key=lambda b: b.day))

        merged = list(iter_partitioned_log(directory, merge_by_day=True))

        # Reference: concatenate the shard streams in shard order, then
        # stable-sort on the day key alone.
        concatenated = [
            basket
            for shard in range(n_shards)
            for basket in iter_partitioned_log(directory, shards=[shard])
        ]
        reference = sorted(concatenated, key=lambda b: b.day)

        assert [
            (b.customer_id, b.day, b.items, b.monetary) for b in merged
        ] == [(b.customer_id, b.day, b.items, b.monetary) for b in reference]

        # Byte-identical once serialised back to the canonical CSV form.
        write_log_csv(TransactionLog(merged), tmp_path / "merged.csv")
        write_log_csv(TransactionLog(reference), tmp_path / "reference.csv")
        assert (tmp_path / "merged.csv").read_bytes() == (
            tmp_path / "reference.csv"
        ).read_bytes()

    def test_merged_stream_feeds_monitor(self, log, tmp_path):
        directory = tmp_path / "shards"
        baskets = sorted(log, key=lambda b: b.day)
        with PartitionedLogWriter(directory, n_shards=4) as writer:
            writer.write_all(baskets)
        grid = WindowGrid.daily(total_days=50, days_per_window=10)
        monitor = StabilityMonitor(grid)
        monitor.ingest_many(iter_partitioned_log(directory, merge_by_day=True))
        reports = monitor.finish()
        assert reports  # the stream satisfied the monitor's day-order contract

    def test_write_outside_context_rejected(self, tmp_path):
        writer = PartitionedLogWriter(tmp_path / "x", n_shards=2)
        with pytest.raises(ConfigError, match="context"):
            writer.write(Basket.of(1, 0, items=[1]))

    def test_bad_shard_count(self, tmp_path):
        with pytest.raises(ConfigError):
            PartitionedLogWriter(tmp_path, n_shards=0)

    def test_missing_shards_detected(self, tmp_path):
        with pytest.raises(SchemaError, match="missing shard"):
            list(iter_partitioned_log(tmp_path / "nope", shards=[0]))
