"""PopulationFrame: the columnar data plane every layer shares."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.windowing import WindowGrid, windowed_history
from repro.data import Basket, TransactionLog
from repro.data.population import PopulationFrame, range_segment_sums
from repro.errors import DataError


@pytest.fixture()
def mixed_log(calendar):
    """Three customers with uneven, partly off-grid histories."""
    log = TransactionLog()
    for month in range(calendar.n_months):
        day = calendar.month_start_day(month) + 1
        log.add(Basket.of(customer_id=1, day=day, items=[1, 2], monetary=8.0))
    for month in range(0, calendar.n_months, 2):
        day = calendar.month_start_day(month) + 5
        log.add(Basket.of(customer_id=5, day=day, items=[2, 9], monetary=3.5))
    log.add(Basket.of(customer_id=9, day=3, items=[7], monetary=1.25))
    return log


@pytest.fixture()
def mixed_frame(mixed_log, calendar):
    return PopulationFrame.from_log(mixed_log, WindowGrid.monthly(calendar, 2))


class TestRangeSegmentSums:
    def test_matches_reduceat_on_each_range(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=50)
        starts = np.asarray([0, 4, 10, 10, 30])
        ends = np.asarray([4, 9, 10, 25, 50])
        out = range_segment_sums(values, starts, ends)
        for i, (lo, hi) in enumerate(zip(starts, ends)):
            if lo == hi:
                assert out[i] == 0.0
            else:
                expected = np.add.reduceat(values[lo:hi].copy(), [0])[0]
                assert out[i] == expected  # bit-identical, not approx

    def test_empty_input(self):
        out = range_segment_sums(np.asarray([1.0, 2.0]), [], [])
        assert out.shape == (0,)

    def test_all_ranges_empty(self):
        out = range_segment_sums(np.asarray([1.0, 2.0]), [1, 2], [1, 2])
        assert np.array_equal(out, [0.0, 0.0])

    def test_final_range_reaching_array_end(self):
        values = np.asarray([1.0, 2.0, 4.0])
        assert np.array_equal(range_segment_sums(values, [1], [3]), [6.0])


class TestFromLog:
    def test_window_items_match_reference_windowing(self, mixed_log, mixed_frame):
        for row, customer_id in enumerate(mixed_frame.customer_ids):
            windows = windowed_history(
                mixed_log.history(int(customer_id)), mixed_frame.grid
            )
            expected = [frozenset(w.items) for w in windows]
            assert mixed_frame.window_items(row) == expected

    def test_customer_ids_sorted(self, mixed_frame):
        assert np.array_equal(mixed_frame.customer_ids, [1, 5, 9])

    def test_shape_properties(self, mixed_frame, mixed_log):
        assert mixed_frame.n_customers == 3
        assert mixed_frame.n_baskets == mixed_log.n_baskets
        assert mixed_frame.n_windows == mixed_frame.grid.n_windows
        assert mixed_frame.n_pairs == len(mixed_frame.pair_items)

    def test_basket_days_sorted_per_customer(self, mixed_frame):
        offsets = mixed_frame.basket_offsets
        for row in range(mixed_frame.n_customers):
            days = mixed_frame.basket_days[offsets[row] : offsets[row + 1]]
            assert np.all(np.diff(days) >= 0)

    def test_customer_subset(self, mixed_log, calendar):
        grid = WindowGrid.monthly(calendar, 2)
        frame = PopulationFrame.from_log(mixed_log, grid, customers=[5])
        assert np.array_equal(frame.customer_ids, [5])
        full = PopulationFrame.from_log(mixed_log, grid)
        assert frame.window_items(0) == full.window_items(full.row_of(5))

    def test_keeps_log_reference(self, mixed_log, mixed_frame):
        assert mixed_frame.log is mixed_log


class TestRowAddressing:
    def test_row_of_unknown_customer(self, mixed_frame):
        with pytest.raises(DataError, match="customer 42"):
            mixed_frame.row_of(42)

    def test_rows_of_preserves_request_order(self, mixed_frame):
        assert np.array_equal(mixed_frame.rows_of([9, 1]), [2, 0])

    def test_rows_of_unknown_customer(self, mixed_frame):
        with pytest.raises(DataError, match="customer 42"):
            mixed_frame.rows_of([1, 42])

    def test_contains(self, mixed_frame):
        assert 5 in mixed_frame
        assert 4 not in mixed_frame
        assert "5" not in mixed_frame


class TestShard:
    def test_shard_rebases_all_csr_levels(self, mixed_frame):
        shard = mixed_frame.shard(1, 3)
        assert np.array_equal(shard.customer_ids, [5, 9])
        assert shard.basket_offsets[0] == 0
        assert shard.pair_offsets[0] == 0
        assert shard.triple_offsets[0] == 0
        for local_row, customer_id in enumerate(shard.customer_ids):
            full_row = mixed_frame.row_of(int(customer_id))
            assert shard.window_items(local_row) == mixed_frame.window_items(
                full_row
            )

    def test_shard_drops_log_reference(self, mixed_frame):
        assert mixed_frame.shard(0, 2).log is None

    def test_empty_shard_is_valid(self, mixed_frame):
        for lo in range(mixed_frame.n_customers + 1):
            empty = mixed_frame.shard(lo, lo)
            assert empty.n_customers == 0
            assert len(empty.customer_ids) == 0
            # Every CSR level keeps its leading zero.
            assert list(empty.basket_offsets) == [0]
            assert list(empty.pair_offsets) == [0]
            assert list(empty.triple_offsets) == [0]

    def test_single_customer_shards_tile_the_frame(self, mixed_frame):
        for row in range(mixed_frame.n_customers):
            single = mixed_frame.shard(row, row + 1)
            assert single.n_customers == 1
            assert single.customer_ids[0] == mixed_frame.customer_ids[row]
            assert single.window_items(0) == mixed_frame.window_items(row)
            assert np.array_equal(
                single.basket_days,
                mixed_frame.basket_days[
                    mixed_frame.basket_offsets[row] : mixed_frame.basket_offsets[
                        row + 1
                    ]
                ],
            )

    @pytest.mark.parametrize(
        "lo, hi",
        [(-1, 2), (0, 4), (2, 1), (4, 4), (-2, -1)],
    )
    def test_out_of_range_bounds_rejected_naming_range(self, mixed_frame, lo, hi):
        with pytest.raises(DataError, match=rf"\[{lo}, {hi}\)"):
            mixed_frame.shard(lo, hi)

    def test_full_range_shard_equals_frame(self, mixed_frame):
        whole = mixed_frame.shard(0, mixed_frame.n_customers)
        assert np.array_equal(whole.customer_ids, mixed_frame.customer_ids)
        assert np.array_equal(whole.pair_items, mixed_frame.pair_items)


class TestBasketKernels:
    def test_baskets_before_counts(self, mixed_log, mixed_frame):
        day = int(mixed_frame.grid.boundaries[3])
        counts = mixed_frame.baskets_before(day)
        for row, customer_id in enumerate(mixed_frame.customer_ids):
            expected = sum(
                1 for b in mixed_log.history(int(customer_id)) if b.day < day
            )
            assert counts[row] == expected
