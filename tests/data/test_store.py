"""Tests for repro.data.store (EventStore)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.basket import Basket
from repro.data.store import EventStore
from repro.data.transactions import TransactionLog
from repro.errors import DataError


@pytest.fixture()
def log() -> TransactionLog:
    log = TransactionLog()
    log.add(Basket.of(customer_id=1, day=0, items=[10, 11], monetary=5.0))
    log.add(Basket.of(customer_id=1, day=4, items=[10], monetary=2.0))
    log.add(Basket.of(customer_id=2, day=2, items=[11, 12, 13], monetary=7.5))
    return log


@pytest.fixture()
def store(log: TransactionLog) -> EventStore:
    return EventStore.from_log(log)


class TestConversion:
    def test_row_count_is_total_items(self, store: EventStore):
        assert store.n_rows == 2 + 1 + 3

    def test_shape_counts(self, store: EventStore):
        assert store.n_receipts == 3
        assert store.n_customers == 2
        assert store.n_items == 4

    def test_round_trip(self, log: TransactionLog, store: EventStore):
        back = store.to_log()
        assert back.n_baskets == log.n_baskets
        for customer in log.customers():
            original = [(b.day, b.items, b.monetary) for b in log.history(customer)]
            restored = [(b.day, b.items, b.monetary) for b in back.history(customer)]
            assert original == restored

    def test_empty_store(self):
        empty = EventStore.empty()
        assert empty.n_rows == 0
        assert empty.to_log().n_baskets == 0

    def test_mismatched_columns_rejected(self):
        with pytest.raises(DataError, match="mismatched"):
            EventStore(
                customer_id=np.zeros(2, dtype=np.int64),
                receipt_id=np.zeros(2, dtype=np.int64),
                day=np.zeros(3, dtype=np.int64),
                item_id=np.zeros(2, dtype=np.int64),
                monetary=np.zeros(2),
            )


class TestFiltering:
    def test_filter_days(self, store: EventStore):
        sub = store.filter_days(0, 3)
        assert set(sub.day.tolist()) == {0, 2}

    def test_filter_days_invalid(self, store: EventStore):
        with pytest.raises(DataError, match="invalid day interval"):
            store.filter_days(3, 0)

    def test_filter_customers(self, store: EventStore):
        sub = store.filter_customers([2])
        assert sub.n_customers == 1
        assert sub.n_rows == 3

    def test_day_range(self, store: EventStore):
        assert store.day_range() == (0, 4)

    def test_day_range_empty_raises(self):
        with pytest.raises(DataError, match="empty"):
            EventStore.empty().day_range()


class TestGrouping:
    def test_by_customer_order(self, store: EventStore):
        groups = list(store.by_customer())
        assert [customer for customer, __ in groups] == [1, 2]
        assert groups[0][1].n_rows == 3

    def test_receipt_table(self, store: EventStore):
        table = store.receipt_table()
        assert table["basket_size"].tolist() == [2, 1, 3]
        assert table["monetary"].tolist() == [5.0, 2.0, 7.5]
        assert table["customer_id"].tolist() == [1, 1, 2]

    def test_receipt_table_empty(self):
        table = EventStore.empty().receipt_table()
        assert table["receipt_id"].size == 0
