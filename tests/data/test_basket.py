"""Tests for repro.data.basket."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.basket import Basket
from repro.errors import DataError


class TestConstruction:
    def test_of_accepts_any_iterable(self):
        basket = Basket.of(customer_id=1, day=0, items=iter([3, 1, 2]))
        assert basket.items == frozenset({1, 2, 3})

    def test_items_coerced_to_frozenset(self):
        basket = Basket(customer_id=1, day=0, items={1, 2})  # type: ignore[arg-type]
        assert isinstance(basket.items, frozenset)

    def test_negative_day_rejected(self):
        with pytest.raises(DataError, match="day offset"):
            Basket.of(customer_id=1, day=-1, items=[1])

    def test_negative_monetary_rejected(self):
        with pytest.raises(DataError, match="monetary"):
            Basket.of(customer_id=1, day=0, items=[1], monetary=-0.5)

    def test_empty_basket_allowed(self):
        # Empty windows matter to the model; empty baskets are legal too.
        assert Basket.of(customer_id=1, day=0, items=[]).size == 0

    def test_is_hashable_and_frozen(self):
        basket = Basket.of(customer_id=1, day=0, items=[1])
        assert hash(basket) == hash(Basket.of(customer_id=1, day=0, items=[1]))
        with pytest.raises(AttributeError):
            basket.day = 5  # type: ignore[misc]


class TestSize:
    def test_size_counts_distinct_items(self):
        assert Basket.of(customer_id=1, day=0, items=[1, 1, 2]).size == 2


class TestAbstracted:
    def test_mapping_applied(self):
        basket = Basket.of(customer_id=1, day=3, items=[10, 11, 20], monetary=5.0)
        lifted = basket.abstracted(lambda i: i // 10)
        assert lifted.items == frozenset({1, 2})
        assert lifted.day == 3
        assert lifted.monetary == 5.0
        assert lifted.customer_id == 1

    def test_original_unchanged(self):
        basket = Basket.of(customer_id=1, day=3, items=[10, 11])
        basket.abstracted(lambda i: 0)
        assert basket.items == frozenset({10, 11})

    @given(items=st.frozensets(st.integers(min_value=0, max_value=1000), max_size=20))
    def test_abstraction_never_grows_item_count(self, items):
        basket = Basket.of(customer_id=1, day=0, items=items)
        lifted = basket.abstracted(lambda i: i % 7)
        assert lifted.size <= basket.size
