"""Tests for repro.data.loyalty (behavioural cohort construction)."""

from __future__ import annotations

import pytest

from repro.data.basket import Basket
from repro.data.calendar import StudyCalendar
from repro.data.loyalty import (
    LoyaltyCriteria,
    build_cohorts,
    label_partial_defection,
    select_loyal,
)
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, DataError


@pytest.fixture(scope="module")
def calendar() -> StudyCalendar:
    return StudyCalendar.paper()


def _steady_shopper(log, calendar, customer, trips_per_month=2, until_month=28):
    for month in range(until_month):
        begin, end = calendar.month_bounds_days(month)
        step = max((end - begin) // trips_per_month, 1)
        for t in range(trips_per_month):
            log.add(Basket.of(customer, begin + t * step, items=[1, 2]))


class TestCriteria:
    def test_invalid_rate(self):
        with pytest.raises(ConfigError):
            LoyaltyCriteria(min_trips_per_month=0)

    def test_invalid_months(self):
        with pytest.raises(ConfigError):
            LoyaltyCriteria(min_active_months=0)


class TestSelectLoyal:
    def test_steady_shopper_selected(self, calendar):
        log = TransactionLog()
        _steady_shopper(log, calendar, customer=1)
        assert select_loyal(log, calendar, observation_end_month=18) == [1]

    def test_sporadic_shopper_rejected(self, calendar):
        log = TransactionLog()
        # Only 3 active months in the observation period.
        for month in (0, 5, 10):
            log.add(Basket.of(2, calendar.month_start_day(month), items=[1]))
        assert select_loyal(log, calendar, observation_end_month=18) == []

    def test_rate_threshold(self, calendar):
        log = TransactionLog()
        _steady_shopper(log, calendar, customer=1, trips_per_month=1)
        criteria = LoyaltyCriteria(min_trips_per_month=2.0, min_active_months=9)
        assert select_loyal(log, calendar, 18, criteria) == []

    def test_outcome_period_ignored(self, calendar):
        # A customer loyal through month 18 then silent must still be
        # selected: selection sees only the observation period.
        log = TransactionLog()
        _steady_shopper(log, calendar, customer=1, until_month=18)
        assert select_loyal(log, calendar, observation_end_month=18) == [1]

    def test_invalid_observation_end(self, calendar):
        with pytest.raises(ConfigError):
            select_loyal(TransactionLog(), calendar, observation_end_month=0)
        with pytest.raises(ConfigError):
            select_loyal(TransactionLog(), calendar, observation_end_month=29)


class TestLabelPartialDefection:
    def test_full_stop_is_churner(self, calendar):
        log = TransactionLog()
        _steady_shopper(log, calendar, customer=1, until_month=18)
        _steady_shopper(log, calendar, customer=2, until_month=28)
        loyal, churners = label_partial_defection(
            log, calendar, [1, 2], outcome_start_month=18
        )
        assert churners == frozenset({1})
        assert loyal == frozenset({2})

    def test_partial_drop_below_threshold_is_churner(self, calendar):
        log = TransactionLog()
        # 4 trips/month before month 18, 1 trip/month after: ratio 0.25.
        _steady_shopper(log, calendar, customer=1, trips_per_month=4, until_month=18)
        for month in range(18, 28):
            log.add(Basket.of(1, calendar.month_start_day(month), items=[1]))
        loyal, churners = label_partial_defection(
            log, calendar, [1], outcome_start_month=18, drop_threshold=0.5
        )
        assert churners == frozenset({1})

    def test_mild_drop_stays_loyal(self, calendar):
        log = TransactionLog()
        _steady_shopper(log, calendar, customer=1, trips_per_month=4, until_month=18)
        for month in range(18, 28):
            for t in range(3):  # ratio 0.75 > 0.5
                log.add(
                    Basket.of(1, calendar.month_start_day(month) + t, items=[1])
                )
        loyal, __ = label_partial_defection(
            log, calendar, [1], outcome_start_month=18
        )
        assert loyal == frozenset({1})

    def test_empty_customer_list_rejected(self, calendar):
        with pytest.raises(DataError):
            label_partial_defection(TransactionLog(), calendar, [], 18)

    def test_invalid_threshold(self, calendar):
        log = TransactionLog([Basket.of(1, 0, items=[1])])
        with pytest.raises(ConfigError):
            label_partial_defection(log, calendar, [1], 18, drop_threshold=1.0)


class TestBuildCohorts:
    def test_end_to_end(self, calendar):
        log = TransactionLog()
        _steady_shopper(log, calendar, customer=1, until_month=28)  # loyal
        _steady_shopper(log, calendar, customer=2, until_month=19)  # churner
        for month in (0, 9):  # never qualifies as loyal base
            log.add(Basket.of(3, calendar.month_start_day(month), items=[1]))
        cohorts = build_cohorts(log, calendar, outcome_start_month=18)
        assert cohorts.loyal == frozenset({1})
        assert cohorts.churners == frozenset({2})
        assert cohorts.onset_month == 18
        assert 3 not in cohorts.all_customers()

    def test_no_loyal_base_rejected(self, calendar):
        log = TransactionLog([Basket.of(1, 0, items=[1])])
        with pytest.raises(DataError, match="relax"):
            build_cohorts(log, calendar, outcome_start_month=18)

    def test_recovers_injected_cohorts(self, small_dataset):
        """Behavioural (trip-rate) labels agree with the ground truth where
        churn shows in shopping volume.

        Recall is structurally limited here: the synthetic churn is
        content-dominated (segments dropped, trip rate only mildly
        decayed), which volume-based labelling cannot fully see — the
        precise gap the paper's basket-content model is motivated by.
        """
        cohorts = build_cohorts(
            small_dataset.log,
            small_dataset.calendar,
            outcome_start_month=18,
            drop_threshold=0.8,
        )
        truth = small_dataset.cohorts
        labelled = set(cohorts.all_customers())
        # The loyal base covers most customers (they are all habitual).
        assert len(labelled) > 0.8 * len(truth.all_customers())
        churner_precision = (
            len(cohorts.churners & truth.churners) / len(cohorts.churners)
            if cohorts.churners
            else 1.0
        )
        churner_recall = len(cohorts.churners & truth.churners) / len(truth.churners)
        loyal_precision = len(cohorts.loyal & truth.loyal) / len(cohorts.loyal)
        assert churner_precision > 0.8
        assert loyal_precision > 0.6
        assert churner_recall > 0.5  # volume labels see only part of the churn
