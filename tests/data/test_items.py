"""Tests for repro.data.items (Catalog, Product, Segment)."""

from __future__ import annotations

import pytest

from repro.data.items import Catalog
from repro.errors import DataError


@pytest.fixture()
def catalog() -> Catalog:
    cat = Catalog()
    coffee = cat.add_segment("Coffee", department="Beverages")
    milk = cat.add_segment("Milk", department="Dairy")
    cat.add_product("Arabica 250g", coffee.segment_id, unit_price=4.5)
    cat.add_product("Robusta 500g", coffee.segment_id, unit_price=3.9)
    cat.add_product("Whole milk 1L", milk.segment_id, unit_price=1.2)
    return cat


class TestSegments:
    def test_ids_are_dense(self, catalog: Catalog):
        assert [s.segment_id for s in catalog.segments()] == [0, 1]

    def test_lookup_by_name(self, catalog: Catalog):
        assert catalog.segment_by_name("Coffee").department == "Beverages"

    def test_unknown_name_raises(self, catalog: Catalog):
        with pytest.raises(DataError, match="unknown segment name"):
            catalog.segment_by_name("Tea")

    def test_duplicate_name_rejected(self, catalog: Catalog):
        with pytest.raises(DataError, match="duplicate segment name"):
            catalog.add_segment("Coffee")

    def test_unknown_id_raises(self, catalog: Catalog):
        with pytest.raises(DataError, match="unknown segment_id"):
            catalog.segment(99)

    def test_counts(self, catalog: Catalog):
        assert catalog.n_segments == 2
        assert catalog.n_products == 3


class TestProducts:
    def test_ids_are_dense(self, catalog: Catalog):
        assert [p.product_id for p in catalog.products()] == [0, 1, 2]

    def test_segment_of(self, catalog: Catalog):
        assert catalog.segment_of(0).name == "Coffee"
        assert catalog.segment_of(2).name == "Milk"

    def test_product_under_unknown_segment_rejected(self, catalog: Catalog):
        with pytest.raises(DataError, match="unknown segment_id"):
            catalog.add_product("Orphan", 42)

    def test_nonpositive_price_rejected(self, catalog: Catalog):
        with pytest.raises(DataError, match="unit_price"):
            catalog.add_product("Free", 0, unit_price=0.0)

    def test_unknown_product_raises(self, catalog: Catalog):
        with pytest.raises(DataError, match="unknown product_id"):
            catalog.product(99)

    def test_contains(self, catalog: Catalog):
        assert 0 in catalog
        assert 99 not in catalog

    def test_products_in_segment(self, catalog: Catalog):
        coffee_products = catalog.products_in_segment(0)
        assert [p.name for p in coffee_products] == ["Arabica 250g", "Robusta 500g"]

    def test_products_in_unknown_segment_raises(self, catalog: Catalog):
        with pytest.raises(DataError):
            catalog.products_in_segment(42)


class TestAbstraction:
    def test_abstract_items_collapses_same_segment(self, catalog: Catalog):
        assert catalog.abstract_items([0, 1]) == frozenset({0})

    def test_abstract_items_mixed(self, catalog: Catalog):
        assert catalog.abstract_items([0, 2]) == frozenset({0, 1})

    def test_abstract_items_empty(self, catalog: Catalog):
        assert catalog.abstract_items([]) == frozenset()

    def test_abstract_items_unknown_product_raises(self, catalog: Catalog):
        with pytest.raises(DataError):
            catalog.abstract_items([7])
