"""Tests for repro.data.quality (log profiling)."""

from __future__ import annotations

import pytest

from repro.data.basket import Basket
from repro.data.calendar import StudyCalendar
from repro.data.quality import profile_log, render_quality_report
from repro.data.transactions import TransactionLog


@pytest.fixture()
def clean_log() -> TransactionLog:
    log = TransactionLog()
    for customer in (1, 2):
        for day in range(0, 56, 7):
            log.add(
                Basket.of(customer, day + customer, items=[1, 2], monetary=10.0)
            )
    return log


class TestProfileLog:
    def test_clean_log_is_clean(self, clean_log):
        report = profile_log(clean_log)
        assert report.is_clean
        assert report.n_customers == 2
        assert report.n_receipts == 16
        assert report.n_duplicate_receipts == 0

    def test_quantiles(self, clean_log):
        report = profile_log(clean_log)
        assert report.interpurchase_days_quantiles["p50"] == 7.0
        assert report.basket_size_quantiles["p50"] == 2.0
        assert report.receipts_per_customer_quantiles["p50"] == 8.0

    def test_duplicates_detected(self):
        log = TransactionLog()
        log.add(Basket.of(1, 5, items=[1, 2]))
        log.add(Basket.of(1, 5, items=[1, 2]))
        report = profile_log(log)
        assert report.n_duplicate_receipts == 1
        assert not report.is_clean

    def test_same_day_different_items_not_duplicate(self):
        log = TransactionLog()
        log.add(Basket.of(1, 5, items=[1]))
        log.add(Basket.of(1, 5, items=[2]))
        assert profile_log(log).n_duplicate_receipts == 0

    def test_empty_baskets_counted(self):
        log = TransactionLog([Basket.of(1, 0, items=[])])
        report = profile_log(log)
        assert report.n_empty_baskets == 1

    def test_monetary_outlier_detected(self):
        log = TransactionLog()
        for day in range(0, 100, 2):
            log.add(Basket.of(1, day, items=[1], monetary=10.0 + (day % 5)))
        log.add(Basket.of(1, 101, items=[1], monetary=100_000.0))
        report = profile_log(log)
        assert report.n_monetary_outliers >= 1

    def test_empty_months_flagged(self):
        calendar = StudyCalendar(n_months=3)
        log = TransactionLog([Basket.of(1, 0, items=[1])])
        report = profile_log(log, calendar=calendar)
        assert report.empty_months == [1, 2]

    def test_no_calendar_no_month_check(self, clean_log):
        assert profile_log(clean_log).empty_months == []

    def test_empty_log(self):
        report = profile_log(TransactionLog())
        assert report.n_customers == 0
        assert report.day_span is None
        assert report.is_clean

    def test_generated_dataset_is_clean(self, tiny_dataset):
        report = profile_log(tiny_dataset.log, calendar=tiny_dataset.calendar)
        assert report.n_duplicate_receipts == 0
        assert report.n_empty_baskets == 0
        assert report.empty_months == []


class TestRenderQualityReport:
    def test_clean_verdict(self, clean_log):
        text = render_quality_report(profile_log(clean_log))
        assert "verdict: CLEAN" in text
        assert "customers: 2" in text

    def test_dirty_verdict(self):
        log = TransactionLog()
        log.add(Basket.of(1, 5, items=[1]))
        log.add(Basket.of(1, 5, items=[1]))
        text = render_quality_report(profile_log(log))
        assert "NEEDS REVIEW" in text

    def test_empty_months_rendered(self):
        calendar = StudyCalendar(n_months=2)
        log = TransactionLog([Basket.of(1, 0, items=[1])])
        text = render_quality_report(profile_log(log, calendar=calendar))
        assert "months with NO receipts" in text

    def test_empty_log_rendered(self):
        text = render_quality_report(profile_log(TransactionLog()))
        assert "(empty log)" in text
