"""Tests for repro.data.taxonomy."""

from __future__ import annotations

import pytest

from repro.data.items import Catalog
from repro.data.taxonomy import LEVELS, Taxonomy
from repro.errors import TaxonomyError


@pytest.fixture()
def catalog() -> Catalog:
    cat = Catalog()
    coffee = cat.add_segment("Coffee", department="Beverages")
    tea = cat.add_segment("Tea", department="Beverages")
    milk = cat.add_segment("Milk", department="Dairy")
    cat.add_product("Arabica", coffee.segment_id)
    cat.add_product("Robusta", coffee.segment_id)
    cat.add_product("Green tea", tea.segment_id)
    cat.add_product("Whole milk", milk.segment_id)
    return cat


@pytest.fixture()
def taxonomy(catalog: Catalog) -> Taxonomy:
    return Taxonomy.from_catalog(catalog)


class TestConstruction:
    def test_levels_constant(self):
        assert LEVELS == ("root", "department", "segment", "product")

    def test_counts(self, taxonomy: Taxonomy):
        assert taxonomy.n_departments == 2
        assert taxonomy.n_segments == 3
        assert taxonomy.n_products == 4

    def test_department_idempotent(self):
        tax = Taxonomy()
        first = tax.add_department("Dairy")
        second = tax.add_department("Dairy")
        assert first == second
        assert tax.n_departments == 1

    def test_duplicate_segment_rejected(self, taxonomy: Taxonomy):
        with pytest.raises(TaxonomyError, match="duplicate segment"):
            taxonomy.add_segment(0, "Coffee again", "Beverages")

    def test_duplicate_product_rejected(self, taxonomy: Taxonomy):
        with pytest.raises(TaxonomyError, match="duplicate product"):
            taxonomy.add_product(0, "Arabica again", 0)

    def test_product_under_unknown_segment_rejected(self):
        tax = Taxonomy()
        with pytest.raises(TaxonomyError, match="not in taxonomy"):
            tax.add_product(0, "Orphan", 5)


class TestNavigation:
    def test_parent_of_root_is_none(self, taxonomy: Taxonomy):
        assert taxonomy.parent(Taxonomy.ROOT_KEY) is None

    def test_parent_chain(self, taxonomy: Taxonomy):
        ancestors = taxonomy.ancestors("prod:0")
        assert [a.level for a in ancestors] == ["segment", "department", "root"]

    def test_children_sorted(self, taxonomy: Taxonomy):
        root_children = taxonomy.children(Taxonomy.ROOT_KEY)
        assert [c.name for c in root_children] == ["Beverages", "Dairy"]

    def test_ancestor_at_level(self, taxonomy: Taxonomy):
        dept = taxonomy.ancestor_at_level("prod:3", "department")
        assert dept.name == "Dairy"

    def test_ancestor_at_same_level_is_self(self, taxonomy: Taxonomy):
        node = taxonomy.ancestor_at_level("seg:0", "segment")
        assert node.key == "seg:0"

    def test_ancestor_at_unknown_level_raises(self, taxonomy: Taxonomy):
        with pytest.raises(TaxonomyError, match="unknown taxonomy level"):
            taxonomy.ancestor_at_level("prod:0", "aisle")

    def test_ancestor_below_raises(self, taxonomy: Taxonomy):
        with pytest.raises(TaxonomyError, match="no ancestor"):
            taxonomy.ancestor_at_level("seg:0", "product")

    def test_unknown_node_raises(self, taxonomy: Taxonomy):
        with pytest.raises(TaxonomyError, match="unknown taxonomy node"):
            taxonomy.node("prod:99")


class TestAbstraction:
    def test_segment_of_product_matches_catalog(self, catalog: Catalog, taxonomy: Taxonomy):
        for product in catalog.products():
            assert taxonomy.segment_of_product(product.product_id) == product.segment_id

    def test_segment_of_unknown_product_raises(self, taxonomy: Taxonomy):
        with pytest.raises(TaxonomyError, match="not in taxonomy"):
            taxonomy.segment_of_product(99)

    def test_products_under_segment(self, taxonomy: Taxonomy):
        assert taxonomy.products_under("seg:0") == [0, 1]

    def test_products_under_department(self, taxonomy: Taxonomy):
        assert taxonomy.products_under("dept:Beverages") == [0, 1, 2]

    def test_products_under_root_is_everything(self, taxonomy: Taxonomy):
        assert taxonomy.products_under(Taxonomy.ROOT_KEY) == [0, 1, 2, 3]


class TestValidation:
    def test_from_catalog_validates(self, catalog: Catalog):
        Taxonomy.from_catalog(catalog)  # must not raise

    def test_level_skip_detected(self):
        tax = Taxonomy()
        # Insert a product directly under a department by abusing internals.
        tax.add_segment(0, "Coffee", "Beverages")
        tax._graph.add_node(
            "prod:9",
            node=type(tax.node("seg:0"))(
                key="prod:9", level="product", name="bad", ref_id=9
            ),
        )
        tax._graph.add_edge("dept:Beverages", "prod:9")
        with pytest.raises(TaxonomyError, match="skips a taxonomy level"):
            tax.validate()

    def test_multiple_parents_detected(self):
        tax = Taxonomy()
        tax.add_segment(0, "Coffee", "Beverages")
        tax.add_segment(1, "Milk", "Dairy")
        tax._graph.add_edge("dept:Dairy", "seg:0")  # second parent
        with pytest.raises(TaxonomyError, match="parents"):
            tax.validate()

    def test_iter_nodes_root_first(self, taxonomy: Taxonomy):
        nodes = list(taxonomy.iter_nodes())
        assert nodes[0].level == "root"
        assert len(nodes) == 1 + 2 + 3 + 4
