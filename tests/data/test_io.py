"""Tests for repro.data.io (CSV/JSONL serialisation)."""

from __future__ import annotations

import pytest

from repro.data.basket import Basket
from repro.data.cohorts import CohortLabels
from repro.data.io import (
    read_catalog_jsonl,
    read_cohorts_json,
    read_log_csv,
    write_catalog_jsonl,
    write_cohorts_json,
    write_log_csv,
)
from repro.data.items import Catalog
from repro.data.quality import render_quarantine_report
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, SchemaError


@pytest.fixture()
def log() -> TransactionLog:
    log = TransactionLog()
    log.add(Basket.of(customer_id=1, day=0, items=[3, 1], monetary=4.2))
    log.add(Basket.of(customer_id=1, day=9, items=[2], monetary=1.0))
    log.add(Basket.of(customer_id=5, day=4, items=[], monetary=0.0))
    return log


@pytest.fixture()
def catalog() -> Catalog:
    cat = Catalog()
    seg = cat.add_segment("Coffee", department="Beverages")
    cat.add_product("Arabica", seg.segment_id, unit_price=4.5)
    return cat


class TestLogCsv:
    def test_round_trip(self, log: TransactionLog, tmp_path):
        path = tmp_path / "log.csv"
        write_log_csv(log, path)
        back = read_log_csv(path)
        assert back.n_baskets == log.n_baskets
        for customer in log.customers():
            original = [(b.day, b.items, b.monetary) for b in log.history(customer)]
            restored = [(b.day, b.items, b.monetary) for b in back.history(customer)]
            assert original == restored

    def test_deterministic_output(self, log: TransactionLog, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        write_log_csv(log, a)
        write_log_csv(log, b)
        assert a.read_text() == b.read_text()

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(SchemaError, match="header"):
            read_log_csv(path)

    def test_bad_field_count_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("customer_id,day,items,monetary\n1,2\n")
        with pytest.raises(SchemaError, match="expected 4 fields"):
            read_log_csv(path)

    def test_non_numeric_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("customer_id,day,items,monetary\nx,0,1,1.0\n")
        with pytest.raises(SchemaError, match=":2:"):
            read_log_csv(path)

    def test_empty_items_round_trip(self, log: TransactionLog, tmp_path):
        path = tmp_path / "log.csv"
        write_log_csv(log, path)
        back = read_log_csv(path)
        assert back.history(5)[0].items == frozenset()

    def test_monetary_round_trips_bit_exactly(self, tmp_path):
        # Sub-cent values used to be silently rounded by the %.2f writer.
        log = TransactionLog()
        values = (0.1 + 0.2, 4.005, 1e-4, 123456.789012345)
        for day, monetary in enumerate(values):
            log.add(
                Basket.of(customer_id=1, day=day, items=[1], monetary=monetary)
            )
        path = tmp_path / "log.csv"
        write_log_csv(log, path)
        back = read_log_csv(path)
        assert tuple(b.monetary for b in back.history(1)) == values


class TestLenientIngest:
    def _write_dirty(self, log: TransactionLog, tmp_path):
        path = tmp_path / "dirty.csv"
        write_log_csv(log, path)
        lines = path.read_text().splitlines()
        lines.insert(2, "7,abc,1 2,3.0")  # non-numeric day
        lines.insert(4, "too,few")  # field-count mismatch
        lines.append("7,-3,1,1.0")  # negative day (DataError)
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_quarantine_sets_bad_rows_aside(self, log, tmp_path):
        path = self._write_dirty(log, tmp_path)
        clean, report = read_log_csv(path, on_error="quarantine")
        assert clean.n_baskets == log.n_baskets
        assert report.n_quarantined == 3
        assert report.n_rows_total == log.n_baskets + 3
        assert report.n_clean == log.n_baskets
        assert not report.is_clean
        lines = {row.line for row in report.rows}
        assert len(lines) == 3
        reasons = " | ".join(row.reason for row in report.rows)
        assert "expected 4 fields" in reasons
        assert "day offset" in reasons

    def test_default_strict_mode_unchanged(self, log, tmp_path):
        path = self._write_dirty(log, tmp_path)
        with pytest.raises(SchemaError, match=":3:"):
            read_log_csv(path)

    def test_clean_file_quarantines_nothing(self, log, tmp_path):
        path = tmp_path / "log.csv"
        write_log_csv(log, path)
        clean, report = read_log_csv(path, on_error="quarantine")
        assert report.is_clean
        assert report.n_quarantined == 0
        assert clean.n_baskets == log.n_baskets

    def test_header_mismatch_always_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(SchemaError, match="header"):
            read_log_csv(path, on_error="quarantine")

    def test_max_errors_cap(self, log, tmp_path):
        path = self._write_dirty(log, tmp_path)
        with pytest.raises(SchemaError, match="more than 2 malformed"):
            read_log_csv(path, on_error="quarantine", max_errors=2)

    def test_invalid_mode_rejected(self, log, tmp_path):
        path = tmp_path / "log.csv"
        write_log_csv(log, path)
        with pytest.raises(ConfigError, match="on_error"):
            read_log_csv(path, on_error="ignore")
        with pytest.raises(ConfigError, match="max_errors"):
            read_log_csv(path, on_error="quarantine", max_errors=-1)

    def test_render_quarantine_report(self, log, tmp_path):
        path = self._write_dirty(log, tmp_path)
        _, report = read_log_csv(path, on_error="quarantine")
        text = render_quarantine_report(report, limit=2)
        assert "3 quarantined" in text
        assert "line " in text
        assert "... and 1 more" in text


class TestCatalogJsonl:
    def test_round_trip(self, catalog: Catalog, tmp_path):
        path = tmp_path / "catalog.jsonl"
        write_catalog_jsonl(catalog, path)
        back = read_catalog_jsonl(path)
        assert back.n_segments == catalog.n_segments
        assert back.n_products == catalog.n_products
        assert back.segment_by_name("Coffee").department == "Beverages"
        assert back.product(0).unit_price == 4.5

    def test_product_before_segment_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "product", "product_id": 0, "name": "x", "segment_id": 0}\n')
        with pytest.raises(SchemaError, match="unknown segment"):
            read_catalog_jsonl(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "aisle"}\n')
        with pytest.raises(SchemaError, match="unknown record kind"):
            read_catalog_jsonl(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{nope\n")
        with pytest.raises(SchemaError, match="invalid JSON"):
            read_catalog_jsonl(path)

    def test_blank_lines_ignored(self, catalog: Catalog, tmp_path):
        path = tmp_path / "catalog.jsonl"
        write_catalog_jsonl(catalog, path)
        path.write_text(path.read_text() + "\n\n")
        assert read_catalog_jsonl(path).n_products == 1


class TestCohortsJson:
    def test_round_trip(self, tmp_path):
        cohorts = CohortLabels(
            loyal=frozenset({1, 2}),
            churners=frozenset({7}),
            onset_month=18,
            churner_onsets={7: 19},
        )
        path = tmp_path / "cohorts.json"
        write_cohorts_json(cohorts, path)
        back = read_cohorts_json(path)
        assert back == cohorts

    def test_missing_key_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"loyal": []}')
        with pytest.raises(SchemaError, match="missing key"):
            read_cohorts_json(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{")
        with pytest.raises(SchemaError, match="invalid JSON"):
            read_cohorts_json(path)
