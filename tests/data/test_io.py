"""Tests for repro.data.io (CSV/JSONL serialisation)."""

from __future__ import annotations

import pytest

from repro.data.basket import Basket
from repro.data.cohorts import CohortLabels
from repro.data.io import (
    read_catalog_jsonl,
    read_cohorts_json,
    read_log_csv,
    write_catalog_jsonl,
    write_cohorts_json,
    write_log_csv,
)
from repro.data.items import Catalog
from repro.data.transactions import TransactionLog
from repro.errors import SchemaError


@pytest.fixture()
def log() -> TransactionLog:
    log = TransactionLog()
    log.add(Basket.of(customer_id=1, day=0, items=[3, 1], monetary=4.2))
    log.add(Basket.of(customer_id=1, day=9, items=[2], monetary=1.0))
    log.add(Basket.of(customer_id=5, day=4, items=[], monetary=0.0))
    return log


@pytest.fixture()
def catalog() -> Catalog:
    cat = Catalog()
    seg = cat.add_segment("Coffee", department="Beverages")
    cat.add_product("Arabica", seg.segment_id, unit_price=4.5)
    return cat


class TestLogCsv:
    def test_round_trip(self, log: TransactionLog, tmp_path):
        path = tmp_path / "log.csv"
        write_log_csv(log, path)
        back = read_log_csv(path)
        assert back.n_baskets == log.n_baskets
        for customer in log.customers():
            original = [(b.day, b.items, b.monetary) for b in log.history(customer)]
            restored = [(b.day, b.items, b.monetary) for b in back.history(customer)]
            assert original == restored

    def test_deterministic_output(self, log: TransactionLog, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        write_log_csv(log, a)
        write_log_csv(log, b)
        assert a.read_text() == b.read_text()

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(SchemaError, match="header"):
            read_log_csv(path)

    def test_bad_field_count_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("customer_id,day,items,monetary\n1,2\n")
        with pytest.raises(SchemaError, match="expected 4 fields"):
            read_log_csv(path)

    def test_non_numeric_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("customer_id,day,items,monetary\nx,0,1,1.0\n")
        with pytest.raises(SchemaError, match=":2:"):
            read_log_csv(path)

    def test_empty_items_round_trip(self, log: TransactionLog, tmp_path):
        path = tmp_path / "log.csv"
        write_log_csv(log, path)
        back = read_log_csv(path)
        assert back.history(5)[0].items == frozenset()


class TestCatalogJsonl:
    def test_round_trip(self, catalog: Catalog, tmp_path):
        path = tmp_path / "catalog.jsonl"
        write_catalog_jsonl(catalog, path)
        back = read_catalog_jsonl(path)
        assert back.n_segments == catalog.n_segments
        assert back.n_products == catalog.n_products
        assert back.segment_by_name("Coffee").department == "Beverages"
        assert back.product(0).unit_price == 4.5

    def test_product_before_segment_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "product", "product_id": 0, "name": "x", "segment_id": 0}\n')
        with pytest.raises(SchemaError, match="unknown segment"):
            read_catalog_jsonl(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "aisle"}\n')
        with pytest.raises(SchemaError, match="unknown record kind"):
            read_catalog_jsonl(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{nope\n")
        with pytest.raises(SchemaError, match="invalid JSON"):
            read_catalog_jsonl(path)

    def test_blank_lines_ignored(self, catalog: Catalog, tmp_path):
        path = tmp_path / "catalog.jsonl"
        write_catalog_jsonl(catalog, path)
        path.write_text(path.read_text() + "\n\n")
        assert read_catalog_jsonl(path).n_products == 1


class TestCohortsJson:
    def test_round_trip(self, tmp_path):
        cohorts = CohortLabels(
            loyal=frozenset({1, 2}),
            churners=frozenset({7}),
            onset_month=18,
            churner_onsets={7: 19},
        )
        path = tmp_path / "cohorts.json"
        write_cohorts_json(cohorts, path)
        back = read_cohorts_json(path)
        assert back == cohorts

    def test_missing_key_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"loyal": []}')
        with pytest.raises(SchemaError, match="missing key"):
            read_cohorts_json(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{")
        with pytest.raises(SchemaError, match="invalid JSON"):
            read_cohorts_json(path)
