"""Tests for repro.data.transactions (TransactionLog)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.basket import Basket
from repro.data.transactions import TransactionLog
from repro.errors import DataError


def _basket(customer: int, day: int, items=(1,), monetary: float = 1.0) -> Basket:
    return Basket.of(customer_id=customer, day=day, items=items, monetary=monetary)


@pytest.fixture()
def log() -> TransactionLog:
    log = TransactionLog()
    log.add(_basket(1, 5, items=[1, 2]))
    log.add(_basket(1, 0, items=[1]))
    log.add(_basket(2, 3, items=[3], monetary=2.5))
    return log


class TestInsertion:
    def test_history_is_day_sorted(self, log: TransactionLog):
        assert [b.day for b in log.history(1)] == [0, 5]

    def test_out_of_order_inserts_keep_sorting(self):
        log = TransactionLog()
        for day in (7, 1, 4, 0, 9):
            log.add(_basket(1, day))
        assert [b.day for b in log.history(1)] == [0, 1, 4, 7, 9]

    def test_same_day_baskets_keep_insertion_order(self):
        log = TransactionLog()
        log.add(_basket(1, 3, items=[1]))
        log.add(_basket(1, 3, items=[2]))
        assert [b.items for b in log.history(1)] == [frozenset({1}), frozenset({2})]

    def test_constructor_accepts_iterable(self):
        log = TransactionLog([_basket(1, 1), _basket(2, 2)])
        assert log.n_baskets == 2

    def test_extend(self, log: TransactionLog):
        log.extend([_basket(3, 1), _basket(3, 2)])
        assert log.n_customers == 3
        assert len(log.history(3)) == 2


class TestAccess:
    def test_counts(self, log: TransactionLog):
        assert log.n_baskets == 3
        assert log.n_customers == 2
        assert len(log) == 3

    def test_customers_sorted(self, log: TransactionLog):
        assert log.customers() == [1, 2]

    def test_contains(self, log: TransactionLog):
        assert 1 in log
        assert 9 not in log

    def test_unknown_customer_raises(self, log: TransactionLog):
        with pytest.raises(DataError, match="unknown customer_id"):
            log.history(9)

    def test_history_returns_copy(self, log: TransactionLog):
        log.history(1).clear()
        assert len(log.history(1)) == 2

    def test_iteration_groups_by_customer_chronologically(self, log: TransactionLog):
        order = [(b.customer_id, b.day) for b in log]
        assert order == [(1, 0), (1, 5), (2, 3)]


class TestStatistics:
    def test_day_range(self, log: TransactionLog):
        assert log.day_range() == (0, 5)

    def test_day_range_empty_raises(self):
        with pytest.raises(DataError, match="empty"):
            TransactionLog().day_range()

    def test_item_universe(self, log: TransactionLog):
        assert log.item_universe() == frozenset({1, 2, 3})

    def test_total_monetary(self, log: TransactionLog):
        assert log.total_monetary() == pytest.approx(4.5)


class TestTransformations:
    def test_filter_customers(self, log: TransactionLog):
        sub = log.filter_customers([2, 9])
        assert sub.customers() == [2]
        assert sub.n_baskets == 1

    def test_filter_customers_does_not_share_lists(self, log: TransactionLog):
        sub = log.filter_customers([1])
        sub.add(_basket(1, 9))
        assert log.n_baskets == 3

    def test_filter_days_half_open(self, log: TransactionLog):
        sub = log.filter_days(0, 5)
        assert [b.day for b in sub] == [0, 3]

    def test_filter_days_invalid_interval(self, log: TransactionLog):
        with pytest.raises(DataError, match="invalid day interval"):
            log.filter_days(5, 0)

    def test_abstracted_maps_items(self, log: TransactionLog):
        lifted = log.abstracted(lambda i: 0)
        assert lifted.item_universe() == frozenset({0})
        assert lifted.n_baskets == log.n_baskets

    def test_merged_with(self, log: TransactionLog):
        other = TransactionLog([_basket(3, 1)])
        merged = log.merged_with(other)
        assert merged.n_customers == 3
        assert log.n_customers == 2  # original untouched


class TestColumnar:
    def test_csr_structure(self, log: TransactionLog):
        columnar = log.to_columnar()
        assert list(columnar.customer_ids) == [1, 2]
        assert list(columnar.offsets) == [0, 3, 4]
        assert columnar.n_customers == 2
        assert columnar.n_rows == 4
        # Rows are day-ordered within each customer; day 0 basket has one
        # item, day 5 has two.
        assert list(columnar.days) == [0, 5, 5, 3]
        assert sorted(columnar.items[1:3]) == [1, 2]
        assert columnar.items[0] == 1
        assert columnar.items[3] == 3

    def test_customer_rows(self, log: TransactionLog):
        columnar = log.to_columnar()
        assert list(columnar.customer_rows()) == [0, 0, 0, 1]

    def test_subset_is_sorted_and_deduped(self, log: TransactionLog):
        columnar = log.to_columnar(customers=[2, 1, 2])
        assert list(columnar.customer_ids) == [1, 2]
        assert list(columnar.offsets) == [0, 3, 4]

    def test_strict_subset(self, log: TransactionLog):
        columnar = log.to_columnar(customers=[2])
        assert list(columnar.customer_ids) == [2]
        assert list(columnar.days) == [3]
        assert list(columnar.items) == [3]

    def test_unknown_customer_raises(self, log: TransactionLog):
        with pytest.raises(DataError, match="unknown customer_id"):
            log.to_columnar(customers=[9])

    def test_empty_item_baskets_contribute_no_rows(self):
        log = TransactionLog([_basket(1, 0, items=[]), _basket(1, 1, items=[4])])
        columnar = log.to_columnar()
        assert list(columnar.offsets) == [0, 1]
        assert list(columnar.days) == [1]

    def test_empty_log(self):
        columnar = TransactionLog().to_columnar()
        assert columnar.n_customers == 0
        assert columnar.n_rows == 0
        assert list(columnar.offsets) == [0]


class TestProperties:
    @given(
        days=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30)
    )
    def test_history_always_sorted(self, days: list[int]):
        log = TransactionLog()
        for day in days:
            log.add(_basket(1, day))
        history_days = [b.day for b in log.history(1)]
        assert history_days == sorted(days)

    @given(
        days=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=20),
        begin=st.integers(min_value=0, max_value=50),
        span=st.integers(min_value=0, max_value=50),
    )
    def test_filter_days_keeps_exactly_the_interval(self, days, begin, span):
        log = TransactionLog()
        for day in days:
            log.add(_basket(1, day))
        end = begin + span
        filtered = log.filter_days(begin, end)
        expected = sorted(d for d in days if begin <= d < end)
        got = [b.day for b in filtered] if 1 in filtered else []
        assert got == expected
