"""Tests for repro.data.cohorts (CohortLabels)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.cohorts import CohortLabels
from repro.errors import DataError


@pytest.fixture()
def cohorts() -> CohortLabels:
    return CohortLabels(
        loyal=frozenset({1, 2, 3}),
        churners=frozenset({10, 11}),
        onset_month=18,
        churner_onsets={10: 17},
    )


class TestConstruction:
    def test_counts(self, cohorts: CohortLabels):
        assert cohorts.n_loyal == 3
        assert cohorts.n_churners == 2

    def test_overlap_rejected(self):
        with pytest.raises(DataError, match="both cohorts"):
            CohortLabels(loyal=frozenset({1}), churners=frozenset({1}), onset_month=18)

    def test_negative_onset_rejected(self):
        with pytest.raises(DataError, match="onset_month"):
            CohortLabels(loyal=frozenset({1}), churners=frozenset({2}), onset_month=-1)

    def test_onsets_for_non_churners_rejected(self):
        with pytest.raises(DataError, match="non-churners"):
            CohortLabels(
                loyal=frozenset({1}),
                churners=frozenset({2}),
                onset_month=18,
                churner_onsets={1: 17},
            )

    def test_sets_coerced_to_frozensets(self):
        labels = CohortLabels(loyal={1}, churners={2}, onset_month=0)  # type: ignore[arg-type]
        assert isinstance(labels.loyal, frozenset)


class TestQueries:
    def test_all_customers_sorted(self, cohorts: CohortLabels):
        assert cohorts.all_customers() == [1, 2, 3, 10, 11]

    def test_is_churner(self, cohorts: CohortLabels):
        assert cohorts.is_churner(10)
        assert not cohorts.is_churner(1)

    def test_is_churner_unlabelled_raises(self, cohorts: CohortLabels):
        with pytest.raises(DataError, match="no cohort label"):
            cohorts.is_churner(99)

    def test_onset_with_override(self, cohorts: CohortLabels):
        assert cohorts.onset_of(10) == 17

    def test_onset_falls_back_to_cohort_onset(self, cohorts: CohortLabels):
        assert cohorts.onset_of(11) == 18

    def test_onset_of_loyal_raises(self, cohorts: CohortLabels):
        with pytest.raises(DataError, match="not a churner"):
            cohorts.onset_of(1)

    def test_label_vector(self, cohorts: CohortLabels):
        labels = cohorts.label_vector([1, 10, 2, 11])
        assert labels.tolist() == [0, 1, 0, 1]
        assert labels.dtype == np.int64


class TestRestriction:
    def test_restricted_to(self, cohorts: CohortLabels):
        sub = cohorts.restricted_to([1, 10])
        assert sub.loyal == frozenset({1})
        assert sub.churners == frozenset({10})
        assert sub.churner_onsets == {10: 17}

    def test_restriction_drops_foreign_onsets(self, cohorts: CohortLabels):
        sub = cohorts.restricted_to([1, 11])
        assert sub.churner_onsets == {}

    def test_restriction_keeps_onset_month(self, cohorts: CohortLabels):
        assert cohorts.restricted_to([1, 10]).onset_month == 18
