"""Tests for repro.baselines.sequences (Miguéis-style baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.sequences import (
    SequenceModel,
    extract_sequence_features,
)
from repro.core.windowing import WindowGrid
from repro.data.basket import Basket
from repro.errors import ConfigError, NotFittedError
from repro.ml.metrics import auroc


@pytest.fixture()
def grid() -> WindowGrid:
    return WindowGrid.daily(total_days=100, days_per_window=20)


def _history(specs) -> list[Basket]:
    return [Basket.of(customer_id=1, day=day, items=items) for day, items in specs]


class TestExtractSequenceFeatures:
    def test_stable_repertoire_full_jaccard(self, grid):
        history = _history([(d, [1, 2]) for d in range(0, 80, 10)])
        features = extract_sequence_features(1, history, grid, 4, q=3)
        assert features.first_last_jaccard == 1.0
        assert features.repertoire_ratio == 1.0

    def test_shrinking_repertoire(self, grid):
        history = _history(
            [(d, [1, 2, 3, 4]) for d in range(0, 40, 10)]
            + [(d, [1]) for d in range(40, 80, 10)]
        )
        features = extract_sequence_features(1, history, grid, 4, q=4)
        assert features.first_last_jaccard == pytest.approx(0.25)
        assert features.repertoire_ratio == pytest.approx(0.25)
        assert features.basket_size_ratio == pytest.approx(0.25)

    def test_no_history_zeros(self, grid):
        features = extract_sequence_features(1, [], grid, 4)
        assert features.first_last_jaccard == 0.0
        assert features.recent_trip_count == 0.0

    def test_future_baskets_excluded(self, grid):
        early = _history([(10, [1, 2])])
        late = early + _history([(95, [9])])
        a = extract_sequence_features(1, early, grid, 2)
        b = extract_sequence_features(1, late, grid, 2)
        assert a == b

    def test_recent_trip_count(self, grid):
        history = _history([(45, [1]), (50, [1]), (70, [1])])
        features = extract_sequence_features(1, history, grid, 2)
        assert features.recent_trip_count == 2.0

    def test_invalid_q(self, grid):
        with pytest.raises(ConfigError):
            extract_sequence_features(1, [], grid, 0, q=0)


class TestSequenceModel:
    def test_interface_matches_protocol(self, small_dataset):
        model = SequenceModel(small_dataset.calendar, window_months=2)
        assert model.n_windows == 14
        assert model.window_month(9) == 20

    def test_unfitted_raises(self, small_dataset):
        model = SequenceModel(small_dataset.calendar)
        with pytest.raises(NotFittedError):
            model.churn_scores(small_dataset.log, [0])

    def test_invalid_params(self, small_dataset):
        with pytest.raises(ConfigError):
            SequenceModel(small_dataset.calendar, window_months=0)
        with pytest.raises(ConfigError):
            SequenceModel(small_dataset.calendar, q=0)

    def test_detects_churners_post_onset(self, small_dataset):
        model = SequenceModel(small_dataset.calendar)
        window = 10  # ends month 22
        model.fit(small_dataset.log, small_dataset.cohorts, window)
        customers = small_dataset.cohorts.all_customers()
        scores = model.churn_scores(small_dataset.log, customers)
        y = small_dataset.cohorts.label_vector(customers)
        s = np.asarray([scores[c] for c in customers])
        assert auroc(y, s) > 0.7  # repertoire shrinkage is its home turf

    def test_scores_are_probabilities(self, small_dataset):
        model = SequenceModel(small_dataset.calendar)
        model.fit(small_dataset.log, small_dataset.cohorts, 10)
        scores = model.churn_scores(small_dataset.log, [0, 1, 2])
        assert all(0.0 <= v <= 1.0 for v in scores.values())
