"""Tests for repro.baselines.rfm (the RFM baseline model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rfm import FEATURE_NAMES
from repro.baselines.rfm import RFMModel
from repro.errors import ConfigError, NotFittedError
from repro.ml.metrics import auroc


@pytest.fixture(scope="module")
def fitted(request):
    dataset = request.getfixturevalue("small_dataset")
    model = RFMModel(dataset.calendar, window_months=2)
    window_index = 10  # ends at month 22, well after onset
    model.fit(dataset.log, dataset.cohorts, window_index)
    return dataset, model, window_index


class TestRFMModel:
    def test_construction(self, small_dataset):
        model = RFMModel(small_dataset.calendar, window_months=2)
        assert model.n_windows == 14
        assert model.window_month(0) == 2

    def test_invalid_window_months(self, small_dataset):
        with pytest.raises(ConfigError):
            RFMModel(small_dataset.calendar, window_months=0)

    def test_unfitted_raises(self, small_dataset):
        model = RFMModel(small_dataset.calendar)
        with pytest.raises(NotFittedError):
            model.churn_scores(small_dataset.log, [0])
        with pytest.raises(NotFittedError):
            model.coefficients

    def test_scores_are_probabilities(self, fitted):
        dataset, model, __ = fitted
        scores = model.churn_scores(dataset.log, dataset.log.customers())
        values = np.asarray(list(scores.values()))
        assert ((values >= 0) & (values <= 1)).all()

    def test_detects_churners_after_onset(self, fitted):
        dataset, model, __ = fitted
        customers = dataset.cohorts.all_customers()
        scores = model.churn_scores(dataset.log, customers)
        y = dataset.cohorts.label_vector(customers)
        s = np.asarray([scores[c] for c in customers])
        assert auroc(y, s) > 0.6  # in-sample, post-onset: must beat chance

    def test_coefficients_shape(self, fitted):
        __, model, __ = fitted
        assert model.coefficients.shape == (len(FEATURE_NAMES),)

    def test_score_at_other_window(self, fitted):
        dataset, model, __ = fitted
        scores = model.churn_scores(dataset.log, [0, 1], window_index=5)
        assert set(scores) == {0, 1}

    def test_fit_on_subset(self, small_dataset):
        model = RFMModel(small_dataset.calendar)
        train = small_dataset.cohorts.all_customers()[::2]
        model.fit(small_dataset.log, small_dataset.cohorts, 10, customers=train)
        scores = model.churn_scores(small_dataset.log, [0])
        assert 0 in scores

    def test_pre_onset_scores_near_chance(self, small_dataset):
        # Before defection starts, RFM has nothing to separate on.
        model = RFMModel(small_dataset.calendar, window_months=2)
        window_index = 6  # ends at month 14, before onset at 18
        model.fit(small_dataset.log, small_dataset.cohorts, window_index)
        customers = small_dataset.cohorts.all_customers()
        scores = model.churn_scores(small_dataset.log, customers)
        y = small_dataset.cohorts.label_vector(customers)
        s = np.asarray([scores[c] for c in customers])
        assert auroc(y, s) < 0.75
