"""Tests for repro.baselines.rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rules import FrequencyDropRule, RandomBaseline, RecencyRule
from repro.core.windowing import WindowGrid
from repro.data.basket import Basket
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError
from repro.ml.metrics import auroc


@pytest.fixture()
def grid() -> WindowGrid:
    return WindowGrid.daily(total_days=100, days_per_window=20)


@pytest.fixture()
def log() -> TransactionLog:
    log = TransactionLog()
    # Customer 1 shops steadily; customer 2 goes silent after day 30.
    for day in range(0, 100, 10):
        log.add(Basket.of(customer_id=1, day=day, items=[1]))
    for day in range(0, 30, 10):
        log.add(Basket.of(customer_id=2, day=day, items=[1]))
    return log


class TestRecencyRule:
    def test_silent_customer_scores_higher(self, grid, log):
        scores = RecencyRule(grid).churn_scores(log, [1, 2], window_index=4)
        assert scores[2] > scores[1]

    def test_scores_normalised(self, grid, log):
        scores = RecencyRule(grid).churn_scores(log, [1, 2], window_index=4)
        assert all(0.0 <= s <= 1.0 for s in scores.values())


class TestFrequencyDropRule:
    def test_silent_customer_scores_higher(self, grid, log):
        scores = FrequencyDropRule(grid).churn_scores(log, [1, 2], window_index=4)
        assert scores[2] > scores[1]

    def test_window_zero_rejected(self, grid, log):
        with pytest.raises(ConfigError, match="prior window"):
            FrequencyDropRule(grid).churn_scores(log, [1], window_index=0)

    def test_no_history_neutral(self, grid):
        log = TransactionLog(
            [Basket.of(customer_id=3, day=90, items=[1])]
        )
        scores = FrequencyDropRule(grid).churn_scores(log, [3], window_index=2)
        assert scores[3] == 0.5

    def test_scores_clipped(self, grid, log):
        scores = FrequencyDropRule(grid).churn_scores(log, [1, 2], window_index=4)
        assert all(0.0 <= s <= 1.0 for s in scores.values())


class TestRandomBaseline:
    def test_deterministic_per_seed_and_window(self, grid, log):
        a = RandomBaseline(seed=1).churn_scores(log, [1, 2], window_index=3)
        b = RandomBaseline(seed=1).churn_scores(log, [1, 2], window_index=3)
        assert a == b

    def test_different_windows_differ(self, grid, log):
        a = RandomBaseline(seed=1).churn_scores(log, [1, 2], window_index=3)
        b = RandomBaseline(seed=1).churn_scores(log, [1, 2], window_index=4)
        assert a != b

    def test_chance_auroc_on_synthetic_cohorts(self, small_dataset):
        customers = small_dataset.cohorts.all_customers()
        scores = RandomBaseline(seed=0).churn_scores(
            small_dataset.log, customers, window_index=10
        )
        y = small_dataset.cohorts.label_vector(customers)
        s = np.asarray([scores[c] for c in customers])
        assert 0.3 < auroc(y, s) < 0.7
