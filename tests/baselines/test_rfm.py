"""Tests for repro.baselines.rfm (feature extraction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rfm import FEATURE_NAMES, extract_rfm, rfm_matrix
from repro.core.windowing import WindowGrid
from repro.data.basket import Basket
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, DataError


@pytest.fixture()
def grid() -> WindowGrid:
    return WindowGrid.daily(total_days=100, days_per_window=20)


def _history(days_and_monetary) -> list[Basket]:
    return [
        Basket.of(customer_id=1, day=day, items=[1], monetary=m)
        for day, m in days_and_monetary
    ]


class TestExtractRfm:
    def test_recency(self, grid):
        history = _history([(0, 1.0), (35, 2.0)])
        features = extract_rfm(1, history, grid, window_index=2)
        # Window 2 ends at day 60; last purchase day 35.
        assert features.recency_days == 25.0

    def test_frequency(self, grid):
        history = _history([(0, 1.0), (10, 1.0), (35, 1.0), (90, 1.0)])
        features = extract_rfm(1, history, grid, window_index=2)
        assert features.frequency_total == 3.0  # day-90 basket is in the future
        assert features.frequency_window == 0.0

    def test_frequency_window_counts_in_window_trips(self, grid):
        history = _history([(45, 1.0), (50, 1.0)])
        features = extract_rfm(1, history, grid, window_index=2)
        assert features.frequency_window == 2.0

    def test_monetary(self, grid):
        history = _history([(0, 3.0), (45, 7.0)])
        features = extract_rfm(1, history, grid, window_index=2)
        assert features.monetary_total == 10.0
        assert features.monetary_window == 7.0
        assert features.monetary_per_trip == 5.0

    def test_interpurchase_mean(self, grid):
        history = _history([(0, 1.0), (10, 1.0), (30, 1.0)])
        features = extract_rfm(1, history, grid, window_index=2)
        assert features.interpurchase_mean_days == pytest.approx(15.0)

    def test_single_purchase_interpurchase_falls_back_to_elapsed(self, grid):
        history = _history([(5, 1.0)])
        features = extract_rfm(1, history, grid, window_index=2)
        assert features.interpurchase_mean_days == 60.0

    def test_no_history_pessimistic_defaults(self, grid):
        features = extract_rfm(1, [], grid, window_index=2)
        assert features.recency_days == 60.0
        assert features.frequency_total == 0.0
        assert features.monetary_total == 0.0
        assert features.monetary_per_trip == 0.0

    def test_future_baskets_never_leak(self, grid):
        early = _history([(10, 5.0)])
        with_future = early + _history([(70, 100.0)])
        a = extract_rfm(1, early, grid, window_index=2)
        b = extract_rfm(1, with_future, grid, window_index=2)
        assert a == b

    def test_as_array_order(self, grid):
        features = extract_rfm(1, _history([(0, 2.0)]), grid, window_index=1)
        array = features.as_array()
        assert array.shape == (len(FEATURE_NAMES),)
        assert array[FEATURE_NAMES.index("monetary_total")] == 2.0


class TestRfmMatrix:
    def test_matrix_shape_and_order(self, grid):
        log = TransactionLog(
            [
                Basket.of(customer_id=1, day=0, items=[1], monetary=1.0),
                Basket.of(customer_id=2, day=5, items=[1], monetary=2.0),
            ]
        )
        ids, matrix = rfm_matrix(log, [2, 1], grid, window_index=1)
        assert ids == [2, 1]
        assert matrix.shape == (2, len(FEATURE_NAMES))
        assert matrix[0, FEATURE_NAMES.index("monetary_total")] == 2.0

    def test_missing_customer_fails_loudly(self, grid):
        log = TransactionLog([Basket.of(customer_id=1, day=0, items=[1])])
        with pytest.raises(DataError):
            rfm_matrix(log, [1, 99], grid, window_index=1)

    def test_duplicate_ids_rejected(self, grid):
        log = TransactionLog([Basket.of(customer_id=1, day=0, items=[1])])
        with pytest.raises(ConfigError, match="duplicate"):
            rfm_matrix(log, [1, 1], grid, window_index=1)

    def test_empty_customer_list(self, grid):
        log = TransactionLog([Basket.of(customer_id=1, day=0, items=[1])])
        ids, matrix = rfm_matrix(log, [], grid, window_index=1)
        assert ids == []
        assert matrix.shape == (0, len(FEATURE_NAMES))

    def test_all_features_finite(self, grid, small_dataset):
        customers = small_dataset.log.customers()[:10]
        __, matrix = rfm_matrix(small_dataset.log, customers, WindowGrid.monthly(
            small_dataset.calendar, 2), window_index=9)
        assert np.isfinite(matrix).all()
