"""Tests for repro.baselines.ensemble."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ensemble import RankAverageEnsemble, StabilityMember, rank_normalise
from repro.baselines.rfm import RFMModel
from repro.core.model import StabilityModel
from repro.errors import ConfigError
from repro.ml.metrics import auroc


class TestRankNormalise:
    def test_order_preserved(self):
        out = rank_normalise({1: 0.9, 2: 0.1, 3: 0.5})
        assert out[2] < out[3] < out[1]

    def test_range(self):
        out = rank_normalise({1: 5.0, 2: -3.0, 3: 0.0, 4: 99.0})
        assert min(out.values()) == 0.0
        assert max(out.values()) == 1.0

    def test_ties_get_midranks(self):
        out = rank_normalise({1: 0.5, 2: 0.5, 3: 1.0})
        assert out[1] == out[2]
        assert out[3] == 1.0

    def test_single_customer(self):
        assert rank_normalise({7: 3.2}) == {7: 0.5}

    def test_empty(self):
        assert rank_normalise({}) == {}

    def test_scale_invariance(self):
        base = {1: 0.1, 2: 0.4, 3: 0.9}
        scaled = {c: 100 * v + 7 for c, v in base.items()}
        assert rank_normalise(base) == rank_normalise(scaled)


class TestEnsemble:
    @pytest.fixture(scope="class")
    def fitted(self, request):
        dataset = request.getfixturevalue("small_dataset")
        window = 10  # ends month 22
        stability = StabilityModel(dataset.calendar, window_months=2)
        ensemble = RankAverageEnsemble(
            dataset.calendar,
            members=[
                StabilityMember(stability),
                RFMModel(dataset.calendar, window_months=2),
            ],
        )
        ensemble.fit(dataset.log, dataset.cohorts, window)
        return dataset, ensemble, window

    def test_protocol_duck_type(self, fitted):
        __, ensemble, __ = fitted
        assert ensemble.n_windows == 14
        assert ensemble.window_month(10) == 22

    def test_scores_in_unit_interval(self, fitted):
        dataset, ensemble, window = fitted
        scores = ensemble.churn_scores(
            dataset.log, dataset.cohorts.all_customers(), window
        )
        assert all(0.0 <= v <= 1.0 for v in scores.values())

    def test_ensemble_is_competitive(self, fitted):
        dataset, ensemble, window = fitted
        customers = dataset.cohorts.all_customers()
        y = dataset.cohorts.label_vector(customers)

        ensemble_scores = ensemble.churn_scores(dataset.log, customers, window)
        ensemble_auc = auroc(
            y, np.asarray([ensemble_scores[c] for c in customers])
        )
        # Members individually:
        member_aucs = []
        for member in ensemble.members:
            scores = member.churn_scores(dataset.log, customers, window)
            member_aucs.append(
                auroc(y, np.asarray([scores[c] for c in customers]))
            )
        assert ensemble_auc > min(member_aucs)
        assert ensemble_auc > 0.7

    def test_weights_shift_towards_member(self, fitted):
        dataset, ensemble, window = fitted
        customers = dataset.cohorts.all_customers()
        heavy_stability = RankAverageEnsemble(
            dataset.calendar,
            members=ensemble.members,
            weights=[10.0, 0.1],
        )
        scores_heavy = heavy_stability.churn_scores(dataset.log, customers, window)
        stability_scores = rank_normalise(
            ensemble.members[0].churn_scores(dataset.log, customers, window)
        )
        diffs = [abs(scores_heavy[c] - stability_scores[c]) for c in customers]
        assert max(diffs) < 0.1  # heavy weighting ~ the member itself

    def test_validation(self, small_dataset):
        stability = StabilityMember(
            StabilityModel(small_dataset.calendar, window_months=2)
        )
        with pytest.raises(ConfigError, match="two members"):
            RankAverageEnsemble(small_dataset.calendar, members=[stability])
        with pytest.raises(ConfigError, match="weights"):
            RankAverageEnsemble(
                small_dataset.calendar,
                members=[stability, RFMModel(small_dataset.calendar)],
                weights=[1.0],
            )
        with pytest.raises(ConfigError, match="mismatched window grid"):
            RankAverageEnsemble(
                small_dataset.calendar,
                members=[stability, RFMModel(small_dataset.calendar, window_months=1)],
            )
