"""Differential tests: columnar RFM features vs the per-customer reference.

The refactor's contract is *bit-identity*: the columnar
:func:`~repro.baselines.rfm.rfm_frame_matrix` must produce exactly the
floats the per-customer :func:`~repro.baselines.rfm.extract_rfm` loop
produces, so switching the evaluation protocol to the
:class:`~repro.data.population.PopulationFrame` plane cannot move any
AUROC.  Every comparison here is exact equality, never ``approx``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rfm import RFMModel, rfm_frame_matrix, rfm_matrix
from repro.config import ExperimentConfig
from repro.data.population import PopulationFrame


@pytest.fixture(scope="module")
def frame(tiny_dataset):
    grid = ExperimentConfig().grid(tiny_dataset.calendar)
    return PopulationFrame.from_log(tiny_dataset.log, grid)


@pytest.fixture(scope="module")
def eval_windows(frame, tiny_dataset):
    return [
        k
        for k in range(frame.n_windows)
        if 12 <= frame.grid.end_month(k, tiny_dataset.calendar) <= 24
    ]


def test_feature_matrix_bit_identical(tiny_dataset, frame, eval_windows):
    customers = tiny_dataset.cohorts.all_customers()
    for window_index in eval_windows:
        legacy_ids, legacy = rfm_matrix(
            tiny_dataset.log, customers, frame.grid, window_index
        )
        frame_ids, columnar = rfm_frame_matrix(frame, customers, window_index)
        assert legacy_ids == frame_ids
        assert np.array_equal(legacy, columnar, equal_nan=True)


def test_bit_identical_under_arbitrary_id_order(tiny_dataset, frame, eval_windows):
    rng = np.random.default_rng(2)
    customers = tiny_dataset.cohorts.all_customers()
    rng.shuffle(customers)
    window_index = eval_windows[len(eval_windows) // 2]
    legacy_ids, legacy = rfm_matrix(
        tiny_dataset.log, customers, frame.grid, window_index
    )
    frame_ids, columnar = rfm_frame_matrix(frame, customers, window_index)
    assert legacy_ids == frame_ids == customers
    assert np.array_equal(legacy, columnar, equal_nan=True)


def test_dispatch_accepts_frame(tiny_dataset, frame, eval_windows):
    customers = tiny_dataset.cohorts.all_customers()[:5]
    window_index = eval_windows[0]
    via_dispatch = rfm_matrix(frame, customers, frame.grid, window_index)
    direct = rfm_frame_matrix(frame, customers, window_index)
    assert via_dispatch[0] == direct[0]
    assert np.array_equal(via_dispatch[1], direct[1], equal_nan=True)


def test_model_scores_bit_identical_across_planes(
    tiny_dataset, frame, eval_windows
):
    customers = tiny_dataset.cohorts.all_customers()
    train, test = customers[::2], customers[1::2]
    window_index = eval_windows[-1]

    from_log = RFMModel(tiny_dataset.calendar).fit(
        tiny_dataset.log, tiny_dataset.cohorts, window_index, train
    ).churn_scores(tiny_dataset.log, test, window_index)
    from_frame = RFMModel(tiny_dataset.calendar).fit(
        frame, tiny_dataset.cohorts, window_index, train
    ).churn_scores(frame, test, window_index)

    assert from_log.keys() == from_frame.keys()
    for customer_id, score in from_log.items():
        assert score == from_frame[customer_id]
