"""Tests for repro.baselines.behavioral (extended Buckinx features)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.behavioral import (
    BEHAVIORAL_FEATURE_NAMES,
    BehavioralModel,
    extract_behavioral,
)
from repro.core.windowing import WindowGrid
from repro.data.basket import Basket
from repro.errors import ConfigError, NotFittedError
from repro.ml.metrics import auroc


@pytest.fixture()
def grid() -> WindowGrid:
    return WindowGrid.daily(total_days=100, days_per_window=20)


def _history(specs) -> list[Basket]:
    return [
        Basket.of(customer_id=1, day=day, items=items, monetary=m)
        for day, items, m in specs
    ]


class TestExtractBehavioral:
    def test_vector_width(self, grid):
        features = extract_behavioral(1, [], grid, 4)
        assert features.as_array().shape == (len(BEHAVIORAL_FEATURE_NAMES),)

    def test_includes_rfm_prefix(self, grid):
        history = _history([(0, [1], 3.0), (30, [1], 7.0)])
        features = extract_behavioral(1, history, grid, 4)
        values = dict(zip(BEHAVIORAL_FEATURE_NAMES, features.as_array(), strict=True))
        assert values["monetary_total"] == 10.0
        assert values["frequency_total"] == 2.0

    def test_regular_shopper_low_cv(self, grid):
        regular = _history([(d, [1], 1.0) for d in range(0, 80, 10)])
        erratic = _history(
            [(0, [1], 1.0), (2, [1], 1.0), (40, [1], 1.0), (44, [1], 1.0), (78, [1], 1.0)]
        )
        cv_index = BEHAVIORAL_FEATURE_NAMES.index("interpurchase_cv")
        cv_regular = extract_behavioral(1, regular, grid, 4).as_array()[cv_index]
        cv_erratic = extract_behavioral(1, erratic, grid, 4).as_array()[cv_index]
        assert cv_regular < cv_erratic

    def test_breadth_shrinks_for_churner(self, grid):
        churner = _history(
            [(d, [1, 2, 3, 4], 4.0) for d in range(0, 40, 10)]
            + [(d, [1], 1.0) for d in range(40, 80, 10)]
        )
        loyal = _history([(d, [1, 2, 3, 4], 4.0) for d in range(0, 80, 10)])
        breadth_index = BEHAVIORAL_FEATURE_NAMES.index("breadth_ratio")
        b_churner = extract_behavioral(1, churner, grid, 4, trend_trips=4).as_array()[
            breadth_index
        ]
        b_loyal = extract_behavioral(1, loyal, grid, 4, trend_trips=4).as_array()[
            breadth_index
        ]
        assert b_churner < b_loyal

    def test_declining_basket_negative_trend(self, grid):
        declining = _history(
            [(d, list(range(10 - d // 10)), 5.0) for d in range(0, 80, 10)]
        )
        trend_index = BEHAVIORAL_FEATURE_NAMES.index("basket_size_trend")
        trend = extract_behavioral(1, declining, grid, 4).as_array()[trend_index]
        assert trend < 0

    def test_invalid_trend_trips(self, grid):
        with pytest.raises(ConfigError):
            extract_behavioral(1, [], grid, 4, trend_trips=1)


class TestBehavioralModel:
    def test_unfitted_raises(self, small_dataset):
        with pytest.raises(NotFittedError):
            BehavioralModel(small_dataset.calendar).churn_scores(
                small_dataset.log, [0]
            )

    def test_invalid_window(self, small_dataset):
        with pytest.raises(ConfigError):
            BehavioralModel(small_dataset.calendar, window_months=0)

    def test_detects_churners_post_onset(self, small_dataset):
        model = BehavioralModel(small_dataset.calendar)
        model.fit(small_dataset.log, small_dataset.cohorts, 10)
        customers = small_dataset.cohorts.all_customers()
        scores = model.churn_scores(small_dataset.log, customers)
        y = small_dataset.cohorts.label_vector(customers)
        s = np.asarray([scores[c] for c in customers])
        assert auroc(y, s) > 0.6

    def test_extended_features_beat_plain_rfm_in_sample(self, small_dataset):
        """The extra behavioural predictors must not hurt (same data, superset)."""
        from repro.baselines.rfm import RFMModel

        window = 10
        customers = small_dataset.cohorts.all_customers()
        y = small_dataset.cohorts.label_vector(customers)

        def in_sample_auroc(model):
            model.fit(small_dataset.log, small_dataset.cohorts, window)
            scores = model.churn_scores(small_dataset.log, customers)
            return auroc(y, np.asarray([scores[c] for c in customers]))

        extended = in_sample_auroc(BehavioralModel(small_dataset.calendar))
        plain = in_sample_auroc(RFMModel(small_dataset.calendar))
        assert extended >= plain - 0.05
