"""Tests for repro.viz.ascii."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.viz.ascii import histogram, line_chart


class TestLineChart:
    def test_basic_render(self):
        out = line_chart([0, 1, 2], {"s": [0.0, 0.5, 1.0]}, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "s" in lines[-1]  # legend
        assert "*" in out

    def test_y_axis_labels(self):
        out = line_chart([0, 1], {"s": [0.0, 1.0]}, y_range=(0.0, 1.0))
        assert "1.00" in out
        assert "0.00" in out

    def test_x_axis_labels(self):
        out = line_chart([12, 24], {"s": [0.1, 0.2]})
        last = out.splitlines()[-2]
        assert "12" in last
        assert "24" in last

    def test_multiple_series_get_distinct_markers(self):
        out = line_chart([0, 1], {"a": [0.0, 0.1], "b": [1.0, 0.9]})
        assert "*" in out
        assert "o" in out
        assert "* a" in out
        assert "o b" in out

    def test_nan_values_skipped(self):
        out = line_chart([0, 1, 2], {"s": [math.nan, 0.5, 1.0]})
        assert out  # renders without error

    def test_all_nan_rejected(self):
        with pytest.raises(ConfigError, match="NaN"):
            line_chart([0, 1], {"s": [math.nan, math.nan]})

    def test_constant_series_handled(self):
        out = line_chart([0, 1], {"s": [0.5, 0.5]})
        assert "*" in out

    def test_values_clamped_to_range(self):
        out = line_chart([0, 1], {"s": [-5.0, 5.0]}, y_range=(0.0, 1.0))
        assert "*" in out

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigError):
            line_chart([0], {})

    def test_empty_x_rejected(self):
        with pytest.raises(ConfigError):
            line_chart([], {"s": []})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="values for"):
            line_chart([0, 1], {"s": [1.0]})

    def test_invalid_y_range_rejected(self):
        with pytest.raises(ConfigError, match="y_range"):
            line_chart([0], {"s": [0.0]}, y_range=(1.0, 0.0))

    def test_tiny_area_rejected(self):
        with pytest.raises(ConfigError, match="too small"):
            line_chart([0], {"s": [0.0]}, width=1, height=1)

    def test_plot_width_respected(self):
        out = line_chart([0, 1], {"s": [0.0, 1.0]}, width=30, height=5)
        plot_lines = [l for l in out.splitlines() if "|" in l]
        assert all(len(l) <= 30 + 10 for l in plot_lines)

    def test_single_point(self):
        out = line_chart([5], {"s": [0.7]})
        assert "*" in out


class TestHistogram:
    def test_counts_rendered(self):
        out = histogram([1, 1, 2, 5], n_bins=2, width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].endswith(" 3")
        assert lines[1].endswith(" 1")

    def test_bar_lengths_proportional(self):
        out = histogram([0, 0, 0, 0, 9], n_bins=2, width=8)
        first, second = out.splitlines()
        assert first.count("#") == 8
        assert second.count("#") == 2

    def test_title(self):
        out = histogram([1.0], title="delays")
        assert out.splitlines()[0] == "delays"

    def test_constant_values(self):
        out = histogram([3.0, 3.0, 3.0], n_bins=4)
        assert " 3" in out

    def test_nan_skipped(self):
        out = histogram([1.0, float("nan"), 2.0], n_bins=2)
        assert out

    def test_all_nan_rejected(self):
        with pytest.raises(ConfigError, match="NaN"):
            histogram([float("nan")])

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            histogram([])

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigError):
            histogram([1.0], n_bins=0)

    def test_bin_ranges_in_labels(self):
        out = histogram([0.0, 10.0], n_bins=2, value_format="{:.0f}")
        assert "[0, 5)" in out
        assert "[5, 10)" in out
