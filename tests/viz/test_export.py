"""Tests for repro.viz.export."""

from __future__ import annotations

import csv
import json

import pytest

from repro.errors import ConfigError
from repro.viz.export import write_series_csv, write_series_json


class TestCsvExport:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "series.csv"
        write_series_csv(
            path, [12, 14], {"stability": [0.5, 0.8], "rfm": [0.4, 0.7]},
            x_name="month",
        )
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["month", "stability", "rfm"]
        assert rows[1] == ["12", "0.5", "0.4"]
        assert rows[2] == ["14", "0.8", "0.7"]

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            write_series_csv(tmp_path / "x.csv", [1, 2], {"s": [1.0]})

    def test_empty_series_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            write_series_csv(tmp_path / "x.csv", [1], {})


class TestJsonExport:
    def test_round_trip_with_metadata(self, tmp_path):
        path = tmp_path / "series.json"
        write_series_json(
            path,
            [12, 14],
            {"stability": [0.5, 0.8]},
            x_name="month",
            metadata={"alpha": 2},
        )
        payload = json.loads(path.read_text())
        assert payload["month"] == [12, 14]
        assert payload["series"]["stability"] == [0.5, 0.8]
        assert payload["metadata"] == {"alpha": 2}

    def test_no_metadata_key_when_omitted(self, tmp_path):
        path = tmp_path / "series.json"
        write_series_json(path, [1], {"s": [0.1]})
        assert "metadata" not in json.loads(path.read_text())
