"""Transient checkpoint-I/O faults and the bounded retry-with-backoff.

The soak harness's ``ckpt_io`` site injects through exactly this hook;
these tests pin the retry budget semantics in isolation.
"""

from __future__ import annotations

import errno
import json

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry, use_metrics
from repro.obs import metrics as obs_metrics
from repro.serve.checkpoint import (
    CheckpointIOExhausted,
    ServeCheckpoint,
    ServeCursor,
)


def _cursor(commit_index: int) -> ServeCursor:
    return ServeCursor(
        commit_index=commit_index,
        day_batches_consumed=commit_index,
        counters={"ingested": 1, "scored": 1, "flagged": 0,
                  "checkpointed": commit_index},
        stream_fingerprint="stream-fp",
        serve_fingerprint="serve-fp",
        n_shards=1,
        finished=False,
    )


def _flaky(operation: str, failures: int):
    """An io_fault hook failing the first ``failures`` attempts."""
    seen: list[tuple[str, int, int]] = []

    def hook(op: str, commit_index: int, attempt: int) -> None:
        seen.append((op, commit_index, attempt))
        if op == operation and attempt < failures:
            raise OSError(errno.ENOSPC, "no space left on device")

    hook.seen = seen  # type: ignore[attr-defined]
    return hook


class TestRetryBudget:
    def test_transient_state_write_fault_cleared_by_retry(self, tmp_path):
        registry = MetricsRegistry()
        checkpoint = ServeCheckpoint(
            tmp_path, io_retries=2, io_backoff_s=0.0,
            io_fault=_flaky("write_state", 1),
        )
        with use_metrics(registry):
            directory = checkpoint.write_state(1, [{"shard": 0}], {"s": 1})
        assert (directory / "shard-0000.json").exists()
        assert registry.counter_value(
            obs_metrics.SERVE_CHECKPOINT_IO_RETRIES
        ) == 1

    def test_transient_commit_fault_cleared_by_retry(self, tmp_path):
        checkpoint = ServeCheckpoint(
            tmp_path, io_retries=1, io_backoff_s=0.0,
            io_fault=_flaky("commit", 1),
        )
        checkpoint.write_state(1, [{"shard": 0}], {"s": 1})
        checkpoint.commit(_cursor(1))
        payload = json.loads(checkpoint.cursor_path.read_text())
        assert payload["commit_index"] == 1

    def test_persistent_fault_exhausts_budget(self, tmp_path):
        checkpoint = ServeCheckpoint(
            tmp_path, io_retries=2, io_backoff_s=0.0,
            io_fault=_flaky("write_state", 99),
        )
        with pytest.raises(CheckpointIOExhausted, match="3 attempt"):
            checkpoint.write_state(1, [{"shard": 0}], {"s": 1})

    def test_exhausted_commit_leaves_previous_cursor_authoritative(
        self, tmp_path
    ):
        checkpoint = ServeCheckpoint(tmp_path, io_backoff_s=0.0)
        checkpoint.write_state(1, [{"shard": 0}], {"s": 1})
        checkpoint.commit(_cursor(1))
        broken = ServeCheckpoint(
            tmp_path, io_retries=1, io_backoff_s=0.0,
            io_fault=_flaky("commit", 99),
        )
        broken.write_state(2, [{"shard": 0}], {"s": 2})
        with pytest.raises(CheckpointIOExhausted):
            broken.commit(_cursor(2))
        # The commit point never moved: resume reworks exactly batch 2.
        payload = json.loads(checkpoint.cursor_path.read_text())
        assert payload["commit_index"] == 1
        loaded = checkpoint.load(
            stream_fingerprint="stream-fp",
            serve_fingerprint="serve-fp",
            n_shards=1,
        )
        assert loaded is not None
        assert loaded.cursor.commit_index == 1
        assert loaded.orphaned_state  # the rework marker

    def test_zero_retries_fails_on_first_fault(self, tmp_path):
        checkpoint = ServeCheckpoint(
            tmp_path, io_retries=0, io_backoff_s=0.0,
            io_fault=_flaky("write_state", 1),
        )
        with pytest.raises(CheckpointIOExhausted, match="1 attempt"):
            checkpoint.write_state(1, [{"shard": 0}], {"s": 1})

    def test_hook_sees_operation_commit_and_attempt(self, tmp_path):
        hook = _flaky("write_state", 1)
        checkpoint = ServeCheckpoint(
            tmp_path, io_retries=2, io_backoff_s=0.0, io_fault=hook
        )
        checkpoint.write_state(7, [{"shard": 0}], {"s": 1})
        assert hook.seen[:2] == [
            ("write_state", 7, 0),
            ("write_state", 7, 1),
        ]

    def test_budget_validation(self, tmp_path):
        with pytest.raises(ConfigError, match="io_retries"):
            ServeCheckpoint(tmp_path, io_retries=-1)
        with pytest.raises(ConfigError, match="io_backoff_s"):
            ServeCheckpoint(tmp_path, io_backoff_s=-0.1)
