"""Integration tests for the live telemetry plane on the serving loop.

The contract under test is the one DESIGN.md §12 pins: attaching the
full publisher/window/flight stack must not change a single served
score, the status board must expose a parseable /metrics scrape, the
JSONL snapshot stream must feed `obs tail`, and a cursor fallback must
flush a flight artifact naming the trigger.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    FlightRecorder,
    MetricsPublisher,
    MetricsRegistry,
    parse_prometheus,
    read_flight_jsonl,
    use_metrics,
)
from repro.obs import metrics as obs_metrics
from repro.obs.tail import read_snapshot_stream
from repro.runtime.faults import tear_file
from repro.serve import StatusBoard
from repro.serve.loop import serve_stream

BATCH = 64


def _plane(tmp_path, **kwargs):
    """A publisher wired to every sink, publishing on every tick."""
    board = StatusBoard()
    flight = FlightRecorder(tmp_path / "flight")
    publisher = MetricsPublisher(
        board=board,
        flight=flight,
        stream_path=tmp_path / "metrics-stream.jsonl",
        interval_s=0.0,
        **kwargs,
    )
    return publisher, board, flight


class TestBitIdentical:
    def test_plane_on_matches_plane_off(
        self, stream_path, serve_config, offline_reference, tmp_path
    ):
        bare = serve_stream(
            stream_path, tmp_path / "off", config=serve_config, batch_size=BATCH
        )
        publisher, _, _ = _plane(tmp_path)
        registry = MetricsRegistry()
        with use_metrics(registry):
            live = serve_stream(
                stream_path,
                tmp_path / "on",
                config=serve_config,
                batch_size=BATCH,
                publisher=publisher,
            )
        assert live.fingerprint() == bare.fingerprint()
        assert live.fingerprint() == offline_reference.fingerprint()
        assert publisher.published > 0


class TestGaugesAndStream:
    def test_final_snapshot_seals_position_gauges(
        self, stream_path, serve_config, tmp_path
    ):
        publisher, board, _ = _plane(tmp_path)
        registry = MetricsRegistry()
        with use_metrics(registry):
            result = serve_stream(
                stream_path,
                tmp_path / "ckpt",
                config=serve_config,
                batch_size=BATCH,
                publisher=publisher,
            )
        snapshots = read_snapshot_stream(tmp_path / "metrics-stream.jsonl")
        final = snapshots[-1]
        gauges = final["gauges"]
        # A finished run has nothing queued and no stream lag.
        assert gauges[obs_metrics.SERVE_QUEUE_DEPTH] == 0.0
        assert gauges[obs_metrics.SERVE_LAG_DAYS] == 0.0
        # The sealing commit gets its own index past the data commits.
        assert (
            gauges[obs_metrics.SERVE_COMMIT_INDEX]
            == final["counters"][obs_metrics.SERVE_CHECKPOINTED] + 1
        )
        # Cumulative counters in the snapshot match the run's counters.
        assert (
            final["counters"][obs_metrics.SERVE_INGESTED]
            == result.counters.ingested
        )

    def test_snapshot_context_carries_shard_table(
        self, stream_path, serve_config, tmp_path
    ):
        publisher, _, _ = _plane(tmp_path)
        registry = MetricsRegistry()
        with use_metrics(registry):
            serve_stream(
                stream_path,
                tmp_path / "ckpt",
                config=serve_config,
                batch_size=BATCH,
                n_shards=2,
                publisher=publisher,
            )
        final = read_snapshot_stream(tmp_path / "metrics-stream.jsonl")[-1]
        context = final["context"]
        assert context["n_shards"] == 2
        shards = context["shards"]
        assert [entry["shard"] for entry in shards] == [0, 1]
        assert sum(entry["customers"] for entry in shards) == 40

    def test_stream_lines_are_individually_parseable(
        self, stream_path, serve_config, tmp_path
    ):
        publisher, _, _ = _plane(tmp_path)
        registry = MetricsRegistry()
        with use_metrics(registry):
            serve_stream(
                stream_path,
                tmp_path / "ckpt",
                config=serve_config,
                batch_size=BATCH,
                publisher=publisher,
            )
        lines = (tmp_path / "metrics-stream.jsonl").read_text().splitlines()
        assert len(lines) == publisher.published
        for line in lines:
            json.loads(line)


class TestMetricsEndpoint:
    def test_metrics_503_until_first_publish(self):
        board = StatusBoard()
        code, payload = board.handle("/metrics")
        assert code == 503
        code, payload = board.handle("/metrics.jsonl")
        assert code == 503

    def test_scrape_parses_with_required_series(
        self, stream_path, serve_config, tmp_path
    ):
        publisher, board, _ = _plane(tmp_path)
        registry = MetricsRegistry()
        with use_metrics(registry):
            serve_stream(
                stream_path,
                tmp_path / "ckpt",
                config=serve_config,
                batch_size=BATCH,
                publisher=publisher,
            )
        code, text = board.handle("/metrics")
        assert code == 200
        series = parse_prometheus(text)
        assert series["repro_serve_ingested_total"] > 0
        assert series["repro_serve_checkpointed_total"] > 0
        assert "repro_serve_lag_days" in series
        assert 'repro_serve_batch_s{quantile="0.99"}' in series

    def test_metrics_jsonl_returns_recent_samples(
        self, stream_path, serve_config, tmp_path
    ):
        publisher, board, _ = _plane(tmp_path)
        registry = MetricsRegistry()
        with use_metrics(registry):
            serve_stream(
                stream_path,
                tmp_path / "ckpt",
                config=serve_config,
                batch_size=BATCH,
                publisher=publisher,
            )
        code, text = board.handle("/metrics.jsonl")
        assert code == 200
        samples = [json.loads(line) for line in text.splitlines()]
        assert samples
        assert all(s["schema"] == "repro-metrics-window" for s in samples)


class TestFlightOnCursorFallback:
    def test_torn_cursor_flushes_a_flight_artifact(
        self, stream_path, serve_config, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        serve_stream(
            stream_path,
            ckpt,
            config=serve_config,
            batch_size=BATCH,
            max_batches=3,
        )
        tear_file(ckpt / "cursor.json", keep_fraction=0.4)
        publisher, _, flight = _plane(tmp_path)
        registry = MetricsRegistry()
        with use_metrics(registry):
            result = serve_stream(
                stream_path,
                ckpt,
                config=serve_config,
                batch_size=BATCH,
                publisher=publisher,
            )
        assert result.finished and not result.resumed
        assert flight.flushed, "cursor fallback must trigger a flight flush"
        header, records = read_flight_jsonl(flight.flushed[0])
        assert header["reason"] == "cursor_invalid"
        # The ring carries the fallback event itself.
        assert any(
            r.get("kind") == "event" and r.get("event") == "cursor_invalid"
            for r in records
        )


class TestPublisherIsOptional:
    def test_loop_runs_without_publisher_and_without_registry(
        self, stream_path, serve_config, tmp_path
    ):
        result = serve_stream(
            stream_path, tmp_path / "ckpt", config=serve_config, batch_size=BATCH
        )
        assert result.finished

    def test_publisher_with_null_metrics_still_publishes(
        self, stream_path, serve_config, tmp_path
    ):
        # No active registry: gauges read nothing, but the plumbing must
        # not crash and the stream still gets snapshot lines.
        publisher, _, _ = _plane(tmp_path)
        result = serve_stream(
            stream_path,
            tmp_path / "ckpt",
            config=serve_config,
            batch_size=BATCH,
            publisher=publisher,
        )
        assert result.finished
        assert publisher.published > 0


@pytest.fixture(autouse=True)
def _no_registry_leak():
    """The active-registry contextvar must be restored by every test."""
    from repro.obs import metrics as m

    yield
    assert m.get_metrics() is m.NULL_METRICS
