"""Shared serving fixtures: a recorded stream plus its offline reference.

Session-scoped because recording and the offline sweep are each a full
pass over the synthetic log; every test treats them as immutable.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import ExperimentConfig
from repro.serve import OfflineSweep, offline_sweep_stream
from repro.synth import ScenarioConfig, generate_dataset
from repro.synth.stream import record_stream


@pytest.fixture(scope="session")
def serve_dataset():
    """A short study (10 months) so streams replay fast."""
    return generate_dataset(
        ScenarioConfig(n_loyal=20, n_churners=20, seed=3, n_months=10, onset_month=6)
    )


@pytest.fixture(scope="session")
def day_ordered_baskets(serve_dataset):
    return sorted(
        serve_dataset.log, key=lambda b: (b.day, b.customer_id)
    )


@pytest.fixture(scope="session")
def stream_path(serve_dataset, day_ordered_baskets, tmp_path_factory) -> Path:
    """A recorded stream of the whole synthetic log."""
    path = tmp_path_factory.mktemp("stream") / "stream.jsonl"
    return record_stream(
        day_ordered_baskets, path, calendar=serve_dataset.calendar
    )


@pytest.fixture(scope="session")
def serve_config() -> ExperimentConfig:
    return ExperimentConfig()


@pytest.fixture(scope="session")
def offline_reference(stream_path, serve_config) -> OfflineSweep:
    """The batch sweep every served run must match bit-for-bit."""
    return offline_sweep_stream(stream_path, config=serve_config)
