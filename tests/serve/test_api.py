"""Tests for the status/score API (socket-free handle + real HTTP)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import StatusBoard, StatusServer, serve_stream

BATCH = 200


class TestStatusBoard:
    def test_initial_state(self):
        board = StatusBoard()
        status = board.status()
        assert status["phase"] == "starting"
        assert status["counters"] == {
            "ingested": 0,
            "scored": 0,
            "flagged": 0,
            "checkpointed": 0,
        }
        assert status["customers_tracked"] == 0

    def test_handle_routes(self):
        board = StatusBoard()
        board.set_phase("serving")
        board.upsert_customer(7, 0.25, True, ((4, 0.25),))
        code, payload = board.handle("/status")
        assert code == 200
        assert payload["phase"] == "serving"
        assert payload["customers_tracked"] == 1
        code, payload = board.handle("/")
        assert code == 200
        code, payload = board.handle("/customers/7")
        assert code == 200
        assert payload == {
            "customer_id": 7,
            "stability": 0.25,
            "flagged": True,
            "alarm_windows": [[4, 0.25]],
        }

    def test_handle_rejections(self):
        board = StatusBoard()
        assert board.handle("/customers/99")[0] == 404
        assert board.handle("/customers/abc")[0] == 404
        assert board.handle("/manifest")[0] == 404
        assert board.handle("/nonsense")[0] == 404

    def test_nan_stability_is_null(self):
        board = StatusBoard()
        board.upsert_customer(1, float("nan"), False)
        assert board.customer(1)["stability"] is None

    def test_manifest_route_after_set(self):
        board = StatusBoard()
        board.set_manifest({"experiment": "serve"})
        code, payload = board.handle("/manifest")
        assert code == 200
        assert payload["experiment"] == "serve"


class TestServeUpdatesBoard:
    def test_loop_keeps_board_current(
        self, stream_path, serve_config, tmp_path
    ):
        board = StatusBoard()
        result = serve_stream(
            stream_path,
            tmp_path / "ckpt",
            config=serve_config,
            batch_size=BATCH,
            status=board,
        )
        status = board.status()
        assert status["phase"] == "finished"
        assert status["counters"] == result.counters.as_dict()
        assert status["checkpoint"]["finished"] is True
        assert status["customers_tracked"] == len(result.scores)
        assert status["run"]["n_shards"] == 1
        assert board.handle("/manifest")[0] == 200
        # Per-customer scores match the result table.
        for cid, stability in result.scores.items():
            record = board.customer(cid)
            assert record["flagged"] == result.flags[cid]
            if record["stability"] is not None:
                assert record["stability"] == stability

    def test_interrupted_phase(self, stream_path, serve_config, tmp_path):
        board = StatusBoard()
        serve_stream(
            stream_path,
            tmp_path / "ckpt",
            config=serve_config,
            batch_size=BATCH,
            max_batches=2,
            status=board,
        )
        assert board.phase == "interrupted"


class TestHttpServer:
    def _get(self, base: str, path: str):
        with urllib.request.urlopen(base + path) as response:
            return json.load(response)

    def test_routes_over_real_sockets(self):
        board = StatusBoard()
        board.set_phase("serving")
        board.upsert_customer(7, 0.83, True, ((4, 0.83),))
        with StatusServer(board, port=0) as server:
            assert server.port > 0
            base = f"http://127.0.0.1:{server.port}"
            status = self._get(base, "/status")
            assert status["phase"] == "serving"
            customer = self._get(base, "/customers/7")
            assert customer["customer_id"] == 7
            assert customer["flagged"] is True
            with pytest.raises(urllib.error.HTTPError) as missing:
                self._get(base, "/customers/99")
            assert missing.value.code == 404

    def test_stop_without_start_is_safe(self):
        server = StatusServer(StatusBoard(), port=0)
        server.stop()  # must not deadlock or raise

    def test_stop_is_idempotent(self):
        server = StatusServer(StatusBoard(), port=0)
        server.start()
        server.stop()
        server.stop()
