"""Tests for the serve checkpoint protocol (state dirs + atomic cursor)."""

from __future__ import annotations

import json

import pytest

from repro.runtime.faults import tear_file
from repro.serve import CursorInvalid, ServeCheckpoint, ServeCursor
from repro.serve.checkpoint import CURSOR_SCHEMA, CURSOR_VERSION


def _cursor(**overrides) -> ServeCursor:
    base = dict(
        commit_index=3,
        day_batches_consumed=17,
        counters={"ingested": 100, "scored": 40, "flagged": 2, "checkpointed": 3},
        stream_fingerprint="aaaa",
        serve_fingerprint="bbbb",
        n_shards=2,
        finished=False,
    )
    base.update(overrides)
    return ServeCursor(**base)


def _write_checkpoint(tmp_path, cursor: ServeCursor) -> ServeCheckpoint:
    checkpoint = ServeCheckpoint(tmp_path / "ckpt")
    checkpoint.write_state(
        cursor.commit_index,
        [{"shard": i} for i in range(cursor.n_shards)],
        {"customers": {}},
    )
    checkpoint.commit(cursor)
    return checkpoint


def _load(checkpoint: ServeCheckpoint, **overrides):
    kwargs = dict(
        stream_fingerprint="aaaa", serve_fingerprint="bbbb", n_shards=2
    )
    kwargs.update(overrides)
    return checkpoint.load(**kwargs)


class TestCursorCodec:
    def test_round_trip(self):
        cursor = _cursor()
        assert ServeCursor.from_payload(cursor.to_payload()) == cursor

    def test_version_drift_names_both_versions(self):
        payload = _cursor().to_payload()
        payload["version"] = CURSOR_VERSION + 1
        with pytest.raises(
            CursorInvalid,
            match=(
                f"found version {CURSOR_VERSION + 1}, "
                f"expected version {CURSOR_VERSION}"
            ),
        ):
            ServeCursor.from_payload(payload)

    def test_foreign_schema_rejected(self):
        payload = _cursor().to_payload()
        payload["schema"] = "something-else"
        with pytest.raises(CursorInvalid, match=CURSOR_SCHEMA):
            ServeCursor.from_payload(payload)

    def test_missing_field_rejected(self):
        payload = _cursor().to_payload()
        del payload["commit_index"]
        with pytest.raises(CursorInvalid, match="missing or malformed"):
            ServeCursor.from_payload(payload)


class TestCommitProtocol:
    def test_fresh_directory_loads_none(self, tmp_path):
        assert _load(ServeCheckpoint(tmp_path / "nothing")) is None

    def test_commit_then_load_round_trips(self, tmp_path):
        cursor = _cursor()
        checkpoint = _write_checkpoint(tmp_path, cursor)
        loaded = _load(checkpoint)
        assert loaded is not None
        assert loaded.cursor == cursor
        assert loaded.shard_payloads == [{"shard": 0}, {"shard": 1}]
        assert loaded.scores == {"customers": {}}
        assert not loaded.orphaned_state

    def test_commit_prunes_superseded_state(self, tmp_path):
        checkpoint = ServeCheckpoint(tmp_path / "ckpt")
        for commit in (1, 2, 3):
            checkpoint.write_state(commit, [{}], {})
            checkpoint.commit(_cursor(commit_index=commit, n_shards=1))
        remaining = sorted(
            p.name for p in checkpoint.directory.glob("state-*")
        )
        assert remaining == ["state-000003"]

    def test_orphaned_state_dir_is_reported(self, tmp_path):
        cursor = _cursor()
        checkpoint = _write_checkpoint(tmp_path, cursor)
        # A crash after write_state but before commit leaves this behind.
        checkpoint.write_state(
            cursor.commit_index + 1, [{}, {}], {"customers": {}}
        )
        loaded = _load(checkpoint)
        assert loaded is not None
        assert loaded.orphaned_state

    def test_counters_ride_inside_the_cursor(self, tmp_path):
        cursor = _cursor()
        loaded = _load(_write_checkpoint(tmp_path, cursor))
        assert loaded is not None
        assert loaded.cursor.counters["ingested"] == 100
        assert loaded.cursor.counters["checkpointed"] == 3


class TestInvalidCursors:
    def test_torn_cursor(self, tmp_path):
        checkpoint = _write_checkpoint(tmp_path, _cursor())
        tear_file(checkpoint.cursor_path, keep_fraction=0.4)
        with pytest.raises(CursorInvalid, match="torn or corrupt"):
            _load(checkpoint)

    def test_stream_mismatch(self, tmp_path):
        checkpoint = _write_checkpoint(tmp_path, _cursor())
        with pytest.raises(CursorInvalid, match="recorded over stream"):
            _load(checkpoint, stream_fingerprint="zzzz")

    def test_config_mismatch(self, tmp_path):
        checkpoint = _write_checkpoint(tmp_path, _cursor())
        with pytest.raises(CursorInvalid, match="serving config"):
            _load(checkpoint, serve_fingerprint="zzzz")

    def test_shard_count_mismatch(self, tmp_path):
        checkpoint = _write_checkpoint(tmp_path, _cursor())
        with pytest.raises(CursorInvalid, match="shard"):
            _load(checkpoint, n_shards=3)

    def test_missing_state_file(self, tmp_path):
        checkpoint = _write_checkpoint(tmp_path, _cursor())
        (checkpoint.state_dir(3) / "shard-0001.json").unlink()
        with pytest.raises(CursorInvalid, match="missing or unreadable"):
            _load(checkpoint)

    def test_torn_state_file(self, tmp_path):
        checkpoint = _write_checkpoint(tmp_path, _cursor())
        tear_file(checkpoint.state_dir(3) / "shard-0000.json", 0.3)
        with pytest.raises(CursorInvalid, match="torn"):
            _load(checkpoint)

    def test_non_object_cursor(self, tmp_path):
        checkpoint = _write_checkpoint(tmp_path, _cursor())
        checkpoint.cursor_path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(CursorInvalid, match="not a JSON object"):
            _load(checkpoint)
