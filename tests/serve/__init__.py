"""Tests for the serving layer (:mod:`repro.serve`)."""
