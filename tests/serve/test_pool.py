"""Tests for ShardedMonitorPool: sharded == serial, bit for bit."""

from __future__ import annotations

import math

import pytest

from repro.core.streaming import StabilityMonitor
from repro.data.streams import iter_day_batches
from repro.errors import ConfigError
from repro.serve import ShardedMonitorPool, merge_reports, shard_of
from repro.serve.pool import _process_shard_batch  # noqa: PLC2701
from repro.runtime.snapshot import snapshot_monitor


def _reference_reports(serve_dataset, day_ordered_baskets, serve_config):
    monitor = StabilityMonitor.from_config(
        serve_dataset.calendar, serve_config
    )
    reports = monitor.ingest_many(day_ordered_baskets)
    reports.extend(monitor.finish())
    return reports


def _assert_reports_identical(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right, strict=True):
        assert a.window_index == b.window_index
        assert list(a.stabilities) == list(b.stabilities)
        for cid in a.stabilities:
            x, y = a.stabilities[cid], b.stabilities[cid]
            # nan is a legal "undefined" stability; == would reject it.
            assert x == y or (math.isnan(x) and math.isnan(y))
        assert a.alarms == b.alarms


class TestSharding:
    def test_shard_of_partitions_completely(self):
        owners = {shard_of(cid, 4) for cid in range(100)}
        assert owners == {0, 1, 2, 3}

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_sharded_equals_single_monitor(
        self, serve_dataset, day_ordered_baskets, serve_config, n_shards
    ):
        pool = ShardedMonitorPool.create(
            serve_config.grid(serve_dataset.calendar),
            n_shards=n_shards,
            significance=serve_config.significance(),
            counting=serve_config.counting,
        )
        reports = pool.process_batch(
            list(iter_day_batches(day_ordered_baskets))
        )
        reports.extend(pool.finish())
        _assert_reports_identical(
            reports,
            _reference_reports(
                serve_dataset, day_ordered_baskets, serve_config
            ),
        )

    def test_parallel_equals_serial(
        self, serve_dataset, day_ordered_baskets, serve_config
    ):
        batches = list(iter_day_batches(day_ordered_baskets))

        def run(parallel):
            pool = ShardedMonitorPool.create(
                serve_config.grid(serve_dataset.calendar),
                n_shards=3,
                significance=serve_config.significance(),
                counting=serve_config.counting,
                parallel=parallel,
            )
            reports = pool.process_batch(batches)
            reports.extend(pool.finish())
            return reports

        _assert_reports_identical(run(False), run(True))

    def test_batched_equals_one_shot(
        self, serve_dataset, day_ordered_baskets, serve_config
    ):
        batches = list(iter_day_batches(day_ordered_baskets))

        def make_pool():
            return ShardedMonitorPool.create(
                serve_config.grid(serve_dataset.calendar),
                n_shards=2,
                significance=serve_config.significance(),
                counting=serve_config.counting,
            )

        one_shot = make_pool()
        expected = one_shot.process_batch(batches)
        expected.extend(one_shot.finish())

        chunked = make_pool()
        actual = []
        for start in range(0, len(batches), 7):
            actual.extend(chunked.process_batch(batches[start : start + 7]))
        actual.extend(chunked.finish())
        _assert_reports_identical(actual, expected)

    def test_snapshot_round_trip_mid_stream(
        self, serve_dataset, day_ordered_baskets, serve_config
    ):
        batches = list(iter_day_batches(day_ordered_baskets))
        cut = len(batches) // 2

        straight = ShardedMonitorPool.create(
            serve_config.grid(serve_dataset.calendar),
            n_shards=2,
            significance=serve_config.significance(),
            counting=serve_config.counting,
        )
        expected = straight.process_batch(batches)
        expected.extend(straight.finish())

        first = ShardedMonitorPool.create(
            serve_config.grid(serve_dataset.calendar),
            n_shards=2,
            significance=serve_config.significance(),
            counting=serve_config.counting,
        )
        actual = first.process_batch(batches[:cut])
        second = ShardedMonitorPool.from_snapshots(first.snapshot_shards())
        actual.extend(second.process_batch(batches[cut:]))
        actual.extend(second.finish())
        _assert_reports_identical(actual, expected)

    def test_customers_unions_shards(
        self, serve_dataset, day_ordered_baskets, serve_config
    ):
        pool = ShardedMonitorPool.create(
            serve_config.grid(serve_dataset.calendar),
            n_shards=3,
            significance=serve_config.significance(),
            counting=serve_config.counting,
        )
        pool.process_batch(list(iter_day_batches(day_ordered_baskets)))
        assert pool.customers() == sorted(
            {b.customer_id for b in day_ordered_baskets}
        )


class TestValidation:
    def test_zero_shards_rejected(self, serve_dataset, serve_config):
        with pytest.raises(ConfigError, match="n_shards"):
            ShardedMonitorPool.create(
                serve_config.grid(serve_dataset.calendar), n_shards=0
            )

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigError, match="at least one shard"):
            ShardedMonitorPool([])

    def test_empty_batch_is_noop(self, serve_dataset, serve_config):
        pool = ShardedMonitorPool.create(
            serve_config.grid(serve_dataset.calendar), n_shards=2
        )
        assert pool.process_batch([]) == []

    def test_merge_reports_sorts_by_customer(self):
        assert merge_reports([]) == []


class TestWorkerPurity:
    def test_worker_is_idempotent(
        self, serve_dataset, day_ordered_baskets, serve_config
    ):
        monitor = StabilityMonitor.from_config(
            serve_dataset.calendar, serve_config
        )
        days = tuple(
            (
                batch.day,
                tuple(
                    (b.customer_id, tuple(sorted(b.items)), b.monetary)
                    for b in batch.baskets
                ),
            )
            for batch in iter_day_batches(day_ordered_baskets[:200])
        )
        task = (snapshot_monitor(monitor), days)
        first = _process_shard_batch(task)
        second = _process_shard_batch(task)
        assert first == second
