"""The headline invariant: served == offline batch sweep, bit for bit."""

from __future__ import annotations

import math

import pytest

from repro.serve import (
    offline_sweep,
    offline_sweep_stream,
    score_fingerprint,
    serve_stream,
)

BATCH = 200


def _assert_tables_identical(result, reference):
    assert result.scores.keys() == reference.scores.keys()
    for cid, stability in result.scores.items():
        expected = reference.scores[cid]
        assert stability == expected or (
            math.isnan(stability) and math.isnan(expected)
        )
    assert result.flags == reference.flags
    assert result.alarm_windows == reference.alarm_windows


class TestParity:
    @pytest.mark.parametrize(
        ("n_shards", "parallel"), [(1, False), (3, False), (3, True)]
    )
    def test_serve_matches_offline(
        self,
        stream_path,
        serve_config,
        offline_reference,
        tmp_path,
        n_shards,
        parallel,
    ):
        result = serve_stream(
            stream_path,
            tmp_path / "ckpt",
            config=serve_config,
            batch_size=BATCH,
            n_shards=n_shards,
            parallel=parallel,
        )
        assert result.finished
        _assert_tables_identical(result, offline_reference)
        assert result.fingerprint() == offline_reference.fingerprint()

    def test_batch_size_never_changes_scores(
        self, stream_path, serve_config, offline_reference, tmp_path
    ):
        for batch_size in (50, 1000):
            result = serve_stream(
                stream_path,
                tmp_path / f"ckpt-{batch_size}",
                config=serve_config,
                batch_size=batch_size,
            )
            assert result.fingerprint() == offline_reference.fingerprint()

    def test_offline_sweep_stream_matches_in_memory(
        self,
        serve_dataset,
        day_ordered_baskets,
        stream_path,
        serve_config,
        offline_reference,
    ):
        in_memory = offline_sweep(
            day_ordered_baskets, serve_dataset.calendar, config=serve_config
        )
        assert in_memory.fingerprint() == offline_reference.fingerprint()

    def test_beta_changes_the_fingerprint(
        self, stream_path, serve_config, offline_reference
    ):
        stricter = offline_sweep_stream(
            stream_path, config=serve_config, beta=0.9
        )
        # Stabilities are beta-independent; alarms are not.
        assert sum(stricter.flags.values()) != sum(
            offline_reference.flags.values()
        )
        assert stricter.fingerprint() != offline_reference.fingerprint()


class TestFingerprint:
    def test_nan_aware_and_order_insensitive(self):
        a = score_fingerprint(
            {1: math.nan, 2: 0.5}, {1: False, 2: True}, {2: ((3, 0.5),)}
        )
        b = score_fingerprint(
            {2: 0.5, 1: math.nan}, {2: True, 1: False}, {2: ((3, 0.5),)}
        )
        assert a == b

    def test_sensitive_to_each_component(self):
        base = score_fingerprint({1: 0.5}, {1: False}, {})
        assert score_fingerprint({1: 0.6}, {1: False}, {}) != base
        assert score_fingerprint({1: 0.5}, {1: True}, {}) != base
        assert (
            score_fingerprint({1: 0.5}, {1: False}, {1: ((2, 0.5),)}) != base
        )

    def test_repr_precision_floats(self):
        x = 0.1 + 0.2  # 0.30000000000000004: must not collapse to 0.3
        assert score_fingerprint({1: x}, {1: False}, {}) != score_fingerprint(
            {1: 0.3}, {1: False}, {}
        )
