"""Tests for the recorded-stream fixture format (repro.synth.stream)."""

from __future__ import annotations

import json

import pytest

from repro.data import Basket
from repro.errors import ConfigError, SchemaError
from repro.synth.stream import (
    RECORDED_STREAM_VERSION,
    read_stream_header,
    record_stream,
    replay_stream,
    stream_calendar,
    stream_fingerprint,
)


class TestRecordReplay:
    def test_round_trip(self, serve_dataset, day_ordered_baskets, stream_path):
        replayed = [
            basket
            for batch in replay_stream(stream_path)
            for basket in batch.baskets
        ]
        assert len(replayed) == len(day_ordered_baskets)
        for original, copy in zip(day_ordered_baskets, replayed, strict=True):
            assert copy.customer_id == original.customer_id
            assert copy.day == original.day
            assert copy.items == original.items
            assert copy.monetary == original.monetary

    def test_batches_are_day_grouped_and_ordered(self, stream_path):
        days = [batch.day for batch in replay_stream(stream_path)]
        assert days == sorted(days)
        assert len(days) == len(set(days))

    def test_header_calendar_round_trips(self, serve_dataset, stream_path):
        calendar = stream_calendar(read_stream_header(stream_path))
        assert calendar == serve_dataset.calendar

    def test_skip_days_resumes_mid_stream(self, stream_path):
        full = list(replay_stream(stream_path))
        tail = list(replay_stream(stream_path, skip_days=3))
        assert [b.day for b in tail] == [b.day for b in full[3:]]

    def test_skip_all_days_yields_nothing(self, stream_path):
        n_days = sum(1 for _ in replay_stream(stream_path))
        assert list(replay_stream(stream_path, skip_days=n_days)) == []

    def test_negative_skip_rejected(self, stream_path):
        with pytest.raises(ConfigError, match="skip_days"):
            list(replay_stream(stream_path, skip_days=-1))

    def test_fingerprint_is_content_stable(
        self, serve_dataset, day_ordered_baskets, stream_path, tmp_path
    ):
        copy = record_stream(
            day_ordered_baskets,
            tmp_path / "copy.jsonl",
            calendar=serve_dataset.calendar,
        )
        assert stream_fingerprint(copy) == stream_fingerprint(stream_path)

    def test_fingerprint_changes_with_content(
        self, serve_dataset, day_ordered_baskets, stream_path, tmp_path
    ):
        other = record_stream(
            day_ordered_baskets[:-1],
            tmp_path / "other.jsonl",
            calendar=serve_dataset.calendar,
        )
        assert stream_fingerprint(other) != stream_fingerprint(stream_path)


class TestRejection:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SchemaError, match="not a recorded stream"):
            read_stream_header(path)

    def test_foreign_schema(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text(json.dumps({"schema": "something-else"}) + "\n")
        with pytest.raises(SchemaError, match="not a recorded stream"):
            read_stream_header(path)

    def test_version_drift_names_both_versions(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps(
                {
                    "schema": "repro.recorded-stream",
                    "version": RECORDED_STREAM_VERSION + 1,
                    "calendar": {"start": "2004-01-01", "n_months": 10},
                }
            )
            + "\n"
        )
        with pytest.raises(
            SchemaError,
            match=(
                f"found version {RECORDED_STREAM_VERSION + 1}, "
                f"expected version {RECORDED_STREAM_VERSION}"
            ),
        ):
            read_stream_header(path)

    def test_replay_validates_header_first(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(SchemaError, match="not a recorded stream"):
            list(replay_stream(path))

    def test_day_regression_rejected(
        self, serve_dataset, tmp_path
    ):
        baskets = [
            Basket.of(customer_id=1, day=5, items=[1], monetary=1.0),
            Basket.of(customer_id=1, day=9, items=[1], monetary=1.0),
        ]
        path = record_stream(
            baskets, tmp_path / "ok.jsonl", calendar=serve_dataset.calendar
        )
        lines = path.read_text().splitlines()
        lines.append(json.dumps({"day": 7, "baskets": [[1, [1], 1.0]]}))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SchemaError, match="regress"):
            list(replay_stream(path))

    def test_torn_day_line_names_line_number(
        self, serve_dataset, tmp_path
    ):
        baskets = [Basket.of(customer_id=1, day=5, items=[1], monetary=1.0)]
        path = record_stream(
            baskets, tmp_path / "torn.jsonl", calendar=serve_dataset.calendar
        )
        with path.open("a") as sink:
            sink.write('{"day": 6, "baskets": [[1,')
        with pytest.raises(SchemaError, match=":3: corrupt or truncated"):
            list(replay_stream(path))


class TestSkipDaysEdges:
    """The resume path's skip semantics, edge by edge (soak satellite)."""

    def test_skip_zero_is_the_full_replay(self, stream_path):
        full = list(replay_stream(stream_path))
        skipped = list(replay_stream(stream_path, skip_days=0))
        assert [b.day for b in skipped] == [b.day for b in full]
        assert sum(b.n_baskets for b in skipped) == sum(
            b.n_baskets for b in full
        )

    def test_skip_past_end_yields_nothing(self, stream_path):
        n_days = sum(1 for _ in replay_stream(stream_path))
        assert list(replay_stream(stream_path, skip_days=n_days + 5)) == []

    def test_skip_exactly_to_final_batch(self, stream_path):
        full = list(replay_stream(stream_path))
        tail = list(replay_stream(stream_path, skip_days=len(full) - 1))
        assert len(tail) == 1
        last = tail[0]
        assert last.day == full[-1].day
        assert [b.customer_id for b in last.baskets] == [
            b.customer_id for b in full[-1].baskets
        ]

    def test_fingerprint_mismatch_after_partial_skip_falls_back(
        self, stream_path, serve_config, tmp_path
    ):
        """A cursor must never skip into a *different* stream.

        Serve a few batches of stream A, then swap the file contents for
        stream B: the committed cursor's stream fingerprint no longer
        matches the header being replayed, so the resume must restart
        from the head of B (counting ``serve.cursor_invalid``) instead
        of silently applying A's skip count to B.
        """
        from repro.obs import MetricsRegistry, use_metrics
        from repro.obs import metrics as obs_metrics
        from repro.serve import offline_sweep_stream, serve_stream
        from repro.synth import ScenarioConfig, generate_dataset

        working = tmp_path / "stream.jsonl"
        working.write_bytes(stream_path.read_bytes())
        ckpt = tmp_path / "ckpt"
        partial = serve_stream(
            working, ckpt, batch_size=120, config=serve_config, max_batches=2
        )
        assert not partial.finished
        assert partial.day_batches_consumed > 0

        other = generate_dataset(
            ScenarioConfig(
                n_loyal=6, n_churners=6, seed=11, n_months=6, onset_month=4
            )
        )
        record_stream(
            sorted(other.log, key=lambda b: (b.day, b.customer_id)),
            working,
            calendar=other.calendar,
        )
        registry = MetricsRegistry()
        with use_metrics(registry):
            resumed = serve_stream(working, ckpt, batch_size=120)
        assert registry.counter_value(obs_metrics.SERVE_CURSOR_INVALID) == 1
        assert not resumed.resumed  # restarted from the head of B
        assert resumed.finished
        reference = offline_sweep_stream(working)
        assert resumed.fingerprint() == reference.fingerprint()
