"""Mid-window resume tests: kill, resume, prove the ≤1-batch rework bound.

The worst crash point is *between* a batch's state write and its cursor
commit (the ``on_state_written`` hook).  After such a crash the resumed
run must (a) produce a final score table bit-identical to an unkilled
run, (b) rework exactly one batch — provable from the processed-batch
journal: ``run1 + run2 == n_batches + 1`` — and (c) restore counters
without double-counting.
"""

from __future__ import annotations

import logging

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry, metrics as obs_metrics, use_metrics
from repro.runtime.faults import FaultPlan, tear_file
from repro.serve import serve_stream

BATCH = 200


class _Boom(RuntimeError):
    """Simulated crash injected from the on_state_written hook."""


def _crash_on(call: int):
    """A hook raising on the ``call``-th state write (1-based)."""
    seen = {"n": 0}

    def hook(commit_index: int) -> None:
        seen["n"] += 1
        if seen["n"] == call:
            raise _Boom(f"crash at state write #{call}")

    return hook, seen


@pytest.fixture()
def full_run(stream_path, serve_config, tmp_path):
    """An unkilled reference run (fresh checkpoint dir per test)."""
    return serve_stream(
        stream_path, tmp_path / "ref", config=serve_config, batch_size=BATCH
    )


class TestCrashResume:
    def test_crash_between_state_and_cursor(
        self, stream_path, serve_config, offline_reference, full_run, tmp_path
    ):
        n_batches = full_run.batches_this_run
        assert n_batches >= 4, "fixture too small to crash mid-stream"
        ckpt = tmp_path / "crash"
        hook, seen = _crash_on(4)
        with pytest.raises(_Boom):
            serve_stream(
                stream_path,
                ckpt,
                config=serve_config,
                batch_size=BATCH,
                on_state_written=hook,
            )
        run1_processed = seen["n"]

        resumed = serve_stream(
            stream_path, ckpt, config=serve_config, batch_size=BATCH
        )
        assert resumed.resumed
        assert resumed.finished
        # Rework bound, provable from the processed-batch counts.
        assert resumed.batches_reworked == 1
        assert run1_processed + resumed.batches_this_run == n_batches + 1
        # Bit-identical to the offline sweep and the unkilled run.
        assert resumed.fingerprint() == offline_reference.fingerprint()
        assert resumed.fingerprint() == full_run.fingerprint()
        # Counters restored from the cursor: no double counting.
        assert resumed.counters == full_run.counters

    def test_crash_at_first_batch(
        self, stream_path, serve_config, offline_reference, full_run, tmp_path
    ):
        ckpt = tmp_path / "crash-first"
        hook, seen = _crash_on(1)
        with pytest.raises(_Boom):
            serve_stream(
                stream_path,
                ckpt,
                config=serve_config,
                batch_size=BATCH,
                on_state_written=hook,
            )
        resumed = serve_stream(
            stream_path, ckpt, config=serve_config, batch_size=BATCH
        )
        # Nothing was ever committed: a fresh start, not a resume, and
        # the batch in flight is the only one processed twice.
        assert not resumed.resumed
        assert resumed.batches_reworked == 0
        assert (
            seen["n"] + resumed.batches_this_run
            == full_run.batches_this_run + 1
        )
        assert resumed.fingerprint() == offline_reference.fingerprint()
        assert resumed.counters == full_run.counters

    def test_crash_during_finish_commit(
        self, stream_path, serve_config, offline_reference, full_run, tmp_path
    ):
        n_batches = full_run.batches_this_run
        ckpt = tmp_path / "crash-finish"
        # The finish seal is state write n_batches + 1.
        hook, seen = _crash_on(n_batches + 1)
        with pytest.raises(_Boom):
            serve_stream(
                stream_path,
                ckpt,
                config=serve_config,
                batch_size=BATCH,
                on_state_written=hook,
            )
        resumed = serve_stream(
            stream_path, ckpt, config=serve_config, batch_size=BATCH
        )
        assert resumed.resumed
        assert resumed.finished
        assert resumed.batches_this_run == 0
        assert resumed.fingerprint() == offline_reference.fingerprint()
        assert resumed.counters == full_run.counters

    def test_clean_interrupt_resumes_without_rework(
        self, stream_path, serve_config, offline_reference, full_run, tmp_path
    ):
        ckpt = tmp_path / "partial"
        first = serve_stream(
            stream_path,
            ckpt,
            config=serve_config,
            batch_size=BATCH,
            max_batches=3,
        )
        assert not first.finished
        assert first.batches_this_run == 3
        second = serve_stream(
            stream_path, ckpt, config=serve_config, batch_size=BATCH
        )
        assert second.resumed
        assert second.batches_reworked == 0
        assert (
            first.batches_this_run + second.batches_this_run
            == full_run.batches_this_run
        )
        assert second.fingerprint() == offline_reference.fingerprint()

    def test_finished_checkpoint_is_idempotent(
        self, stream_path, serve_config, full_run
    ):
        again = serve_stream(
            stream_path,
            full_run.checkpoint_dir,
            config=serve_config,
            batch_size=BATCH,
        )
        assert again.finished
        assert again.batches_this_run == 0
        assert again.fingerprint() == full_run.fingerprint()
        assert again.counters == full_run.counters


class TestCursorFallback:
    def test_torn_cursor_restarts_from_head(
        self, stream_path, serve_config, offline_reference, tmp_path, caplog
    ):
        ckpt = tmp_path / "torn"
        serve_stream(
            stream_path,
            ckpt,
            config=serve_config,
            batch_size=BATCH,
            max_batches=3,
        )
        tear_file(ckpt / "cursor.json", keep_fraction=0.4)
        registry = MetricsRegistry()
        with use_metrics(registry), caplog.at_level(
            logging.WARNING, logger="repro.serve.loop"
        ):
            result = serve_stream(
                stream_path, ckpt, config=serve_config, batch_size=BATCH
            )
        assert not result.resumed
        assert result.finished
        assert result.fingerprint() == offline_reference.fingerprint()
        assert any(
            "restarting from stream head" in r.message for r in caplog.records
        )
        assert (
            registry.counter_value(obs_metrics.SERVE_CURSOR_INVALID) == 1
        )

    def test_torn_shard_state_restarts_from_head(
        self, stream_path, serve_config, offline_reference, tmp_path, caplog
    ):
        ckpt = tmp_path / "torn-state"
        partial = serve_stream(
            stream_path,
            ckpt,
            config=serve_config,
            batch_size=BATCH,
            max_batches=3,
        )
        state_dir = ckpt / f"state-{3:06d}"
        assert state_dir.exists(), partial
        tear_file(state_dir / "shard-0000.json", keep_fraction=0.3)
        with caplog.at_level(logging.WARNING, logger="repro.serve.loop"):
            result = serve_stream(
                stream_path, ckpt, config=serve_config, batch_size=BATCH
            )
        assert not result.resumed
        assert result.fingerprint() == offline_reference.fingerprint()

    def test_changed_config_restarts_from_head(
        self, stream_path, serve_config, tmp_path, caplog
    ):
        ckpt = tmp_path / "reconfig"
        serve_stream(
            stream_path,
            ckpt,
            config=serve_config,
            batch_size=BATCH,
            max_batches=3,
        )
        with caplog.at_level(logging.WARNING, logger="repro.serve.loop"):
            result = serve_stream(
                stream_path,
                ckpt,
                config=serve_config,
                batch_size=BATCH,
                beta=0.7,
            )
        assert not result.resumed
        assert result.finished


class TestFaultyWorkers:
    def test_crashed_shard_worker_is_retried(
        self, stream_path, serve_config, offline_reference, tmp_path
    ):
        result = serve_stream(
            stream_path,
            tmp_path / "faulty",
            config=serve_config,
            batch_size=BATCH,
            n_shards=2,
            parallel=True,
            fault_plan=FaultPlan(crashes=((0, 0),)),
        )
        assert result.finished
        assert result.fingerprint() == offline_reference.fingerprint()

    def test_erroring_worker_then_crash_then_resume(
        self, stream_path, serve_config, offline_reference, full_run, tmp_path
    ):
        ckpt = tmp_path / "faulty-crash"
        hook, seen = _crash_on(3)
        with pytest.raises(_Boom):
            serve_stream(
                stream_path,
                ckpt,
                config=serve_config,
                batch_size=BATCH,
                n_shards=2,
                parallel=True,
                fault_plan=FaultPlan(errors=((1, 0),)),
                on_state_written=hook,
            )
        resumed = serve_stream(
            stream_path,
            ckpt,
            config=serve_config,
            batch_size=BATCH,
            n_shards=2,
            parallel=True,
        )
        assert resumed.resumed
        assert resumed.batches_reworked == 1
        assert (
            seen["n"] + resumed.batches_this_run
            == full_run.batches_this_run + 1
        )
        assert resumed.fingerprint() == offline_reference.fingerprint()


class TestValidation:
    def test_bad_batch_size(self, stream_path, serve_config, tmp_path):
        with pytest.raises(ConfigError, match="batch_size"):
            serve_stream(
                stream_path, tmp_path / "x", config=serve_config, batch_size=0
            )

    def test_bad_n_shards(self, stream_path, serve_config, tmp_path):
        with pytest.raises(ConfigError, match="n_shards"):
            serve_stream(
                stream_path, tmp_path / "x", config=serve_config, n_shards=0
            )

    def test_bad_max_batches(self, stream_path, serve_config, tmp_path):
        with pytest.raises(ConfigError, match="max_batches"):
            serve_stream(
                stream_path,
                tmp_path / "x",
                config=serve_config,
                max_batches=0,
            )
