"""StatusServer under hostile load: shutdown while being hammered.

Satellite of the soak harness: the status API must come down cleanly
mid-soak — ``stop()`` returns promptly even with requests in flight or
half-open connections, and leaves no live server thread behind.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

from repro.serve import StatusBoard, StatusServer


def _live_server_threads() -> list[threading.Thread]:
    return [
        thread
        for thread in threading.enumerate()
        if thread.name.startswith("repro-serve-status") and thread.is_alive()
    ]


class TestShutdownUnderLoad:
    def test_stop_returns_promptly_while_status_is_hammered(self):
        board = StatusBoard()
        board.set_phase("serving")
        server = StatusServer(board, port=0)
        base = f"http://127.0.0.1:{server.start()}"
        stop_hammering = threading.Event()
        served = {"ok": 0, "refused": 0}

        def hammer() -> None:
            while not stop_hammering.is_set():
                try:
                    with urllib.request.urlopen(
                        base + "/status", timeout=1.0
                    ) as response:
                        json.load(response)
                    served["ok"] += 1
                except (urllib.error.URLError, OSError):
                    # Connections racing the shutdown are refused/reset;
                    # that is the expected losing side of the race.
                    served["refused"] += 1

        hammerers = [
            threading.Thread(target=hammer, daemon=True) for _ in range(4)
        ]
        for thread in hammerers:
            thread.start()
        # Let the hammer actually land before pulling the plug.
        deadline = time.perf_counter() + 2.0
        while served["ok"] < 20 and time.perf_counter() < deadline:
            time.sleep(0.01)
        assert served["ok"] > 0

        started = time.perf_counter()
        server.stop()
        stop_seconds = time.perf_counter() - started
        stop_hammering.set()
        for thread in hammerers:
            thread.join(timeout=2.0)

        # SIGTERM-grade promptness: nowhere near the request timeout.
        assert stop_seconds < 3.0
        assert _live_server_threads() == []

    def test_stop_is_not_pinned_by_a_half_open_connection(self):
        """A client that connects and never sends a request line must not
        hang the shutdown (the per-request socket timeout bounds it)."""
        server = StatusServer(
            StatusBoard(), port=0, request_timeout=0.5
        )
        port = server.start()
        lurker = socket.create_connection(("127.0.0.1", port))
        try:
            time.sleep(0.1)  # let the handler thread pick the socket up
            started = time.perf_counter()
            server.stop()
            assert time.perf_counter() - started < 3.0
            assert _live_server_threads() == []
        finally:
            lurker.close()

    def test_requests_after_stop_are_refused(self):
        board = StatusBoard()
        server = StatusServer(board, port=0)
        base = f"http://127.0.0.1:{server.start()}"
        with urllib.request.urlopen(base + "/status", timeout=1.0) as resp:
            assert resp.status == 200
        server.stop()
        try:
            urllib.request.urlopen(base + "/status", timeout=1.0)
        except (urllib.error.URLError, OSError):
            pass
        else:  # pragma: no cover - would mean the socket outlived stop()
            raise AssertionError("server still accepting after stop()")

    def test_request_timeout_is_bound_per_server(self):
        server = StatusServer(StatusBoard(), port=0, request_timeout=1.25)
        try:
            handler = server._server.RequestHandlerClass
            assert handler.timeout == 1.25
        finally:
            server.stop()
