"""Tests for the flight recorder: bounded ring, atomic flush, reader."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError, SchemaError
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FLIGHT_VERSION,
    FlightRecorder,
    read_flight_jsonl,
)


class TestRing:
    def test_capacity_bounds_the_ring(self):
        recorder = FlightRecorder("unused", capacity=3)
        for i in range(10):
            recorder.record_event("tick", i=i)
        assert len(recorder) == 3

    def test_oldest_records_fall_off_first(self, tmp_path):
        recorder = FlightRecorder(tmp_path, capacity=2)
        for i in range(4):
            recorder.record_event("tick", i=i)
        _, records = read_flight_jsonl(recorder.trigger("fault:worker_crash"))
        assert [r["i"] for r in records] == [2, 3]

    def test_record_kinds(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        recorder.record_event("leg_started", leg=1)
        recorder.record_metrics({"schema": "repro-metrics-window"})
        recorder.record_span({"name": "serve.batch"})
        _, records = read_flight_jsonl(recorder.trigger("cursor_invalid"))
        assert [r["kind"] for r in records] == ["event", "metrics", "span"]

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigError):
            FlightRecorder("unused", capacity=0)


class TestTrigger:
    def test_artifact_named_by_commit_index(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        recorder.record_event("e")
        path = recorder.trigger("fault:slow_shard", commit_index=17)
        assert path.name == "flight-0017.jsonl"
        assert path.parent == tmp_path

    def test_header_names_reason_and_commit(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        recorder.record_event("e")
        header, records = read_flight_jsonl(
            recorder.trigger("slo_violation:p99", commit_index=4)
        )
        assert header["schema"] == FLIGHT_SCHEMA
        assert header["version"] == FLIGHT_VERSION
        assert header["reason"] == "slo_violation:p99"
        assert header["commit_index"] == 4
        assert header["records"] == len(records) == 1

    def test_repeat_triggers_never_overwrite(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        recorder.record_event("first")
        first = recorder.trigger("fault:ckpt_io", commit_index=2)
        recorder.record_event("second")
        second = recorder.trigger("fault:ckpt_io", commit_index=2)
        assert first != second
        assert first.exists() and second.exists()
        assert recorder.flushed == [first, second]

    def test_flush_is_whole_lines(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        for i in range(5):
            recorder.record_event("tick", i=i)
        path = recorder.trigger("fault:tear_state")
        lines = path.read_text().splitlines()
        assert len(lines) == 6  # header + ring
        for line in lines:
            json.loads(line)  # every line parses on its own

    def test_empty_ring_still_flushes_a_header(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        header, records = read_flight_jsonl(recorder.trigger("cursor_invalid"))
        assert header["records"] == 0
        assert records == []


class TestReader:
    def test_missing_file_raises_schema_error(self, tmp_path):
        with pytest.raises(SchemaError, match="cannot read"):
            read_flight_jsonl(tmp_path / "nope.jsonl")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            read_flight_jsonl(path)

    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "repro-flight"}\n{torn\n')
        with pytest.raises(SchemaError, match="corrupt"):
            read_flight_jsonl(path)

    def test_foreign_header_rejected(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text('{"schema": "something-else"}\n')
        with pytest.raises(SchemaError, match="not a flight artifact"):
            read_flight_jsonl(path)
