"""Tests for Prometheus exposition and the periodic metrics publisher."""

from __future__ import annotations

import json

import pytest

from repro.errors import SchemaError
from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsPublisher,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.flight import FlightRecorder, read_flight_jsonl
from repro.obs.metrics import SOAK_SLO_BURN, MetricsRegistry
from repro.obs.windows import WindowedMetrics


def _snapshot() -> dict[str, object]:
    return {
        "schema": "repro-metrics-window",
        "counters": {"serve.ingested": 4310, "soak.faults_injected": 6},
        "gauges": {"serve.lag_days": 3.0, "serve.queue_depth": 0.0},
        "rates": {"serve.ingested": 862.5},
        "windows": {
            "serve.batch_s": {
                "count": 17.0,
                "sum": 0.5,
                "p50": 0.001,
                "p95": 0.002,
                "p99": 0.003,
                "max": 0.003,
            }
        },
    }


class TestRenderPrometheus:
    def test_counters_become_total_series(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_serve_ingested_total counter" in text
        assert "repro_serve_ingested_total 4310" in text
        assert "repro_soak_faults_injected_total 6" in text

    def test_gauges_and_rates(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_serve_lag_days gauge" in text
        assert "repro_serve_lag_days 3" in text
        assert "# TYPE repro_serve_ingested_rate gauge" in text
        assert "repro_serve_ingested_rate 862.5" in text

    def test_window_summaries_with_quantile_labels(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_serve_batch_s summary" in text
        assert 'repro_serve_batch_s{quantile="0.5"} 0.001' in text
        assert 'repro_serve_batch_s{quantile="0.99"} 0.003' in text
        assert "repro_serve_batch_s_count 17" in text
        assert "repro_serve_batch_s_sum 0.5" in text

    def test_output_is_deterministic(self):
        assert render_prometheus(_snapshot()) == render_prometheus(_snapshot())

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({"schema": "repro-metrics-window"}) == ""

    def test_content_type_is_exposition_004(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestParsePrometheus:
    def test_round_trip(self):
        series = parse_prometheus(render_prometheus(_snapshot()))
        assert series["repro_serve_ingested_total"] == 4310.0
        assert series["repro_serve_lag_days"] == 3.0
        assert series['repro_serve_batch_s{quantile="0.99"}'] == 0.003
        assert series["repro_serve_batch_s_count"] == 17.0

    def test_comments_and_blanks_skipped(self):
        series = parse_prometheus("# HELP x\n\n# TYPE x counter\nx_total 1\n")
        assert series == {"x_total": 1.0}

    def test_malformed_line_raises(self):
        with pytest.raises(SchemaError, match="malformed"):
            parse_prometheus("just_a_name_no_value\n")
        with pytest.raises(SchemaError, match="malformed"):
            parse_prometheus("name not_a_number\n")


class _Board:
    def __init__(self) -> None:
        self.texts: list[str] = []
        self.samples: list[dict[str, object]] = []

    def set_metrics_text(self, text: str) -> None:
        self.texts.append(text)

    def push_metrics_sample(self, snapshot: dict[str, object]) -> None:
        self.samples.append(snapshot)


class TestMetricsPublisher:
    def test_tick_publishes_and_delivers_everywhere(self, tmp_path):
        board = _Board()
        flight = FlightRecorder(tmp_path / "flight")
        stream = tmp_path / "stream.jsonl"
        publisher = MetricsPublisher(
            board=board, flight=flight, stream_path=stream, interval_s=0.0
        )
        registry = MetricsRegistry()
        registry.counter("serve.ingested").inc(10)
        snapshot = publisher.tick(registry)
        assert snapshot is not None
        assert publisher.published == 1
        # Board got exposition text and the raw sample.
        assert "repro_serve_ingested_total 10" in board.texts[-1]
        assert board.samples[-1] is snapshot
        # The JSONL stream got one parseable line.
        line = json.loads(stream.read_text().splitlines()[-1])
        assert line["counters"] == {"serve.ingested": 10}
        assert "wall_ts" in line
        # The flight ring holds the snapshot.
        _, records = flight.trigger("fault:worker_crash"), None
        header, flight_records = read_flight_jsonl(flight.flushed[-1])
        assert flight_records[-1]["kind"] == "metrics"

    def test_interval_gates_publishing(self):
        publisher = MetricsPublisher(interval_s=3600.0)
        registry = MetricsRegistry()
        assert publisher.tick(registry) is not None  # first tick publishes
        assert publisher.tick(registry) is None  # inside the interval
        assert publisher.tick(registry, force=True) is not None
        assert publisher.published == 2

    def test_callable_context_resolved_only_on_publish(self):
        calls = []

        def context() -> dict[str, object]:
            calls.append(1)
            return {"n_shards": 2}

        publisher = MetricsPublisher(interval_s=3600.0)
        registry = MetricsRegistry()
        first = publisher.tick(registry, context=context)
        assert first is not None and first["context"] == {"n_shards": 2}
        publisher.tick(registry, context=context)  # gated: not resolved
        assert len(calls) == 1

    def test_slo_budgets_export_worst_burn_gauge(self):
        publisher = MetricsPublisher(
            windowed=WindowedMetrics(window_s=60.0, bucket_s=1.0),
            interval_s=0.0,
            slo_budgets_ms={"p50": 100.0, "p99": 50.0},
        )
        registry = MetricsRegistry()
        registry.histogram("serve.batch_s").observe(0.1)  # 100ms
        snapshot = publisher.tick(registry, force=True)
        assert snapshot is not None
        assert snapshot["burn"]["p99"] == pytest.approx(2.0)
        assert snapshot["gauges"][SOAK_SLO_BURN] == pytest.approx(2.0)

    def test_bare_publisher_needs_no_sinks(self):
        publisher = MetricsPublisher(interval_s=0.0)
        registry = MetricsRegistry()
        assert publisher.tick(registry) is not None
        publisher.record_event("ignored")  # no flight: no-op
        assert publisher.trigger_flight("fault:none") is None

    def test_trigger_flight_proxies_to_recorder(self, tmp_path):
        flight = FlightRecorder(tmp_path)
        publisher = MetricsPublisher(flight=flight, interval_s=0.0)
        publisher.record_event("fault_injected", site="worker_crash")
        path = publisher.trigger_flight("fault:worker_crash", commit_index=3)
        assert path is not None and path.name == "flight-0003.jsonl"
        header, records = read_flight_jsonl(path)
        assert header["reason"] == "fault:worker_crash"
        assert records[-1]["event"] == "fault_injected"
