"""Tests for run manifests: round-trip, validation, journal coexistence."""

from __future__ import annotations

import json

import pytest

from repro.config import ExperimentConfig
from repro.errors import ManifestError
from repro.obs.manifest import (
    MANIFEST_NAME,
    RunManifest,
    build_manifest,
    config_fingerprint,
    read_manifest,
    write_manifest,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.runtime.checkpoint import CheckpointJournal


class TestFingerprint:
    def test_order_insensitive(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_value_sensitive(self):
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})


class TestBuildManifest:
    def test_from_experiment_config(self):
        config = ExperimentConfig(window_months=2, alpha=2.0, backend="batch")
        manifest = build_manifest("figure1", config=config, seed=7)
        assert manifest.experiment == "figure1"
        assert manifest.backend == "batch"
        assert manifest.seed == 7
        assert manifest.config["alpha"] == 2.0
        assert manifest.config_fingerprint == config_fingerprint(manifest.config)
        assert manifest.created_unix > 0

    def test_telemetry_rollups_only_when_enabled(self):
        tracer = Tracer()
        with tracer.span("engine.fit"):
            pass
        registry = MetricsRegistry()
        registry.counter("c").inc()
        manifest = build_manifest(
            "figure1", config={"x": 1}, tracer=tracer, metrics=registry
        )
        assert "engine.fit" in manifest.spans
        assert manifest.metrics["counters"] == {"c": 1}

    def test_disabled_telemetry_leaves_rollups_empty(self):
        from repro.obs.metrics import NULL_METRICS
        from repro.obs.trace import NULL_TRACER

        manifest = build_manifest(
            "figure1", config={}, tracer=NULL_TRACER, metrics=NULL_METRICS
        )
        assert manifest.spans == {}
        assert manifest.metrics == {}


class TestRoundTrip:
    def test_write_to_directory_and_read_back(self, tmp_path):
        manifest = build_manifest("ablation", config={"alpha": 2.0}, seed=3)
        path = write_manifest(tmp_path, manifest)
        assert path.name == MANIFEST_NAME
        revived = read_manifest(tmp_path)  # dir or file both resolve
        assert revived == manifest
        assert read_manifest(path) == manifest

    def test_write_to_explicit_json_path(self, tmp_path):
        manifest = build_manifest("campaign", config={})
        path = write_manifest(tmp_path / "sub" / "run.json", manifest)
        assert path == tmp_path / "sub" / "run.json"
        assert read_manifest(path) == manifest


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="cannot read"):
            read_manifest(tmp_path / "absent.json")

    def test_truncated_json(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        path.write_text('{"schema": "repro-run-mani')
        with pytest.raises(ManifestError, match="corrupt or truncated"):
            read_manifest(path)

    def test_foreign_schema(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        path.write_text(json.dumps({"schema": "something-else", "version": 1}))
        with pytest.raises(ManifestError, match="not a run manifest"):
            read_manifest(path)

    def test_future_version(self, tmp_path):
        manifest = build_manifest("x", config={})
        payload = manifest.to_dict()
        payload["version"] = 99
        path = tmp_path / MANIFEST_NAME
        path.write_text(json.dumps(payload))
        with pytest.raises(ManifestError, match="unsupported manifest version"):
            read_manifest(path)

    def test_missing_required_field(self):
        with pytest.raises(ManifestError, match="missing 'config'"):
            RunManifest.from_dict(
                {
                    "schema": "repro-run-manifest",
                    "version": 1,
                    "experiment": "x",
                    "config_fingerprint": "abc",
                }
            )


class TestJournalCoexistence:
    def test_manifest_does_not_disturb_the_journal(self, tmp_path):
        journal = CheckpointJournal(tmp_path, schema="eval-protocol")
        journal.get_or_compute(("auroc", "month=20"), lambda: 0.9)
        write_manifest(tmp_path, build_manifest("figure1", config={"alpha": 2.0}))

        # The journal listing skips the reserved manifest name...
        rescan = CheckpointJournal(tmp_path, schema="eval-protocol")
        assert len(rescan.keys()) == 1
        # ...and the cell still replays.
        assert rescan.get_or_compute(("auroc", "month=20"), lambda: -1.0) == 0.9
        assert rescan.hits == 1
        # The manifest survives alongside the cells.
        assert read_manifest(tmp_path).experiment == "figure1"
