"""Tests for the metrics registry: instruments, merging, export."""

from __future__ import annotations

import json

import pytest

from repro.errors import SchemaError
from repro.obs.metrics import (
    CHECKPOINT_HITS,
    NULL_METRICS,
    MetricsRegistry,
    get_metrics,
    metrics_enabled,
    use_metrics,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(3)
        assert registry.counter_value("hits") == 4
        assert registry.counter_value("never_touched") == 0

    def test_instruments_are_created_once(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("level").set(1.0)
        registry.gauge("level").set(7.5)
        assert registry.gauge("level").value == 7.5

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (0.3, 0.1, 0.2):
            registry.histogram("stage_s").observe(value)
        summary = registry.histogram("stage_s").summary()
        assert summary["count"] == 3
        assert summary["total"] == pytest.approx(0.6)
        assert summary["p50"] == pytest.approx(0.2)
        assert summary["max"] == pytest.approx(0.3)


class TestMerge:
    def test_dump_merge_round_trip(self):
        worker = MetricsRegistry()
        worker.counter("shards").inc(2)
        worker.gauge("level").set(3.0)
        worker.histogram("stage_s").observe(0.5)

        parent = MetricsRegistry()
        parent.counter("shards").inc(1)
        parent.histogram("stage_s").observe(0.1)
        parent.merge(worker.dump())

        assert parent.counter_value("shards") == 3
        assert parent.gauge("level").value == 3.0
        assert parent.histogram("stage_s").values == [0.1, 0.5]

    def test_merge_is_picklable_payload(self):
        # The dump travels between processes as plain JSON-able dicts.
        worker = MetricsRegistry()
        worker.counter("c").inc()
        payload = json.loads(json.dumps(worker.dump()))
        parent = MetricsRegistry()
        parent.merge(payload)
        assert parent.counter_value("c") == 1

    def test_merge_rejects_garbage(self):
        parent = MetricsRegistry()
        with pytest.raises(SchemaError):
            parent.merge({"counters": {}})  # missing gauges/histogram_values
        with pytest.raises(SchemaError):
            parent.merge("not a dict")

    def test_merge_skips_unset_gauges(self):
        worker = MetricsRegistry()
        worker.gauge("level")  # created, never set
        parent = MetricsRegistry()
        parent.merge(worker.dump())
        assert parent.gauge("level").value is None


class TestSerialization:
    def test_to_dict_summarizes_histograms(self):
        registry = MetricsRegistry()
        registry.counter(CHECKPOINT_HITS).inc(5)
        registry.histogram("stage_s").observe(1.0)
        snapshot = registry.to_dict()
        assert snapshot["schema"] == "repro-metrics"
        assert snapshot["counters"] == {CHECKPOINT_HITS: 5}
        assert snapshot["histograms"]["stage_s"]["count"] == 1

    def test_export_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = registry.export_json(tmp_path / "metrics.json")
        revived = json.loads(path.read_text())
        assert revived["counters"] == {"c": 1}


class TestActiveRegistry:
    def test_default_is_null_and_records_nothing(self):
        assert get_metrics() is NULL_METRICS
        assert not metrics_enabled()
        NULL_METRICS.counter("anything").inc(100)
        assert NULL_METRICS.counter_value("anything") == 0
        assert NULL_METRICS.to_dict()["counters"] == {}

    def test_use_metrics_scopes_and_restores(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            assert get_metrics() is registry
            assert metrics_enabled()
            get_metrics().counter("scoped").inc()
        assert get_metrics() is NULL_METRICS
        assert registry.counter_value("scoped") == 1


class TestHistogramQuantiles:
    """Satellite of the soak harness: the SLO math it relies on."""

    def _hist(self, *values):
        registry = MetricsRegistry()
        for value in values:
            registry.histogram("stage_s").observe(value)
        return registry.histogram("stage_s")

    def test_empty_histogram_quantiles_to_zero(self):
        hist = self._hist()
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == 0.0
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["p50"] == summary["p95"] == summary["p99"] == 0.0

    def test_single_sample_returned_at_every_quantile(self):
        hist = self._hist(0.42)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(0.42)
        assert hist.summary()["p99"] == pytest.approx(0.42)

    def test_nearest_rank_on_known_distribution(self):
        hist = self._hist(*(float(v) for v in range(101)))
        assert hist.quantile(0.50) == pytest.approx(50.0)
        assert hist.quantile(0.95) == pytest.approx(95.0)
        assert hist.quantile(0.99) == pytest.approx(99.0)
        assert hist.quantile(0.0) == pytest.approx(0.0)
        assert hist.quantile(1.0) == pytest.approx(100.0)

    def test_quantile_ignores_observation_order(self):
        increasing = self._hist(0.1, 0.2, 0.9)
        shuffled = self._hist(0.9, 0.1, 0.2)
        for q in (0.5, 0.95, 0.99):
            assert increasing.quantile(q) == shuffled.quantile(q)

    def test_out_of_range_q_rejected(self):
        from repro.errors import ConfigError

        hist = self._hist(1.0)
        with pytest.raises(ConfigError, match="quantile q"):
            hist.quantile(1.5)
        with pytest.raises(ConfigError, match="quantile q"):
            hist.quantile(-0.01)

    def test_summary_quantiles_match_quantile_method(self):
        hist = self._hist(0.3, 0.1, 0.2, 0.8, 0.5)
        summary = hist.summary()
        assert summary["p50"] == pytest.approx(hist.quantile(0.50))
        assert summary["p95"] == pytest.approx(hist.quantile(0.95))
        assert summary["p99"] == pytest.approx(hist.quantile(0.99))

    def test_null_histogram_quantile_is_zero(self):
        assert NULL_METRICS.histogram("stage_s").quantile(0.99) == 0.0

    def test_quantiles_after_worker_dump_merge(self):
        # The parallel pool merges worker dumps into the parent registry;
        # quantiles over the merged values must equal quantiles over the
        # union as if observed in one process.
        workers = [MetricsRegistry() for _ in range(3)]
        union = []
        for index, worker in enumerate(workers):
            for value in range(index * 10, index * 10 + 10):
                worker.histogram("stage_s").observe(float(value))
                union.append(float(value))
        parent = MetricsRegistry()
        for worker in workers:
            parent.merge(worker.dump())
        merged = parent.histogram("stage_s")
        reference = MetricsRegistry()
        for value in union:
            reference.histogram("stage_s").observe(value)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert merged.quantile(q) == pytest.approx(
                reference.histogram("stage_s").quantile(q)
            )
        assert merged.summary()["count"] == 30
