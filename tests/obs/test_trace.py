"""Tests for the span tracer: nesting, merging, JSONL round-trip."""

from __future__ import annotations

import json

import pytest

from repro.errors import SchemaError
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    SpanRecord,
    Tracer,
    get_tracer,
    read_trace_jsonl,
    render_span_summary,
    set_tracer,
    span,
    summarize_spans,
    tracing_enabled,
    use_tracer,
    write_trace_jsonl,
)


class TestTracer:
    def test_nesting_records_children_before_parents(self):
        tracer = Tracer()
        with tracer.span("outer", level=1), tracer.span("inner"):
            pass
        names = [r.name for r in tracer.records]
        assert names == ["inner", "outer"]
        inner, outer = tracer.records
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.attrs == {"level": 1}

    def test_wall_and_cpu_are_recorded(self):
        tracer = Tracer()
        with tracer.span("work"):
            sum(range(10_000))
        record = tracer.records[0]
        assert record.wall_s >= 0.0
        assert record.cpu_s >= 0.0
        assert record.pid > 0

    def test_exception_tags_the_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError), tracer.span("failing"):
            raise ValueError("boom")
        record = tracer.records[0]
        assert record.attrs["error"] == "ValueError"
        assert not tracer._stack  # the stack unwound cleanly

    def test_current_span_id_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current_span_id() is None
        with tracer.span("a") as a:
            assert tracer.current_span_id() == a.span_id
        assert tracer.current_span_id() is None


class TestActiveTracer:
    def test_default_is_null_and_span_is_shared_noop(self):
        assert get_tracer() is NULL_TRACER
        assert span("anything", x=1) is NULL_SPAN
        assert not tracing_enabled()

    def test_use_tracer_scopes_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            assert tracing_enabled()
            with span("scoped"):
                pass
        assert get_tracer() is NULL_TRACER
        assert [r.name for r in tracer.records] == ["scoped"]

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert previous is NULL_TRACER
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)


class TestMerge:
    def test_merge_preserves_internal_links_and_reparents_roots(self):
        worker = Tracer()
        with worker.span("root"), worker.span("child"):
            pass
        parent = Tracer()
        with parent.span("sweep") as sweep:
            adopted = parent.merge(worker.to_dicts())
        assert adopted == 2
        by_name = {r.name: r for r in parent.records}
        assert by_name["root"].parent_id == sweep.span_id
        assert by_name["child"].parent_id == by_name["root"].span_id
        # Fresh ids: no collision with the parent's own spans.
        assert len({r.span_id for r in parent.records}) == 3

    def test_merge_outside_any_span_keeps_roots_rootless(self):
        worker = Tracer()
        with worker.span("root"):
            pass
        parent = Tracer()
        parent.merge(worker.to_dicts())
        assert parent.records[0].parent_id is None

    def test_merge_rejects_garbage(self):
        parent = Tracer()
        with pytest.raises(SchemaError):
            parent.merge([{"not": "a span"}])


class TestJsonlRoundTrip:
    def test_round_trip_is_lossless(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", n=3), tracer.span("inner"):
            pass
        path = write_trace_jsonl(tmp_path / "trace.jsonl", tracer.records)
        revived = read_trace_jsonl(path)
        assert revived == list(tracer.records)

    def test_corrupt_line_raises_schema_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "ok"\n')
        with pytest.raises(SchemaError, match="corrupt trace line"):
            read_trace_jsonl(path)

    def test_foreign_record_raises_schema_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"name": "x", "span_id": 1}) + "\n")
        with pytest.raises(SchemaError, match="missing"):
            read_trace_jsonl(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        path = write_trace_jsonl(tmp_path / "t.jsonl", tracer.records)
        path.write_text(path.read_text() + "\n\n")
        assert len(read_trace_jsonl(path)) == 1


class TestSummaries:
    def _records(self, walls: list[float], name: str = "stage") -> list[SpanRecord]:
        return [
            SpanRecord(
                name=name,
                span_id=i + 1,
                parent_id=None,
                start_unix=0.0,
                wall_s=w,
                cpu_s=w / 2,
                pid=1,
                attrs={},
            )
            for i, w in enumerate(walls)
        ]

    def test_summarize_aggregates_per_name(self):
        records = self._records([0.1, 0.2, 0.3]) + self._records([1.0], name="big")
        summary = summarize_spans(records)
        assert list(summary) == ["big", "stage"]  # heaviest first
        stage = summary["stage"]
        assert stage["count"] == 3
        assert stage["total_s"] == pytest.approx(0.6)
        assert stage["p50_s"] == pytest.approx(0.2)
        assert stage["max_s"] == pytest.approx(0.3)
        assert stage["cpu_s"] == pytest.approx(0.3)

    def test_render_span_summary_is_a_table(self):
        rendered = render_span_summary(summarize_spans(self._records([0.5])))
        assert "span" in rendered
        assert "stage" in rendered
        assert "p95 s" in rendered
