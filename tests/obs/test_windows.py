"""Tests for the windowed metrics layer (rolling rates, window quantiles)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.windows import (
    WINDOW_SNAPSHOT_SCHEMA,
    WINDOW_SNAPSHOT_VERSION,
    WindowedMetrics,
)


def _registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestConstruction:
    def test_rejects_non_positive_widths(self):
        with pytest.raises(ConfigError):
            WindowedMetrics(window_s=0.0)
        with pytest.raises(ConfigError):
            WindowedMetrics(bucket_s=-1.0)

    def test_rejects_bucket_wider_than_window(self):
        with pytest.raises(ConfigError):
            WindowedMetrics(window_s=5.0, bucket_s=10.0)

    def test_ring_length_is_ceiling(self):
        assert WindowedMetrics(window_s=60.0, bucket_s=5.0).n_buckets == 12
        assert WindowedMetrics(window_s=7.0, bucket_s=2.0).n_buckets == 4


class TestSampling:
    def test_counter_deltas_not_totals_land_in_buckets(self):
        windowed = WindowedMetrics(window_s=10.0, bucket_s=1.0)
        registry = _registry()
        registry.counter("serve.ingested").inc(100)
        windowed.sample(registry, now=0.0)
        registry.counter("serve.ingested").inc(50)
        windowed.sample(registry, now=1.0)
        # Window holds both deltas; totals track the cumulative value.
        assert windowed.window_count("serve.ingested") == 150
        assert windowed.totals()["serve.ingested"] == 150
        registry.counter("serve.ingested").inc(25)
        windowed.sample(registry, now=2.0)
        assert windowed.window_count("serve.ingested") == 175

    def test_rate_is_per_second_over_covered_span(self):
        windowed = WindowedMetrics(window_s=60.0, bucket_s=1.0)
        registry = _registry()
        for second in range(5):
            registry.counter("serve.scored").inc(10)
            windowed.sample(registry, now=float(second))
        # 50 events over a 5-bucket (5s) span.
        assert windowed.rate("serve.scored") == pytest.approx(10.0)
        assert windowed.span_s() == pytest.approx(5.0)

    def test_old_buckets_fall_off_the_ring(self):
        windowed = WindowedMetrics(window_s=4.0, bucket_s=1.0)
        registry = _registry()
        registry.counter("c").inc(100)
        windowed.sample(registry, now=0.0)
        assert windowed.window_count("c") == 100
        # 10 seconds later the early bucket is far outside the window.
        windowed.sample(registry, now=10.0)
        assert windowed.window_count("c") == 0
        assert windowed.rate("c") == 0.0
        # Cumulative totals survive eviction.
        assert windowed.totals()["c"] == 100

    def test_histogram_tail_values_only_counted_once(self):
        windowed = WindowedMetrics(window_s=60.0, bucket_s=1.0)
        registry = _registry()
        registry.histogram("serve.batch_s").observe(0.1)
        registry.histogram("serve.batch_s").observe(0.2)
        windowed.sample(registry, now=0.0)
        registry.histogram("serve.batch_s").observe(0.9)
        windowed.sample(registry, now=1.0)
        summary = windowed.window_summary("serve.batch_s")
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(1.2)
        # Re-sampling without new observations adds nothing.
        windowed.sample(registry, now=2.0)
        assert windowed.window_summary("serve.batch_s")["count"] == 3

    def test_window_summary_quantiles_over_in_window_values(self):
        windowed = WindowedMetrics(window_s=2.0, bucket_s=1.0)
        registry = _registry()
        registry.histogram("h").observe(100.0)  # will age out
        windowed.sample(registry, now=0.0)
        for value in (1.0, 2.0, 3.0):
            registry.histogram("h").observe(value)
        windowed.sample(registry, now=5.0)
        summary = windowed.window_summary("h")
        assert summary["count"] == 3
        assert summary["max"] == pytest.approx(3.0)
        assert summary["p50"] == pytest.approx(2.0)
        # The aged-out 100.0 no longer dominates the quantiles.
        assert summary["p99"] <= 3.0

    def test_gauges_are_point_in_time(self):
        windowed = WindowedMetrics()
        registry = _registry()
        registry.gauge("serve.queue_depth").set(7.0)
        windowed.sample(registry, now=0.0)
        registry.gauge("serve.queue_depth").set(3.0)
        windowed.sample(registry, now=100.0)
        assert windowed.gauges()["serve.queue_depth"] == 3.0

    def test_set_gauge_records_publisher_computed_values(self):
        windowed = WindowedMetrics()
        windowed.set_gauge("soak.slo_burn", 1.25)
        assert windowed.gauges()["soak.slo_burn"] == 1.25

    def test_backwards_time_rejected(self):
        windowed = WindowedMetrics()
        windowed.sample(_registry(), now=10.0)
        with pytest.raises(ConfigError, match="backwards"):
            windowed.sample(_registry(), now=9.0)

    def test_null_registry_samples_cleanly(self):
        windowed = WindowedMetrics()
        windowed.sample(NULL_METRICS, now=0.0)
        assert windowed.totals() == {}
        assert windowed.rate("anything") == 0.0


class TestSloBurn:
    def _windowed_with_latency(self, *values_s: float) -> WindowedMetrics:
        windowed = WindowedMetrics(window_s=60.0, bucket_s=1.0)
        registry = _registry()
        for value in values_s:
            registry.histogram("serve.batch_s").observe(value)
        windowed.sample(registry, now=0.0)
        return windowed

    def test_burn_is_actual_over_budget(self):
        windowed = self._windowed_with_latency(0.1)  # 100ms at every quantile
        burn = windowed.slo_burn({"p50": 200.0, "p99": 50.0})
        assert burn["p50"] == pytest.approx(0.5)
        assert burn["p99"] == pytest.approx(2.0)

    def test_quantiles_without_budget_are_skipped(self):
        windowed = self._windowed_with_latency(0.1)
        burn = windowed.slo_burn({"p95": 100.0, "p50": 0.0})
        assert set(burn) == {"p95"}

    def test_empty_window_burns_zero(self):
        windowed = WindowedMetrics()
        windowed.sample(_registry(), now=0.0)
        burn = windowed.slo_burn({"p50": 100.0})
        assert burn["p50"] == 0.0


class TestSnapshot:
    def test_snapshot_shape_and_determinism(self):
        windowed = WindowedMetrics(window_s=10.0, bucket_s=1.0)
        registry = _registry()
        registry.counter("serve.ingested").inc(10)
        registry.histogram("serve.batch_s").observe(0.05)
        registry.gauge("serve.lag_days").set(3.0)
        windowed.sample(registry, now=1.0)
        snapshot = windowed.snapshot(now=1.0, context={"stream": "s.jsonl"})
        assert snapshot["schema"] == WINDOW_SNAPSHOT_SCHEMA
        assert snapshot["version"] == WINDOW_SNAPSHOT_VERSION
        assert snapshot["rates"] == {"serve.ingested": pytest.approx(10.0)}
        assert snapshot["counters"] == {"serve.ingested": 10}
        assert snapshot["gauges"] == {"serve.lag_days": 3.0}
        assert snapshot["windows"]["serve.batch_s"]["count"] == 1
        assert snapshot["context"] == {"stream": "s.jsonl"}
        assert "burn" not in snapshot  # no budgets supplied

    def test_snapshot_carries_burn_when_budgeted(self):
        windowed = WindowedMetrics(window_s=10.0, bucket_s=1.0)
        registry = _registry()
        registry.histogram("serve.batch_s").observe(0.2)
        windowed.sample(registry, now=0.0)
        snapshot = windowed.snapshot(now=0.0, budgets_ms={"p99": 100.0})
        assert snapshot["burn"] == {"p99": pytest.approx(2.0)}

    def test_snapshot_is_json_safe(self):
        import json

        windowed = WindowedMetrics()
        registry = _registry()
        registry.counter("c").inc()
        windowed.sample(registry, now=0.0)
        round_tripped = json.loads(json.dumps(windowed.snapshot(now=0.0)))
        assert round_tripped["counters"] == {"c": 1}
