"""Tests for the `obs tail` dashboard: stream reader and renderer."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import SchemaError
from repro.obs.tail import read_snapshot_stream, render_dashboard, tail_stream
from repro.obs.windows import WINDOW_SNAPSHOT_SCHEMA


def _snapshot(ts: float = 1.0, **overrides: object) -> dict[str, object]:
    payload: dict[str, object] = {
        "schema": WINDOW_SNAPSHOT_SCHEMA,
        "version": 1,
        "ts": ts,
        "wall_ts": 1700000000.0,
        "window_s": 60.0,
        "span_s": 5.0,
        "samples": 3,
        "rates": {"serve.ingested": 862.0},
        "windows": {
            "serve.batch_s": {
                "count": 17.0,
                "sum": 0.02,
                "p50": 0.001,
                "p95": 0.002,
                "p99": 0.002,
                "max": 0.002,
            }
        },
        "gauges": {"serve.lag_days": 2.0, "serve.queue_depth": 0.0},
        "counters": {"serve.ingested": 4310},
    }
    payload.update(overrides)
    return payload


def _write_stream(path, snapshots) -> None:
    path.write_text(
        "".join(json.dumps(s, sort_keys=True) + "\n" for s in snapshots)
    )


class TestReadSnapshotStream:
    def test_reads_snapshots_oldest_first(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        _write_stream(path, [_snapshot(ts=1.0), _snapshot(ts=2.0)])
        snapshots = read_snapshot_stream(path)
        assert [s["ts"] for s in snapshots] == [1.0, 2.0]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        _write_stream(path, [_snapshot()])
        with path.open("a") as handle:
            handle.write('{"schema": "repro-metr')  # append in progress
        assert len(read_snapshot_stream(path)) == 1

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{torn\n' + json.dumps(_snapshot()) + "\n")
        with pytest.raises(SchemaError, match="corrupt line 1"):
            read_snapshot_stream(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SchemaError, match="cannot read"):
            read_snapshot_stream(tmp_path / "nope.jsonl")

    def test_foreign_records_filtered_and_empty_rejected(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"schema": "other"}\n')
        with pytest.raises(SchemaError, match="no metrics window snapshots"):
            read_snapshot_stream(path)


class TestRenderDashboard:
    def test_frame_shows_rates_gauges_and_latency(self):
        frame = render_dashboard(_snapshot(), frame=4)
        assert "frame 4" in frame
        assert "serve.lag_days" in frame
        assert "serve.ingested" in frame
        assert "serve.batch_s" in frame
        assert "4310" in frame  # cumulative total alongside the rate

    def test_burn_line_flags_burning_budgets(self):
        frame = render_dashboard(_snapshot(burn={"p99": 2.5, "p50": 0.1}))
        assert "BURNING" in frame
        assert "p99=2.50" in frame
        calm = render_dashboard(_snapshot(burn={"p99": 0.4}))
        assert "[ok]" in calm

    def test_shard_table_from_context(self):
        frame = render_dashboard(
            _snapshot(
                context={
                    "shards": [
                        {"shard": 0, "customers": 20},
                        {"shard": 1, "customers": 19},
                    ]
                }
            )
        )
        assert "shard" in frame
        assert "19" in frame

    def test_minimal_snapshot_renders_without_crashing(self):
        frame = render_dashboard({"schema": WINDOW_SNAPSHOT_SCHEMA})
        assert "repro live telemetry" in frame
        assert "--:--:--" in frame  # no wall_ts available


class TestTailStream:
    def test_single_frame_mode(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        _write_stream(path, [_snapshot(ts=1.0), _snapshot(ts=2.0)])
        out = io.StringIO()
        frames = tail_stream(path, out, follow=False)
        assert frames == 1
        assert "repro live telemetry" in out.getvalue()
        # No ANSI clear outside follow mode.
        assert "\x1b[2J" not in out.getvalue()

    def test_follow_mode_bounded_by_max_frames(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        _write_stream(path, [_snapshot()])
        out = io.StringIO()
        frames = tail_stream(
            path, out, follow=True, interval_s=0.0, max_frames=3
        )
        assert frames == 3
        assert out.getvalue().count("\x1b[2J") == 3

    def test_bad_stream_raises_on_first_read(self, tmp_path):
        out = io.StringIO()
        with pytest.raises(SchemaError):
            tail_stream(tmp_path / "nope.jsonl", out)
