"""Differential pin: telemetry observes, it never perturbs.

The same evaluation run with tracing + metrics recording must produce
bit-identical AUROC values to a run with telemetry disabled — for every
engine backend, including the sharded batch path.
"""

from __future__ import annotations

import pytest

from repro.config import ExperimentConfig
from repro.core.model import StabilityModel
from repro.eval.protocol import EvaluationProtocol
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.trace import Tracer, use_tracer


def _auroc_sweep(dataset, backend: str, n_jobs: int = 1) -> dict[int, float]:
    config = ExperimentConfig(
        window_months=2,
        alpha=2.0,
        first_month=18,
        last_month=24,
        backend=backend,
        n_jobs=n_jobs,
    )
    protocol = EvaluationProtocol(dataset.bundle, config=config)
    model = StabilityModel.from_config(dataset.calendar, config).fit(
        protocol.frame()
    )
    series = protocol.evaluate_stability_model(model)
    return {month: series.at_month(month) for month in series.months()}


@pytest.mark.parametrize("backend", ["incremental", "vectorized", "batch"])
def test_scores_bit_identical_with_telemetry_on(tiny_dataset, backend):
    baseline = _auroc_sweep(tiny_dataset, backend)
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        observed = _auroc_sweep(tiny_dataset, backend)
    # Bit-identical, not approximately equal: telemetry must not touch
    # a single floating-point operation.
    assert observed == baseline
    assert tracer.records  # the run was actually traced
    assert any(r.name == "eval.cell" for r in tracer.records)


def test_sharded_batch_fit_bit_identical_with_telemetry_on(tiny_dataset):
    baseline = _auroc_sweep(tiny_dataset, "batch", n_jobs=2)
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        observed = _auroc_sweep(tiny_dataset, "batch", n_jobs=2)
    assert observed == baseline
    # The worker-side shard spans were merged into the parent trace.
    assert any(r.name == "executor.shard" for r in tracer.records)


def test_trace_covers_the_engine_stages(tiny_dataset):
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        _auroc_sweep(tiny_dataset, "batch")
    names = {r.name for r in tracer.records}
    assert "engine.fit" in names
    assert "engine.stage.significance_s" in names
    assert "engine.stage.normalize_s" in names
    # Stage histograms observed the same stages the spans timed.
    snapshot = registry.to_dict()
    assert snapshot["histograms"]["engine.stage.significance_s"]["count"] >= 1
