"""Tests for the heartbeat progress reporter."""

from __future__ import annotations

import logging

import pytest

from repro.obs.progress import NULL_PROGRESS, ProgressReporter, progress


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _reporter(total: int, caplog, min_interval: float = 10.0):
    clock = _FakeClock()
    log = logging.getLogger("test.progress")
    reporter = ProgressReporter(
        total, "sweep", log=log, min_interval=min_interval, clock=clock
    )
    return reporter, clock


class TestProgressReporter:
    def test_first_cell_always_emits(self, caplog):
        reporter, _ = _reporter(5, caplog)
        with caplog.at_level(logging.INFO, logger="test.progress"):
            reporter.advance(key="month=20")
        assert len(caplog.records) == 1
        assert "1/5 cells" in caplog.text
        assert "[month=20]" in caplog.text

    def test_rate_limited_between_first_and_last(self, caplog):
        reporter, clock = _reporter(10, caplog, min_interval=10.0)
        with caplog.at_level(logging.INFO, logger="test.progress"):
            reporter.advance()  # first: emits
            clock.now = 1.0
            reporter.advance()  # 1s < 10s interval: silent
            clock.now = 2.0
            reporter.advance()  # still silent
        assert len(caplog.records) == 1

    def test_interval_elapsed_emits_again(self, caplog):
        reporter, clock = _reporter(10, caplog, min_interval=10.0)
        with caplog.at_level(logging.INFO, logger="test.progress"):
            reporter.advance()
            clock.now = 11.0
            reporter.advance()
        assert len(caplog.records) == 2
        assert "2/10 cells" in caplog.records[1].getMessage()

    def test_final_cell_always_emits(self, caplog):
        reporter, clock = _reporter(3, caplog, min_interval=100.0)
        with caplog.at_level(logging.INFO, logger="test.progress"):
            reporter.advance()  # first
            clock.now = 1.0
            reporter.advance()  # silent
            clock.now = 2.0
            reporter.advance()  # last: emits despite the interval
        assert len(caplog.records) == 2
        assert "3/3 cells" in caplog.records[-1].getMessage()

    def test_finish_reports_totals(self, caplog):
        reporter, clock = _reporter(2, caplog)
        with caplog.at_level(logging.INFO, logger="test.progress"):
            reporter.advance(n=2)
            clock.now = 4.0
            reporter.finish()
        closing = caplog.records[-1].getMessage()
        assert "finished 2 cell(s)" in closing
        assert "0.5 cells/s" in closing

    def test_zero_elapsed_reports_no_rate_and_no_eta(self, caplog):
        # The first heartbeat often lands microseconds after
        # construction; done/elapsed would extrapolate a nonsense rate
        # (billions of cells/s) and a near-zero ETA from clock noise.
        reporter, _ = _reporter(100, caplog)  # clock frozen at 0.0
        with caplog.at_level(logging.INFO, logger="test.progress"):
            reporter.advance(key="first")
        line = caplog.records[-1].getMessage()
        assert "0.0 cells/s" in line
        assert "ETA --" in line
        assert "inf" not in line

    def test_zero_rate_mid_sweep_reports_dashes_not_inf(self, caplog):
        reporter, clock = _reporter(10, caplog, min_interval=0.0)
        with caplog.at_level(logging.INFO, logger="test.progress"):
            reporter.advance()
            clock.now = 1e-4  # still below the measurable threshold
            reporter.advance()
        assert "ETA --" in caplog.records[-1].getMessage()
        assert "inf" not in caplog.text

    def test_final_cell_eta_is_zero_even_with_frozen_clock(self, caplog):
        reporter, _ = _reporter(2, caplog, min_interval=0.0)
        with caplog.at_level(logging.INFO, logger="test.progress"):
            reporter.advance(n=2)
        assert "ETA 0.0s" in caplog.records[-1].getMessage()

    def test_finish_with_zero_elapsed_reports_zero_rate(self, caplog):
        reporter, _ = _reporter(3, caplog)  # clock never advances
        with caplog.at_level(logging.INFO, logger="test.progress"):
            reporter.advance(n=3)
            reporter.finish()
        closing = caplog.records[-1].getMessage()
        assert "0.0 cells/s" in closing
        assert "inf" not in closing

    def test_context_manager_finishes_on_clean_exit_only(self, caplog):
        reporter, _ = _reporter(1, caplog)
        with (
            caplog.at_level(logging.INFO, logger="test.progress"),
            pytest.raises(RuntimeError),
            reporter,
        ):
            raise RuntimeError("interrupted sweep")
        assert "finished" not in caplog.text


class TestProgressFactory:
    def test_returns_null_when_info_is_disabled(self):
        quiet = logging.getLogger("test.progress.quiet")
        quiet.setLevel(logging.WARNING)
        quiet.propagate = False
        assert progress(10, "sweep", log=quiet) is NULL_PROGRESS

    def test_returns_live_reporter_when_info_is_enabled(self):
        loud = logging.getLogger("test.progress.loud")
        loud.setLevel(logging.INFO)
        reporter = progress(10, "sweep", log=loud)
        assert isinstance(reporter, ProgressReporter)

    def test_null_progress_is_inert(self):
        NULL_PROGRESS.advance(key="x")
        NULL_PROGRESS.finish()
        with NULL_PROGRESS as reporter:
            assert reporter is NULL_PROGRESS
